//! The verification engine: check generation, execution (sequential or
//! parallel), statistics and incremental re-verification.
//!
//! For a safety property, the engine generates the §4.2 checks:
//!
//! * per edge `A -> B` with `B` internal, an **Import** check:
//!   `I_{A->B}(r) ∧ r' = Import(A->B, r) ⟹ r' = Reject ∨ I_B(r')`;
//! * per edge `A -> B` with `A` internal, an **Export** check:
//!   `I_A(r) ∧ r' = Export(A->B, r) ⟹ r' = Reject ∨ I_{A->B}(r')`,
//!   and an **Originate** check: every `r ∈ Originate(A->B)` satisfies
//!   `I_{A->B}`;
//! * one **Subsumption** check: `I_ℓ ⟹ P`.
//!
//! Check size depends only on one router's configuration (the property
//! behind Figure 3b of the paper), which makes checks embarrassingly
//! parallel (design decision D3) and incrementally re-checkable: when a
//! node's configuration changes, only the checks touching its edges
//! re-run.
//!
//! Checks are *not* discharged one fresh SMT instance each (the seed
//! behavior): checks that share an **encoding base** — the same edge's
//! transfer function, or the pure-implication shape — are grouped, the
//! shared universe/router constraints are encoded once on a persistent
//! [`smt::IncrementalSession`], and each check becomes an
//! assumption-gated query on that session, carrying learnt clauses from
//! check to check. `--no-incremental` (or
//! [`Verifier::with_incremental`]`(false)`) restores the one-instance-
//! per-check behavior; outcomes are identical either way.

use crate::check::{
    Check, CheckKind, CheckOutcome, CheckResult, Counterexample, Report, ReportSummary,
};
use crate::encode::{encode_export, encode_import, Transfer};
use crate::fingerprint::{check_fingerprint, universe_digest};
use crate::ghost::GhostAttr;
use crate::invariants::{Location, NetworkInvariants};
use crate::pred::RoutePred;
use crate::safety::SafetyProperty;
use crate::symbolic::{ConcreteRoute, SymRoute};
use crate::universe::Universe;
use bgp_model::policy::Policy;
use bgp_model::topology::{EdgeId, NodeId, Topology};
use orchestrator::{run_grouped, Fingerprint, ResultCache, RunConfig, RunStats};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use smt::{
    solve_with_stats, Assumption, IncrementalSession, SatResult, SolverStats, TermId, TermPool,
};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// How to execute the generated checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RunMode {
    /// One check at a time, in order (paper's sequential numbers, §6.1).
    #[default]
    Sequential,
    /// Orchestrated execution (D3): checks are fingerprinted, identical
    /// structures deduplicated and (optionally) answered from a cache,
    /// and the rest solved on a work-stealing pool.
    Parallel,
}

/// The cross-run check-result cache, keyed by structural fingerprint.
pub type CheckCache = ResultCache<SolvedCheck>;

/// A check's solver-facing outcome, detached from its descriptor so one
/// solved structure can answer every renamed instantiation.
#[derive(Clone, Debug)]
pub struct SolvedCheck {
    /// Pass, or fail with a counterexample.
    pub result: CheckResult,
    /// Solver statistics of the one real invocation.
    pub stats: SolverStats,
    /// For session-solved passes, the unsat core over the assumed
    /// invariant's conjuncts (see [`crate::check::CheckOutcome::core`]).
    /// Equal fingerprints mean equal conjunct lists, so a core replicates
    /// soundly to every dedup copy and cache hit of the structure.
    pub core: Option<Vec<usize>>,
}

impl SolvedCheck {
    /// Spill encoding for the disk cache, rendered through the shared
    /// [`api::SpilledCheck`] schema. Both passes and failures are
    /// durable; a failure carries its counterexample, which is
    /// **re-validated** against the live configuration before the cached
    /// verdict is trusted (see `Verifier::cached_result_still_valid`), so
    /// warm runs no longer re-prove every failure yet can never replay a
    /// stale one.
    pub fn spill_value(&self) -> Option<Value> {
        let doc = match &self.result {
            CheckResult::Pass => api::SpilledCheck::Pass {
                vars: self.stats.num_vars,
                clauses: self.stats.num_clauses,
                core: self.core.clone(),
            },
            CheckResult::Fail(cex) => api::SpilledCheck::Fail {
                vars: self.stats.num_vars,
                clauses: self.stats.num_clauses,
                rejected: cex.rejected,
                input: cex.input.to_value(),
                output: cex
                    .output
                    .as_ref()
                    .map(|o| o.to_value())
                    .unwrap_or(Value::Null),
            },
        };
        Some(doc.to_value())
    }

    /// Decode the [`SolvedCheck::spill_value`] form.
    pub fn from_spill(v: &Value) -> Option<Self> {
        match api::SpilledCheck::from_value(v)? {
            api::SpilledCheck::Pass {
                vars,
                clauses,
                core,
            } => Some(SolvedCheck {
                result: CheckResult::Pass,
                stats: SolverStats {
                    num_vars: vars,
                    num_clauses: clauses,
                    ..SolverStats::default()
                },
                core,
            }),
            api::SpilledCheck::Fail {
                vars,
                clauses,
                rejected,
                input,
                output,
            } => {
                let input = ConcreteRoute::from_value(&input).ok()?;
                let output = if output.is_null() {
                    None
                } else {
                    Some(ConcreteRoute::from_value(&output).ok()?)
                };
                Some(SolvedCheck {
                    result: CheckResult::Fail(Box::new(Counterexample {
                        input,
                        output,
                        rejected,
                    })),
                    stats: SolverStats {
                        num_vars: vars,
                        num_clauses: clauses,
                        ..SolverStats::default()
                    },
                    core: None,
                })
            }
        }
    }
}

/// Load a [`CheckCache`] spilled to `dir` by [`save_check_cache`].
/// Returns the cache and the number of entries loaded (zero when the
/// directory or file does not exist yet).
pub fn load_check_cache(dir: &std::path::Path) -> std::io::Result<(Arc<CheckCache>, usize)> {
    load_check_cache_bounded(dir, None)
}

/// [`load_check_cache`] with an optional LRU entry bound for long-lived
/// processes (`None`: unbounded). When the spill holds more entries than
/// the bound, the excess is evicted least-recently-loaded-first.
pub fn load_check_cache_bounded(
    dir: &std::path::Path,
    capacity: Option<usize>,
) -> std::io::Result<(Arc<CheckCache>, usize)> {
    let cache = Arc::new(match capacity {
        Some(cap) => CheckCache::bounded(cap),
        None => CheckCache::new(),
    });
    let loaded = cache.load_from_dir(dir, SolvedCheck::from_spill)?;
    Ok((cache, loaded))
}

/// Spill a [`CheckCache`] to `dir/cache.json` (passes and failures; see
/// [`SolvedCheck::spill_value`]). Returns the number of entries written.
pub fn save_check_cache(cache: &CheckCache, dir: &std::path::Path) -> std::io::Result<usize> {
    cache.save_to_dir(dir, SolvedCheck::spill_value)
}

/// Load a [`CheckCache`] keeping only **passing** entries. This is the
/// trust level a [`crate::reverify::ReverifyEngine`] extends to a spilled
/// cache on daemon restart: equal fingerprints mean bit-identical
/// formulas, so replaying a pass is sound, while a spilled failure's
/// counterexample would be replayed without the orchestrated path's
/// re-validation — so failures are dropped and simply re-proved.
pub fn load_pass_cache(dir: &std::path::Path) -> std::io::Result<(Arc<CheckCache>, usize)> {
    let cache = Arc::new(CheckCache::new());
    let loaded = cache.load_from_dir(dir, |v| {
        SolvedCheck::from_spill(v).filter(|s| s.result.passed())
    })?;
    Ok((cache, loaded))
}

/// The result of a cross-property batch
/// ([`Verifier::verify_safety_batch`]): one [`Report`] per input suite —
/// each byte-identical to a standalone run of that suite — plus the
/// orchestration statistics of the single shared run.
#[derive(Clone, Debug, Default)]
pub struct MultiReport {
    /// Per-suite reports, in input order. Each report's `total_time` is
    /// the whole batch's wall-clock time (the run is shared; per-suite
    /// attribution would be fiction) and its `exec` is empty — the
    /// batch-level statistics live in [`MultiReport::exec`].
    pub reports: Vec<Report>,
    /// Orchestration statistics of the one shared run.
    pub exec: RunStats,
    /// Wall-clock time of the whole batch.
    pub total_time: std::time::Duration,
}

impl MultiReport {
    /// True when every suite's every check passed.
    pub fn all_passed(&self) -> bool {
        self.reports.iter().all(Report::all_passed)
    }

    /// Total checks across all suites.
    pub fn num_checks(&self) -> usize {
        self.reports.iter().map(Report::num_checks).sum()
    }
}

/// The streaming counterpart of [`MultiReport`]: per-suite
/// [`ReportSummary`] accumulators instead of full per-check outcome
/// vectors, produced by [`Verifier::verify_safety_batch_streaming`].
/// Memory stays proportional to the in-flight solve frontier plus the
/// failures/cores worth rendering, not to the total check count.
#[derive(Clone, Debug)]
pub struct MultiSummary {
    /// Per-suite summaries, in input order. Each summary's `total_time`
    /// is the whole batch's wall-clock time, matching the convention of
    /// [`MultiReport::reports`].
    pub summaries: Vec<ReportSummary>,
    /// Orchestration statistics of the one shared run.
    pub exec: RunStats,
    /// Wall-clock time of the whole batch.
    pub total_time: std::time::Duration,
}

impl MultiSummary {
    /// True when every suite's every check passed.
    pub fn all_passed(&self) -> bool {
        self.summaries.iter().all(ReportSummary::all_passed)
    }

    /// Total checks across all suites.
    pub fn num_checks(&self) -> usize {
        self.summaries.iter().map(ReportSummary::num_checks).sum()
    }
}

/// The violation query of a transfer obligation, as `(pre, ¬goal)`:
/// `pre = assume(input)`; `goal = reject ∨ ensure(out)` for safety or
/// `¬reject ∧ ensure(out)` for liveness propagation (`require_accept`).
/// One definition shared by fresh solving, grouped session solving and
/// cache re-validation, so the obligation shape cannot drift between
/// those paths.
pub(crate) fn transfer_violation(
    pool: &mut TermPool,
    universe: &Universe,
    input: &SymRoute,
    transfer: &Transfer,
    assume: &RoutePred,
    ensure: &RoutePred,
    require_accept: bool,
) -> (TermId, TermId) {
    let pre = assume.encode(pool, universe, input);
    let neg = transfer_goal_negation(pool, universe, transfer, ensure, require_accept);
    (pre, neg)
}

/// The `¬goal` half of a transfer obligation on its own. Session solving
/// poses the `pre` half as one assumption literal **per assume conjunct**
/// (so an UNSAT proof's failed assumptions localize which conjuncts were
/// load-bearing) and this negated goal behind one more.
pub(crate) fn transfer_goal_negation(
    pool: &mut TermPool,
    universe: &Universe,
    transfer: &Transfer,
    ensure: &RoutePred,
    require_accept: bool,
) -> TermId {
    let post = ensure.encode(pool, universe, &transfer.out);
    let goal = if require_accept {
        let not_rej = pool.not(transfer.reject);
        pool.and2(not_rej, post)
    } else {
        pool.or2(transfer.reject, post)
    };
    pool.not(goal)
}

/// The violation query of an implication obligation, as `(pre, ¬post)`.
pub(crate) fn implication_violation(
    pool: &mut TermPool,
    universe: &Universe,
    r: &SymRoute,
    assume: &RoutePred,
    ensure: &RoutePred,
) -> (TermId, TermId) {
    let pre = assume.encode(pool, universe, r);
    let neg = implication_goal_negation(pool, universe, r, ensure);
    (pre, neg)
}

/// The `¬post` half of an implication obligation (see
/// [`transfer_goal_negation`] for why session solving wants it alone).
pub(crate) fn implication_goal_negation(
    pool: &mut TermPool,
    universe: &Universe,
    r: &SymRoute,
    ensure: &RoutePred,
) -> TermId {
    let post = ensure.encode(pool, universe, r);
    pool.not(post)
}

/// Decide one check's violation query on a shared session, with the
/// assumed invariant split at conjunct granularity: every conjunct of
/// `assume` and the negated goal each sit behind their own activation
/// literal, and the query is the assumption solve under all of them —
/// the same conjunction as the monolithic `pre ∧ ¬goal` query, so
/// verdicts are identical, but an UNSAT answer now comes with
/// `failed_assumptions` naming exactly which conjuncts the proof used
/// (a sound, not necessarily minimal, unsat core).
///
/// Returns `(verdict, stats, core)`; `core` is `Some` iff UNSAT. With
/// `retract`, the posed activations are permanently retracted afterwards
/// (long-lived re-verify sessions); one-run group sessions skip that.
pub(crate) fn solve_conjunct_gated(
    sess: &mut IncrementalSession,
    universe: &Universe,
    input: &SymRoute,
    conjuncts: &[RoutePred],
    neg: TermId,
    retract: bool,
) -> (SatResult, SolverStats, Option<Vec<usize>>) {
    let encoded: Vec<TermId> = conjuncts
        .iter()
        .map(|cp| cp.encode(sess.pool_mut(), universe, input))
        .collect();
    // Fold the whole violation query in the term pool first:
    // hash-consing simplification frequently collapses it outright — an
    // identity transfer under a uniform invariant makes `¬goal` the
    // literal complement of the assumed conjunct, folding
    // `assume ∧ ¬goal` to `False`. Such a check is decided without ever
    // bit-blasting its formula (transfer relation included), which is
    // the bulk of a WAN's internal-mesh checks; splitting it into
    // assumption literals would defeat the simplifier, so the split is
    // reserved for queries that do not collapse.
    let folded = {
        let pool = sess.pool_mut();
        let mut all = encoded.clone();
        all.push(neg);
        let q = pool.and(&all);
        let fls = pool.fls();
        (q == fls).then_some(q)
    };
    if let Some(q) = folded {
        obs::add("engine.checks_folded", 1);
        let core = Some(syntactic_core(sess.pool(), &encoded, neg));
        let act = sess.activation(q);
        let (result, stats) = sess.solve_under(&[act]);
        debug_assert!(!result.is_sat(), "a False query cannot be satisfiable");
        if retract {
            sess.retract(act);
        }
        return (result, stats, core);
    }
    let mut acts: Vec<Assumption> = Vec::with_capacity(conjuncts.len() + 1);
    for &t in &encoded {
        acts.push(sess.activation(t));
    }
    let nact = sess.activation(neg);
    let assumed: Vec<Assumption> = acts.iter().copied().chain(std::iter::once(nact)).collect();
    let (result, stats) = sess.solve_under(&assumed);
    let core = match &result {
        SatResult::Unsat => {
            let failed = sess.failed_assumptions();
            Some(
                acts.iter()
                    .enumerate()
                    .filter(|(_, a)| failed.contains(a))
                    .map(|(i, _)| i)
                    .collect(),
            )
        }
        SatResult::Sat(_) => None,
    };
    if retract {
        for a in assumed {
            sess.retract(a);
        }
    }
    (result, stats, core)
}

/// The conjunct core of a query the term pool folded to `False`: the
/// simplifier got there through a `False` member or a complementary
/// pair, so blame the responsible conjunct(s) when they are identifiable
/// at the top level, and conservatively all of them otherwise (sound —
/// their conjunction with `¬goal` *is* the folded `False`).
fn syntactic_core(pool: &TermPool, encoded: &[TermId], neg: TermId) -> Vec<usize> {
    use smt::Term;
    let is_false = |t: TermId| matches!(pool.term(t), Term::False);
    let complement =
        |a: TermId, b: TermId| *pool.term(a) == Term::Not(b) || *pool.term(b) == Term::Not(a);
    if is_false(neg) {
        // The goal holds unconditionally: no conjunct is load-bearing.
        return Vec::new();
    }
    if let Some(i) = encoded.iter().position(|&t| is_false(t)) {
        return vec![i];
    }
    if let Some(i) = encoded.iter().position(|&t| complement(t, neg)) {
        return vec![i];
    }
    for i in 0..encoded.len() {
        for j in (i + 1)..encoded.len() {
            if complement(encoded[i], encoded[j]) {
                return vec![i, j];
            }
        }
    }
    (0..encoded.len()).collect()
}

/// SAT-solver tuning shared by every group session a run creates.
///
/// The defaults are the production path: flat slice feed plus the
/// inprocessing configuration of [`smt::SolverConfig::default`].
/// Benches flip [`SolverTuning::config`] to [`smt::SolverConfig::plain`]
/// and [`SolverTuning::buffered_feed`] on to measure the
/// un-inprocessed, per-clause-buffered baseline against it.
#[derive(Clone, Debug, Default)]
pub struct SolverTuning {
    /// Base solver configuration (inprocessing sweeps, restarts, phase
    /// seeding) applied to each group session.
    pub config: smt::SolverConfig,
    /// Feed clauses through the buffered per-clause path instead of the
    /// flat slice feed (ablation baseline only).
    pub buffered_feed: bool,
    /// Portfolio racing for heavyweight groups; `None` keeps every
    /// query sequential.
    pub portfolio: Option<PortfolioTuning>,
}

/// Engine-level portfolio policy: which groups opt into racing and how
/// the race is shaped. The thread *budget* is not part of the policy —
/// it is derived per run from the machine and the execution mode
/// (sequential runs may race on every spare core; orchestrated runs
/// only on cores the worker pool left free), so group parallelism
/// always wins the fight for cores over portfolio parallelism.
#[derive(Clone, Debug)]
pub struct PortfolioTuning {
    /// Solver variants per race, capped at [`smt::PORTFOLIO_MAX_K`].
    pub k: usize,
    /// Engine-side work estimate: only groups at least this many checks
    /// wide attach a portfolio (a one-check group re-derives nothing
    /// from racing that a fresh solve would not).
    pub min_checks: usize,
    /// Session-side work estimate: a query races only once the group's
    /// encoding has at least this many CNF clauses.
    pub min_clauses: usize,
    /// Base seed for variant jitter (verdict-irrelevant; see the smt
    /// crate's determinism notes).
    pub seed: u64,
}

impl Default for PortfolioTuning {
    fn default() -> Self {
        let d = smt::PortfolioConfig::default();
        PortfolioTuning {
            k: d.k,
            min_checks: 2,
            min_clauses: d.min_clauses,
            seed: d.seed,
        }
    }
}

/// The Lightyear verifier for one network.
#[derive(Clone)]
pub struct Verifier<'a> {
    topo: &'a Topology,
    policy: &'a Policy,
    ghosts: Vec<GhostAttr>,
    mode: RunMode,
    /// Worker threads for orchestrated runs (`None`: all cores).
    jobs: Option<usize>,
    /// Collapse structurally identical checks (orchestrated runs).
    dedup: bool,
    /// Solve encoding-base groups on persistent assumption-based SMT
    /// sessions instead of one fresh instance per check.
    incremental: bool,
    /// Cross-run result cache (orchestrated runs).
    cache: Option<Arc<CheckCache>>,
    /// SAT-solver tuning for group sessions.
    solver: SolverTuning,
}

/// A fully-resolved check: descriptor plus the predicates its formula
/// needs, self-contained so it can run on any thread.
#[derive(Clone, Debug)]
pub(crate) struct ResolvedCheck {
    pub(crate) check: Check,
    pub(crate) body: CheckBody,
}

#[derive(Clone, Debug)]
pub(crate) enum CheckBody {
    /// assume(r) ∧ r' = transfer(r) ⟹ reject ∨ ensure(r')
    Transfer {
        edge: EdgeId,
        is_import: bool,
        assume: RoutePred,
        ensure: RoutePred,
        /// Liveness propagation: additionally require non-rejection and
        /// drop the `reject ∨ ...` escape.
        require_accept: bool,
    },
    /// Concrete: every originated route satisfies the predicate.
    Originate { edge: EdgeId, ensure: RoutePred },
    /// assume(r) ⟹ ensure(r)
    Implication {
        assume: RoutePred,
        ensure: RoutePred,
    },
}

impl CheckBody {
    /// The encoding-base key: checks with equal keys share everything but
    /// their assume/ensure predicates — the symbolic input route, its
    /// well-formedness constraint and (for transfers) the route-map +
    /// ghost-update transfer relation — so they are solved together on
    /// one persistent session. Never part of a fingerprint: grouping
    /// affects scheduling, not verdicts.
    pub(crate) fn group_key(&self) -> u64 {
        match self {
            CheckBody::Transfer {
                edge, is_import, ..
            } => (1 << 40) | ((edge.0 as u64) << 1) | u64::from(*is_import),
            CheckBody::Originate { edge, .. } => (2 << 40) | edge.0 as u64,
            CheckBody::Implication { .. } => 3 << 40,
        }
    }
}

impl<'a> Verifier<'a> {
    /// A verifier over a topology and policy.
    pub fn new(topo: &'a Topology, policy: &'a Policy) -> Self {
        Verifier {
            topo,
            policy,
            ghosts: Vec::new(),
            mode: RunMode::Sequential,
            jobs: None,
            dedup: true,
            incremental: true,
            cache: None,
            solver: SolverTuning::default(),
        }
    }

    /// Register a ghost attribute.
    pub fn with_ghost(mut self, g: GhostAttr) -> Self {
        self.ghosts.push(g);
        self
    }

    /// Set the execution mode.
    pub fn with_mode(mut self, mode: RunMode) -> Self {
        self.mode = mode;
        self
    }

    /// The configured execution mode.
    pub fn mode(&self) -> RunMode {
        self.mode
    }

    /// Set the orchestrated worker-thread count (implies
    /// [`RunMode::Parallel`]).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs.max(1));
        self.mode = RunMode::Parallel;
        self
    }

    /// Enable or disable structural deduplication (on by default; only
    /// affects orchestrated runs).
    pub fn with_dedup(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }

    /// Enable or disable incremental assumption-based group solving (on
    /// by default; affects sequential and orchestrated runs alike).
    /// Verdicts are identical either way — disabling trades speed for
    /// the seed's one-fresh-instance-per-check behavior.
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }

    /// Whether incremental group solving is enabled.
    pub fn incremental(&self) -> bool {
        self.incremental
    }

    /// Replace the SAT-solver tuning wholesale (benches use this to pit
    /// the plain buffered baseline against the default path).
    pub fn with_solver_tuning(mut self, tuning: SolverTuning) -> Self {
        self.solver = tuning;
        self
    }

    /// Enable intra-group portfolio racing with the given policy.
    /// Verdicts and reports are byte-identical to sequential solving —
    /// racing only changes which machine-derived proof arrives first.
    pub fn with_portfolio(mut self, portfolio: PortfolioTuning) -> Self {
        self.solver.portfolio = Some(portfolio);
        self
    }

    /// The active solver tuning.
    pub fn solver_tuning(&self) -> &SolverTuning {
        &self.solver
    }

    /// Attach a cross-run result cache (only consulted by orchestrated
    /// runs). The cache is shared: clone the `Arc` to reuse it across
    /// verifier instances or runs.
    pub fn with_cache(mut self, cache: Arc<CheckCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The topology under verification.
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// The policy under verification.
    pub fn policy(&self) -> &Policy {
        self.policy
    }

    /// Names of the registered ghost attributes.
    pub fn ghost_names(&self) -> Vec<String> {
        self.ghosts.iter().map(|g| g.name.clone()).collect()
    }

    /// The registered ghost attributes (for fingerprinting).
    pub(crate) fn ghosts(&self) -> &[GhostAttr] {
        &self.ghosts
    }

    /// Build the attribute universe: policy + ghosts + the given
    /// predicates (property and invariants).
    fn universe(&self, extra: &[&RoutePred]) -> Universe {
        let mut u = Universe::from_policy(self.policy);
        for g in &self.ghosts {
            u.add_ghost(&g.name);
        }
        for p in extra {
            p.register(&mut u);
        }
        u
    }

    // ------------------------------------------------------------------
    // Safety
    // ------------------------------------------------------------------

    /// Verify a safety property under the given network invariants.
    pub fn verify_safety(&self, prop: &SafetyProperty, inv: &NetworkInvariants) -> Report {
        let checks = self.generate_safety_checks(prop, inv);
        let mut u = self.universe(&[&prop.pred]);
        inv.register(&mut u);
        self.run(&u, &checks)
    }

    /// Verify several safety properties that share one invariant
    /// assignment. The Import/Export/Originate checks depend only on the
    /// invariants (the §4.3 lemma), so they run once; each property adds a
    /// single subsumption check `I_ℓ ⟹ P`.
    pub fn verify_safety_multi(&self, props: &[SafetyProperty], inv: &NetworkInvariants) -> Report {
        if props.is_empty() {
            return Report::default();
        }
        let (checks, u) = self.resolve_multi(props, inv);
        self.run(&u, &checks)
    }

    /// Cross-property shared-encoding verification: run several
    /// `(property suite, invariants)` problems as **one** batch, so
    /// checks from different suites that share an encoding base — above
    /// all, the transfer relation of one edge — are solved on a single
    /// persistent session instead of re-encoding that edge once per
    /// suite, and every subsumption/implication check shares one
    /// implication session. The batch runs over the union attribute
    /// universe of all suites.
    ///
    /// The returned per-suite reports are **byte-identical** to what a
    /// standalone [`Verifier::verify_safety_multi`] of that suite
    /// renders: passes are pure verdicts; failures always re-derive
    /// their counterexample on a fresh one-shot instance whose CNF does
    /// not depend on the other suites' universe atoms (unreferenced
    /// atoms never enter a check's formula cone and are reported as
    /// don't-care, not fabricated). The result cache — when attached —
    /// still records one entry per (check, property) structure.
    pub fn verify_safety_batch(
        &self,
        suites: &[(&[SafetyProperty], &NetworkInvariants)],
    ) -> MultiReport {
        let t0 = Instant::now();
        // Resolve every suite's checks, re-identified into one global id
        // space so a single run covers the whole batch.
        let mut checks: Vec<ResolvedCheck> = Vec::new();
        let mut bounds = vec![0usize];
        for (props, inv) in suites {
            let off = checks.len();
            checks.extend(self.resolve_suite(props, inv).into_iter().map(|mut rc| {
                rc.check.id += off;
                rc
            }));
            bounds.push(checks.len());
        }
        // Union universe: policy + ghosts + every suite's predicates.
        let mut u = self.universe(&[]);
        for (props, inv) in suites {
            for p in *props {
                p.pred.register(&mut u);
            }
            inv.register(&mut u);
        }
        let batch = self.run(&u, &checks);
        let exec = batch.exec;
        let total_time = t0.elapsed();
        // Split the outcomes back into per-suite reports with local ids.
        let mut outcomes = batch.outcomes.into_iter();
        let reports = suites
            .iter()
            .enumerate()
            .map(|(si, _)| {
                let (lo, hi) = (bounds[si], bounds[si + 1]);
                let mut r = Report {
                    outcomes: outcomes
                        .by_ref()
                        .take(hi - lo)
                        .map(|mut o| {
                            o.check.id -= lo;
                            o
                        })
                        .collect(),
                    total_time,
                    exec: RunStats::default(),
                };
                r.sort_by_id();
                r
            })
            .collect();
        MultiReport {
            reports,
            exec,
            total_time,
        }
    }

    /// Streaming variant of [`Verifier::verify_safety_batch`]: identical
    /// resolve / union-universe / shared-run semantics, but per-check
    /// outcomes are drained into per-suite [`ReportSummary`]
    /// accumulators as their groups complete instead of being collected
    /// into full per-suite outcome vectors. Verdict content is
    /// identical — the golden CLI output is byte-for-byte the same —
    /// while peak report memory tracks the solve frontier (the reorder
    /// buffer between completion order and check-id order) plus the
    /// failures worth rendering, not the total check count.
    ///
    /// `keep_cores` controls whether passing checks retain their
    /// load-bearing assumption cores (only the `--json` `cores`
    /// rendering reads them); failing outcomes are always kept whole.
    pub fn verify_safety_batch_streaming(
        &self,
        suites: &[(&[SafetyProperty], &NetworkInvariants)],
        keep_cores: bool,
    ) -> MultiSummary {
        let t0 = Instant::now();
        let mut checks: Vec<ResolvedCheck> = Vec::new();
        let mut bounds = vec![0usize];
        for (props, inv) in suites {
            let off = checks.len();
            checks.extend(self.resolve_suite(props, inv).into_iter().map(|mut rc| {
                rc.check.id += off;
                rc
            }));
            bounds.push(checks.len());
        }
        let mut u = self.universe(&[]);
        for (props, inv) in suites {
            for p in *props {
                p.pred.register(&mut u);
            }
            inv.register(&mut u);
        }
        let mut summaries: Vec<ReportSummary> = suites
            .iter()
            .map(|_| ReportSummary::new(keep_cores))
            .collect();
        let exec = {
            let mut sink = |mut o: CheckOutcome| {
                // Global ids are contiguous per suite, so the owning
                // suite is the last bound at or below the id (empty
                // suites contribute duplicate bounds and are skipped).
                let si = bounds.partition_point(|&b| b <= o.check.id) - 1;
                o.check.id -= bounds[si];
                summaries[si].push(o);
            };
            self.run_streamed(&u, &checks, &mut sink)
        };
        let total_time = t0.elapsed();
        for s in &mut summaries {
            s.total_time = total_time;
        }
        MultiSummary {
            summaries,
            exec,
            total_time,
        }
    }

    /// The assume-side conjuncts of every check in the `(props, inv)`
    /// suite, rendered for display and indexed by check id — the
    /// namespace the indices of [`crate::check::CheckOutcome::core`]
    /// point into. `None` for concrete originate checks (no symbolic
    /// assume side). Renderers that blame many checks (the `--json`
    /// `cores` output) should use this bulk form: it resolves the suite
    /// once, not once per check.
    pub fn check_conjuncts_all(
        &self,
        props: &[SafetyProperty],
        inv: &NetworkInvariants,
    ) -> Vec<Option<Vec<String>>> {
        self.resolve_suite(props, inv)
            .into_iter()
            .map(|rc| match &rc.body {
                CheckBody::Transfer { assume, .. } | CheckBody::Implication { assume, .. } => {
                    Some(assume.conjuncts().iter().map(|p| p.to_string()).collect())
                }
                CheckBody::Originate { .. } => None,
            })
            .collect()
    }

    /// [`Verifier::check_conjuncts_all`] for a single check id. `None`
    /// for unknown ids and concrete originate checks.
    pub fn check_conjuncts(
        &self,
        props: &[SafetyProperty],
        inv: &NetworkInvariants,
        check_id: usize,
    ) -> Option<Vec<String>> {
        self.check_conjuncts_all(props, inv)
            .into_iter()
            .nth(check_id)
            .flatten()
    }

    /// Replay an unsat core: re-prove check `check_id` of the
    /// `(props, inv)` suite with its assumed invariant **reduced to the
    /// given conjuncts** (indices into `RoutePred::conjuncts()` of the
    /// check's assume predicate), on a fresh one-shot instance. Returns
    /// `Some(true)` when the reduced check still passes — which a sound
    /// core reported by a passing check always guarantees — `Some(false)`
    /// when it does not (the blame set was insufficient), and `None` when
    /// the check does not exist, has no symbolic assume side (concrete
    /// originate checks), or an index is out of range.
    pub fn check_passes_with_conjuncts(
        &self,
        props: &[SafetyProperty],
        inv: &NetworkInvariants,
        check_id: usize,
        conjuncts: &[usize],
    ) -> Option<bool> {
        let (checks, u) = self.resolve_multi(props, inv);
        let rc = checks.into_iter().find(|c| c.check.id == check_id)?;
        let reduce = |assume: &RoutePred| -> Option<RoutePred> {
            let all = assume.conjuncts();
            let mut kept = RoutePred::True;
            for &i in conjuncts {
                kept = kept.and(all.get(i)?.clone());
            }
            Some(kept)
        };
        let body = match &rc.body {
            CheckBody::Transfer {
                edge,
                is_import,
                assume,
                ensure,
                require_accept,
            } => CheckBody::Transfer {
                edge: *edge,
                is_import: *is_import,
                assume: reduce(assume)?,
                ensure: ensure.clone(),
                require_accept: *require_accept,
            },
            CheckBody::Implication { assume, ensure } => CheckBody::Implication {
                assume: reduce(assume)?,
                ensure: ensure.clone(),
            },
            CheckBody::Originate { .. } => return None,
        };
        let reduced = ResolvedCheck {
            check: rc.check,
            body,
        };
        Some(self.run_one(&u, &reduced).result.passed())
    }

    /// Resolve a multi-property safety problem into its full check set
    /// and attribute universe (shared by [`Verifier::verify_safety_multi`]
    /// and the cross-run re-verify engine, so the two can never disagree
    /// on what a run consists of).
    pub(crate) fn resolve_multi(
        &self,
        props: &[SafetyProperty],
        inv: &NetworkInvariants,
    ) -> (Vec<ResolvedCheck>, Universe) {
        (
            self.resolve_suite(props, inv),
            self.suite_universe(props, inv),
        )
    }

    /// The check set of one `(properties, invariants)` suite: the shared
    /// Import/Export/Originate checks plus one subsumption check per
    /// property (the §4.3 lemma).
    fn resolve_suite(
        &self,
        props: &[SafetyProperty],
        inv: &NetworkInvariants,
    ) -> Vec<ResolvedCheck> {
        let Some(first) = props.first() else {
            return Vec::new();
        };
        let mut checks = self.generate_safety_checks(first, inv);
        // The generator appended `first`'s subsumption check last; add the
        // remaining properties' subsumption checks after it.
        for (id, p) in (checks.len()..).zip(&props[1..]) {
            checks.push(ResolvedCheck {
                check: Check {
                    id,
                    kind: CheckKind::Subsumption,
                    location: p.location,
                    edge: None,
                    map_name: None,
                    description: format!(
                        "invariant at {} implies {}",
                        p.location.display(self.topo),
                        p.name.as_deref().unwrap_or("the property")
                    ),
                },
                body: CheckBody::Implication {
                    assume: inv.at(self.topo, p.location),
                    ensure: p.pred.clone(),
                },
            });
        }
        checks
    }

    /// The attribute universe of one suite: policy + ghosts + every
    /// property predicate + the invariants.
    fn suite_universe(&self, props: &[SafetyProperty], inv: &NetworkInvariants) -> Universe {
        let mut u = self.universe(&[]);
        for p in props {
            p.pred.register(&mut u);
        }
        inv.register(&mut u);
        u
    }

    /// Re-verify after the configurations of `changed` nodes were updated:
    /// only checks touching those nodes' edges (plus the subsumption
    /// check) are re-run.
    pub fn verify_safety_incremental(
        &self,
        prop: &SafetyProperty,
        inv: &NetworkInvariants,
        changed: &[NodeId],
    ) -> Report {
        let checks: Vec<ResolvedCheck> = self
            .generate_safety_checks(prop, inv)
            .into_iter()
            .filter(|c| match c.body {
                CheckBody::Transfer { edge, .. } | CheckBody::Originate { edge, .. } => {
                    let e = self.topo.edge(edge);
                    changed.contains(&e.src) || changed.contains(&e.dst)
                }
                CheckBody::Implication { .. } => true,
            })
            .collect();
        let mut u = self.universe(&[&prop.pred]);
        inv.register(&mut u);
        self.run(&u, &checks)
    }

    /// Number of checks a safety verification would run (for reporting).
    pub fn num_safety_checks(&self, prop: &SafetyProperty, inv: &NetworkInvariants) -> usize {
        self.generate_safety_checks(prop, inv).len()
    }

    fn generate_safety_checks(
        &self,
        prop: &SafetyProperty,
        inv: &NetworkInvariants,
    ) -> Vec<ResolvedCheck> {
        let mut out = Vec::new();
        let mut id = 0;
        for e in self.topo.edge_ids() {
            let edge = self.topo.edge(e);
            let edge_loc = Location::Edge(e);
            // Import check (receiver internal).
            if !self.topo.node(edge.dst).external {
                let assume = inv.at(self.topo, edge_loc);
                let ensure = inv.at(self.topo, Location::Node(edge.dst));
                let map_name = self.policy.import_map(e).map(|m| m.name.clone());
                out.push(ResolvedCheck {
                    check: Check {
                        id,
                        kind: CheckKind::Import,
                        location: edge_loc,
                        edge: Some(e),
                        map_name,
                        description: format!(
                            "import on {} preserves the invariants",
                            self.topo.edge_name(e)
                        ),
                    },
                    body: CheckBody::Transfer {
                        edge: e,
                        is_import: true,
                        assume,
                        ensure,
                        require_accept: false,
                    },
                });
                id += 1;
            }
            // Export + Originate checks (sender internal).
            if !self.topo.node(edge.src).external {
                let assume = inv.at(self.topo, Location::Node(edge.src));
                let ensure = inv.at(self.topo, edge_loc);
                let map_name = self.policy.export_map(e).map(|m| m.name.clone());
                out.push(ResolvedCheck {
                    check: Check {
                        id,
                        kind: CheckKind::Export,
                        location: edge_loc,
                        edge: Some(e),
                        map_name,
                        description: format!(
                            "export on {} preserves the invariants",
                            self.topo.edge_name(e)
                        ),
                    },
                    body: CheckBody::Transfer {
                        edge: e,
                        is_import: false,
                        assume,
                        ensure: ensure.clone(),
                        require_accept: false,
                    },
                });
                id += 1;
                if !self.policy.originated(e).is_empty() {
                    out.push(ResolvedCheck {
                        check: Check {
                            id,
                            kind: CheckKind::Originate,
                            location: edge_loc,
                            edge: Some(e),
                            map_name: None,
                            description: format!(
                                "originated routes on {} satisfy the edge invariant",
                                self.topo.edge_name(e)
                            ),
                        },
                        body: CheckBody::Originate { edge: e, ensure },
                    });
                    id += 1;
                }
            }
        }
        // Subsumption: I_ℓ ⟹ P.
        out.push(ResolvedCheck {
            check: Check {
                id,
                kind: CheckKind::Subsumption,
                location: prop.location,
                edge: None,
                map_name: None,
                description: format!(
                    "invariant at {} implies the property",
                    prop.location.display(self.topo)
                ),
            },
            body: CheckBody::Implication {
                assume: inv.at(self.topo, prop.location),
                ensure: prop.pred.clone(),
            },
        });
        out
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Execute pre-resolved checks through the configured pipeline
    /// (crate-internal entry point for the liveness engine).
    pub(crate) fn run_resolved(&self, universe: &Universe, checks: &[ResolvedCheck]) -> Report {
        self.run(universe, checks)
    }

    fn run(&self, universe: &Universe, checks: &[ResolvedCheck]) -> Report {
        let t0 = Instant::now();
        obs::add("engine.checks_posed", checks.len() as u64);
        let _span = obs::span!(
            "run_checks",
            checks = checks.len(),
            mode = self.mode_label()
        );
        // Portfolio thread budget for this run: spare cores after the
        // execution mode takes its share. Group parallelism outranks
        // portfolio parallelism — a fully-subscribed orchestrated run
        // gets a zero-slot pool and every query stays sequential.
        let slots = self.solver.portfolio.as_ref().map(|_| {
            let cores = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4);
            let workers = match self.mode {
                RunMode::Parallel => self.jobs.unwrap_or(cores),
                RunMode::Sequential => 1,
            };
            smt::PortfolioSlots::new(cores.saturating_sub(workers))
        });
        let slots = slots.as_ref();
        let (outcomes, exec) = match self.mode {
            RunMode::Sequential if !self.incremental => (
                checks.iter().map(|c| self.run_one(universe, c)).collect(),
                RunStats::default(),
            ),
            RunMode::Sequential => self.run_sequential_incremental(universe, checks, slots),
            RunMode::Parallel => self.run_orchestrated(universe, checks, slots),
        };
        let mut report = Report {
            outcomes,
            total_time: t0.elapsed(),
            exec,
        };
        // Deterministic report assembly regardless of completion order.
        report.sort_by_id();
        report
    }

    /// Execute checks and deliver every [`CheckOutcome`] to `sink` in
    /// ascending check-id order without materialising the full outcome
    /// vector. Sequential incremental runs stream through a reorder
    /// buffer whose peak size is recorded as the
    /// `engine.report_frontier_peak` gauge; plain sequential runs
    /// stream one check at a time; orchestrated runs keep whole-run
    /// assembly (dedup and cache bookkeeping need it) and drain sorted.
    fn run_streamed(
        &self,
        universe: &Universe,
        checks: &[ResolvedCheck],
        sink: &mut dyn FnMut(CheckOutcome),
    ) -> RunStats {
        // In-order delivery relies on resolved ids being dense and
        // ascending, which `resolve_suite` + batch re-identification
        // guarantee.
        debug_assert!(checks.iter().enumerate().all(|(i, c)| c.check.id == i));
        obs::add("engine.checks_posed", checks.len() as u64);
        let _span = obs::span!(
            "run_checks",
            checks = checks.len(),
            mode = self.mode_label()
        );
        let slots = self.solver.portfolio.as_ref().map(|_| {
            let cores = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4);
            let workers = match self.mode {
                RunMode::Parallel => self.jobs.unwrap_or(cores),
                RunMode::Sequential => 1,
            };
            smt::PortfolioSlots::new(cores.saturating_sub(workers))
        });
        let slots = slots.as_ref();
        match self.mode {
            RunMode::Sequential if !self.incremental => {
                for c in checks {
                    sink(self.run_one(universe, c));
                }
                RunStats::default()
            }
            RunMode::Sequential => {
                self.run_sequential_incremental_streamed(universe, checks, slots, sink)
            }
            RunMode::Parallel => {
                let (mut outcomes, exec) = self.run_orchestrated(universe, checks, slots);
                outcomes.sort_by_key(|o| o.check.id);
                for o in outcomes {
                    sink(o);
                }
                exec
            }
        }
    }

    /// The execution-mode label attached to trace spans.
    fn mode_label(&self) -> &'static str {
        match (self.mode, self.incremental) {
            (RunMode::Sequential, false) => "sequential",
            (RunMode::Sequential, true) => "sequential-incremental",
            (RunMode::Parallel, false) => "parallel",
            (RunMode::Parallel, true) => "parallel-incremental",
        }
    }

    /// Sequential incremental execution: group checks by encoding base,
    /// run each group on one persistent session, reassemble in order.
    fn run_sequential_incremental(
        &self,
        universe: &Universe,
        checks: &[ResolvedCheck],
        slots: Option<&Arc<smt::PortfolioSlots>>,
    ) -> (Vec<CheckOutcome>, RunStats) {
        let mut order: Vec<(u64, Vec<usize>)> = Vec::new();
        let mut group_of: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for (i, c) in checks.iter().enumerate() {
            let key = c.body.group_key();
            match group_of.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => order[*e.get()].1.push(i),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(order.len());
                    order.push((key, vec![i]));
                }
            }
        }
        let mut exec = RunStats {
            groups: order.len(),
            assumption_solves: checks.len().saturating_sub(order.len()),
            ..RunStats::default()
        };
        if order.len() == checks.len() {
            // No sharing to exploit: keep the stats line quiet.
            exec = RunStats::default();
        }
        let mut outcomes: Vec<Option<CheckOutcome>> = (0..checks.len()).map(|_| None).collect();
        for (_, idxs) in order {
            let group: Vec<&ResolvedCheck> = idxs.iter().map(|&i| &checks[i]).collect();
            let solved = self.run_group(universe, &group, slots);
            for (i, s) in idxs.into_iter().zip(solved) {
                outcomes[i] = Some(CheckOutcome {
                    check: checks[i].check.clone(),
                    result: s.result,
                    stats: s.stats,
                    core: s.core,
                });
            }
        }
        (outcomes.into_iter().map(Option::unwrap).collect(), exec)
    }

    /// [`Verifier::run_sequential_incremental`] with in-order streaming
    /// delivery: outcomes complete in group order (first-seen encoding
    /// base), so a reorder buffer holds exactly the outcomes that
    /// finished ahead of a still-unfinished lower check id — the
    /// frontier of the streaming report. Its peak size is recorded as
    /// the `engine.report_frontier_peak` gauge; everything at or below
    /// `next` has already left the buffer through `sink`.
    fn run_sequential_incremental_streamed(
        &self,
        universe: &Universe,
        checks: &[ResolvedCheck],
        slots: Option<&Arc<smt::PortfolioSlots>>,
        sink: &mut dyn FnMut(CheckOutcome),
    ) -> RunStats {
        let mut order: Vec<(u64, Vec<usize>)> = Vec::new();
        let mut group_of: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for (i, c) in checks.iter().enumerate() {
            let key = c.body.group_key();
            match group_of.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => order[*e.get()].1.push(i),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(order.len());
                    order.push((key, vec![i]));
                }
            }
        }
        let mut exec = RunStats {
            groups: order.len(),
            assumption_solves: checks.len().saturating_sub(order.len()),
            ..RunStats::default()
        };
        if order.len() == checks.len() {
            // No sharing to exploit: keep the stats line quiet.
            exec = RunStats::default();
        }
        let mut next = 0usize;
        let mut pending: BTreeMap<usize, CheckOutcome> = BTreeMap::new();
        let mut frontier_peak = 0usize;
        for (_, idxs) in order {
            let group: Vec<&ResolvedCheck> = idxs.iter().map(|&i| &checks[i]).collect();
            let solved = self.run_group(universe, &group, slots);
            for (i, s) in idxs.into_iter().zip(solved) {
                pending.insert(
                    i,
                    CheckOutcome {
                        check: checks[i].check.clone(),
                        result: s.result,
                        stats: s.stats,
                        core: s.core,
                    },
                );
            }
            frontier_peak = frontier_peak.max(pending.len());
            while let Some(o) = pending.remove(&next) {
                sink(o);
                next += 1;
            }
        }
        debug_assert!(pending.is_empty());
        obs::gauge_max("engine.report_frontier_peak", frontier_peak as u64);
        exec
    }

    /// Lower resolved checks into orchestrator jobs: fingerprint each
    /// body, deduplicate structures, consult the cache (re-validating
    /// spilled failures), batch the remainder by encoding-base key, solve
    /// whole groups on the work-stealing pool, and reattach per-instance
    /// descriptors.
    fn run_orchestrated(
        &self,
        universe: &Universe,
        checks: &[ResolvedCheck],
        slots: Option<&Arc<smt::PortfolioSlots>>,
    ) -> (Vec<CheckOutcome>, RunStats) {
        let ufp = universe_digest(universe);
        // All implication checks share one encoding base, which would
        // otherwise serialize every subsumption check of a
        // multi-property run onto a single worker: spread that one
        // unbounded group over ~worker-count chunks — session reuse
        // within a chunk, parallelism across chunks. Transfer groups are
        // naturally bounded (one per edge direction) and stay whole.
        let chunks = self
            .jobs
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(4)
            })
            .max(1) as u64;
        let keyed: Vec<(Fingerprint, u64, &ResolvedCheck)> = checks
            .iter()
            .enumerate()
            .map(|(i, c)| {
                (
                    check_fingerprint(ufp, self.policy, &self.ghosts, &c.body),
                    // Without incremental solving each check is its own
                    // "group", preserving per-check work stealing.
                    match &c.body {
                        _ if !self.incremental => i as u64,
                        CheckBody::Implication { .. } => c.body.group_key() | (i as u64 % chunks),
                        _ => c.body.group_key(),
                    },
                    c,
                )
            })
            .collect();
        let cfg = RunConfig {
            jobs: self.jobs,
            dedup: self.dedup,
        };
        let batch = run_grouped(
            cfg,
            self.cache.as_deref(),
            &keyed,
            |rc: &&ResolvedCheck, v: &SolvedCheck| self.cached_result_still_valid(universe, rc, v),
            |group: &[&&ResolvedCheck]| {
                let refs: Vec<&ResolvedCheck> = group.iter().map(|rc| **rc).collect();
                if self.incremental {
                    self.run_group(universe, &refs, slots)
                } else {
                    refs.iter()
                        .map(|rc| {
                            let o = self.run_one(universe, rc);
                            SolvedCheck {
                                result: o.result,
                                stats: o.stats,
                                core: None,
                            }
                        })
                        .collect()
                }
            },
        );
        let mut stats = batch.stats;
        if !self.incremental {
            // Singleton groups are a scheduling artifact here.
            stats.groups = 0;
            stats.assumption_solves = 0;
        }
        let outcomes = checks
            .iter()
            .zip(batch.results)
            .zip(batch.fresh)
            .map(|((c, s), fresh)| {
                // Replicated answers (dedup copies, cache hits) keep the
                // formula-size stats — the formula is identical — but drop
                // the work counters, so aggregate solve/encode times count
                // each real solver invocation exactly once.
                let stats = if fresh {
                    s.stats
                } else {
                    SolverStats {
                        num_vars: s.stats.num_vars,
                        num_clauses: s.stats.num_clauses,
                        ..SolverStats::default()
                    }
                };
                CheckOutcome {
                    check: c.check.clone(),
                    result: s.result,
                    stats,
                    core: s.core,
                }
            })
            .collect();
        (outcomes, stats)
    }

    /// Re-validate a cached verdict before trusting it. Passes are
    /// trusted (equal fingerprints mean bit-identical formulas); spilled
    /// failures are checked by pinning the counterexample's input route
    /// in a fresh encoding of the check and asking the solver whether it
    /// still violates the obligation — essentially unit propagation, far
    /// cheaper than an unconstrained solve. A stale or corrupt entry is
    /// rejected and the check re-proved.
    fn cached_result_still_valid(
        &self,
        universe: &Universe,
        rc: &ResolvedCheck,
        solved: &SolvedCheck,
    ) -> bool {
        if obs::enabled() {
            let t0 = Instant::now();
            let ok = self.cached_result_still_valid_inner(universe, rc, solved);
            obs::add("cache.validates", 1);
            obs::add("cache.validate_ns", t0.elapsed().as_nanos() as u64);
            return ok;
        }
        self.cached_result_still_valid_inner(universe, rc, solved)
    }

    fn cached_result_still_valid_inner(
        &self,
        universe: &Universe,
        rc: &ResolvedCheck,
        solved: &SolvedCheck,
    ) -> bool {
        let CheckResult::Fail(cex) = &solved.result else {
            return true;
        };
        match &rc.body {
            CheckBody::Transfer {
                edge,
                is_import,
                assume,
                ensure,
                require_accept,
            } => {
                let mut pool = TermPool::new();
                let input = SymRoute::fresh(&mut pool, universe, "r");
                let wf = input.well_formed(&mut pool);
                let pin = input.equals_counterexample(&mut pool, universe, &cex.input);
                let transfer = self.encode_transfer(&mut pool, universe, *edge, *is_import, &input);
                let (pre, neg) = transfer_violation(
                    &mut pool,
                    universe,
                    &input,
                    &transfer,
                    assume,
                    ensure,
                    *require_accept,
                );
                match smt::solve(&pool, &[wf, pin, pre, neg]) {
                    SatResult::Unsat => false,
                    SatResult::Sat(model) => {
                        // The input still violates — but the spilled
                        // *verdict details* must also match what the live
                        // transfer does on that input, or a forged entry
                        // could replay fabricated output/rejection data.
                        let rejected = model.eval_bool(&pool, transfer.reject).unwrap_or(false);
                        let out = if rejected {
                            None
                        } else {
                            Some(transfer.out.concretize(&pool, universe, &model))
                        };
                        rejected == cex.rejected && out == cex.output
                    }
                }
            }
            CheckBody::Originate { edge, ensure } => {
                let ghosts: BTreeMap<String, bool> = self
                    .ghosts
                    .iter()
                    .map(|g| (g.name.clone(), g.originate_value))
                    .collect();
                !cex.rejected
                    && cex.output.is_none()
                    && self
                        .policy
                        .originated(*edge)
                        .iter()
                        .any(|r| *r == cex.input.route && !ensure.eval(r, &ghosts))
            }
            CheckBody::Implication { assume, ensure } => {
                let mut pool = TermPool::new();
                let r = SymRoute::fresh(&mut pool, universe, "r");
                let wf = r.well_formed(&mut pool);
                let pin = r.equals_counterexample(&mut pool, universe, &cex.input);
                let (pre, neg) = implication_violation(&mut pool, universe, &r, assume, ensure);
                !cex.rejected
                    && cex.output.is_none()
                    && smt::solve(&pool, &[wf, pin, pre, neg]).is_sat()
            }
        }
    }

    pub(crate) fn encode_transfer(
        &self,
        pool: &mut TermPool,
        universe: &Universe,
        edge: EdgeId,
        is_import: bool,
        input: &SymRoute,
    ) -> Transfer {
        if is_import {
            encode_import(
                pool,
                universe,
                self.policy.import_map(edge),
                &self.ghosts,
                edge,
                input,
            )
        } else {
            encode_export(
                pool,
                universe,
                self.policy.export_map(edge),
                &self.ghosts,
                edge,
                input,
            )
        }
    }

    /// Solve one encoding-base group on a persistent assumption-based
    /// session: the symbolic route, its well-formedness constraint and
    /// (for transfer groups) the route-map transfer relation are encoded
    /// once; each check contributes only its assume/ensure predicates —
    /// one activation literal per assume **conjunct** plus one for the
    /// negated goal — and is decided by an assumption solve that reuses
    /// everything the session has learnt. A passing check reads the
    /// failed assumptions back as its conjunct-level unsat core; a
    /// failing check re-derives its counterexample on a fresh one-shot
    /// instance, so session history can never influence what a failure
    /// prints (fresh and grouped runs stay byte-identical).
    ///
    /// Cross-property note: a group may mix checks from *different*
    /// properties — the encoding base (`CheckBody::group_key`) is
    /// deliberately property-agnostic, so a multi-property batch encodes
    /// each edge's transfer relation exactly once for all of them.
    fn run_group(
        &self,
        universe: &Universe,
        checks: &[&ResolvedCheck],
        slots: Option<&Arc<smt::PortfolioSlots>>,
    ) -> Vec<SolvedCheck> {
        if !obs::enabled() {
            return self.run_group_inner(universe, checks, slots);
        }
        // Label groups by their representative check — the encoding base
        // is per edge-direction (or the shared implication base), so the
        // first member names the group for the profile's hot-group view.
        let first = checks.first().expect("groups are non-empty");
        let label = format!(
            "{} {}",
            first.check.kind,
            first.check.location.display(self.topo)
        );
        let _span = obs::span!("solve_group", group = label, checks = checks.len());
        let out = self.run_group_inner(universe, checks, slots);
        let (mut encode_ns, mut solve_ns) = (0u64, 0u64);
        for s in &out {
            encode_ns += s.stats.encode_time.as_nanos() as u64;
            solve_ns += s.stats.solve_time.as_nanos() as u64;
        }
        obs::add("engine.group_encode_ns", encode_ns);
        obs::add("engine.group_solve_ns", solve_ns);
        out
    }

    /// A group session configured by this verifier's solver tuning:
    /// base SAT config, the feed-path ablation switch and — for groups
    /// wide enough to clear the engine-side estimate — portfolio racing
    /// against the run's shared slot pool. `label` is lazy because it
    /// only feeds the per-group win-attribution span.
    fn group_session(
        &self,
        slots: Option<&Arc<smt::PortfolioSlots>>,
        width: usize,
        label: impl FnOnce() -> String,
    ) -> IncrementalSession {
        let mut sess = IncrementalSession::new()
            .with_config(self.solver.config.clone())
            .with_buffered_feed(self.solver.buffered_feed);
        if let (Some(p), Some(slots)) = (&self.solver.portfolio, slots) {
            if width >= p.min_checks {
                sess = sess.with_portfolio(smt::PortfolioConfig {
                    k: p.k,
                    min_clauses: p.min_clauses,
                    seed: p.seed,
                    label: label(),
                    slots: Some(Arc::clone(slots)),
                });
            }
        }
        sess
    }

    fn run_group_inner(
        &self,
        universe: &Universe,
        checks: &[&ResolvedCheck],
        slots: Option<&Arc<smt::PortfolioSlots>>,
    ) -> Vec<SolvedCheck> {
        let first = checks.first().expect("groups are non-empty");
        match &first.body {
            CheckBody::Originate { .. } => checks
                .iter()
                .map(|rc| {
                    let CheckBody::Originate { edge, ensure } = &rc.body else {
                        unreachable!("originate group mixes check shapes");
                    };
                    let o = self.run_originate_check(&rc.check, *edge, ensure);
                    SolvedCheck {
                        result: o.result,
                        stats: o.stats,
                        core: None,
                    }
                })
                .collect(),
            CheckBody::Transfer {
                edge, is_import, ..
            } => {
                let (edge, is_import) = (*edge, *is_import);
                let mut sess = self.group_session(slots, checks.len(), || {
                    format!(
                        "{} {}",
                        first.check.kind,
                        first.check.location.display(self.topo)
                    )
                });
                let input = SymRoute::fresh(sess.pool_mut(), universe, "r");
                let wf = input.well_formed(sess.pool_mut());
                sess.assert(wf);
                let transfer =
                    self.encode_transfer(sess.pool_mut(), universe, edge, is_import, &input);
                let out: Vec<SolvedCheck> = checks
                    .iter()
                    .map(|rc| {
                        let CheckBody::Transfer {
                            assume,
                            ensure,
                            require_accept,
                            ..
                        } = &rc.body
                        else {
                            unreachable!("transfer group mixes check shapes");
                        };
                        let conjs = assume.conjuncts();
                        let neg = transfer_goal_negation(
                            sess.pool_mut(),
                            universe,
                            &transfer,
                            ensure,
                            *require_accept,
                        );
                        let (result, stats, core) =
                            solve_conjunct_gated(&mut sess, universe, &input, &conjs, neg, false);
                        match result {
                            SatResult::Unsat => SolvedCheck {
                                result: CheckResult::Pass,
                                stats,
                                core,
                            },
                            SatResult::Sat(_) => {
                                let o = self.run_one(universe, rc);
                                SolvedCheck {
                                    result: o.result,
                                    stats: o.stats,
                                    core: None,
                                }
                            }
                        }
                    })
                    .collect();
                obs::gauge_max("engine.term_pool_terms", sess.pool().len() as u64);
                out
            }
            CheckBody::Implication { .. } => {
                let mut sess = self.group_session(slots, checks.len(), || "implication".into());
                let r = SymRoute::fresh(sess.pool_mut(), universe, "r");
                let wf = r.well_formed(sess.pool_mut());
                sess.assert(wf);
                let out: Vec<SolvedCheck> = checks
                    .iter()
                    .map(|rc| {
                        let CheckBody::Implication { assume, ensure } = &rc.body else {
                            unreachable!("implication group mixes check shapes");
                        };
                        let conjs = assume.conjuncts();
                        let neg = implication_goal_negation(sess.pool_mut(), universe, &r, ensure);
                        let (result, stats, core) =
                            solve_conjunct_gated(&mut sess, universe, &r, &conjs, neg, false);
                        match result {
                            SatResult::Unsat => SolvedCheck {
                                result: CheckResult::Pass,
                                stats,
                                core,
                            },
                            SatResult::Sat(_) => {
                                let o = self.run_one(universe, rc);
                                SolvedCheck {
                                    result: o.result,
                                    stats: o.stats,
                                    core: None,
                                }
                            }
                        }
                    })
                    .collect();
                obs::gauge_max("engine.term_pool_terms", sess.pool().len() as u64);
                out
            }
        }
    }

    pub(crate) fn run_one(&self, universe: &Universe, rc: &ResolvedCheck) -> CheckOutcome {
        match &rc.body {
            CheckBody::Transfer {
                edge,
                is_import,
                assume,
                ensure,
                require_accept,
            } => self.run_transfer_check(
                universe,
                &rc.check,
                *edge,
                *is_import,
                assume,
                ensure,
                *require_accept,
            ),
            CheckBody::Originate { edge, ensure } => {
                self.run_originate_check(&rc.check, *edge, ensure)
            }
            CheckBody::Implication { assume, ensure } => {
                self.run_implication_check(universe, &rc.check, assume, ensure)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_transfer_check(
        &self,
        universe: &Universe,
        check: &Check,
        edge: EdgeId,
        is_import: bool,
        assume: &RoutePred,
        ensure: &RoutePred,
        require_accept: bool,
    ) -> CheckOutcome {
        let mut pool = TermPool::new();
        let input = SymRoute::fresh(&mut pool, universe, "r");
        let wf = input.well_formed(&mut pool);
        let transfer: Transfer = self.encode_transfer(&mut pool, universe, edge, is_import, &input);
        // Counterexample query: assume ∧ ¬goal.
        let (pre, neg) = transfer_violation(
            &mut pool,
            universe,
            &input,
            &transfer,
            assume,
            ensure,
            require_accept,
        );
        let (result, stats) = solve_with_stats(&pool, &[wf, pre, neg]);
        let result = match result {
            SatResult::Unsat => CheckResult::Pass,
            SatResult::Sat(model) => {
                let rejected = model.eval_bool(&pool, transfer.reject).unwrap_or(false);
                CheckResult::Fail(Box::new(Counterexample {
                    input: input.concretize(&pool, universe, &model),
                    output: if rejected {
                        None
                    } else {
                        Some(transfer.out.concretize(&pool, universe, &model))
                    },
                    rejected,
                }))
            }
        };
        CheckOutcome {
            check: check.clone(),
            result,
            stats,
            core: None,
        }
    }

    pub(crate) fn run_originate_check(
        &self,
        check: &Check,
        edge: EdgeId,
        ensure: &RoutePred,
    ) -> CheckOutcome {
        // Originate(A -> B) is a concrete, finite set: evaluate directly.
        let ghosts: BTreeMap<String, bool> = self
            .ghosts
            .iter()
            .map(|g| (g.name.clone(), g.originate_value))
            .collect();
        for r in self.policy.originated(edge) {
            if !ensure.eval(r, &ghosts) {
                let result = CheckResult::Fail(Box::new(Counterexample {
                    input: crate::symbolic::ConcreteRoute {
                        route: r.clone(),
                        comm_other: false,
                        aspath_matches: BTreeMap::new(),
                        ghosts: ghosts.clone(),
                    },
                    output: None,
                    rejected: false,
                }));
                return CheckOutcome {
                    check: check.clone(),
                    result,
                    stats: SolverStats::default(),
                    core: None,
                };
            }
        }
        CheckOutcome {
            check: check.clone(),
            result: CheckResult::Pass,
            stats: SolverStats::default(),
            core: None,
        }
    }

    fn run_implication_check(
        &self,
        universe: &Universe,
        check: &Check,
        assume: &RoutePred,
        ensure: &RoutePred,
    ) -> CheckOutcome {
        let mut pool = TermPool::new();
        let r = SymRoute::fresh(&mut pool, universe, "r");
        let wf = r.well_formed(&mut pool);
        let (pre, neg) = implication_violation(&mut pool, universe, &r, assume, ensure);
        let (result, stats) = solve_with_stats(&pool, &[wf, pre, neg]);
        let result = match result {
            SatResult::Unsat => CheckResult::Pass,
            SatResult::Sat(model) => CheckResult::Fail(Box::new(Counterexample {
                input: r.concretize(&pool, universe, &model),
                output: None,
                rejected: false,
            })),
        };
        CheckOutcome {
            check: check.clone(),
            result,
            stats,
            core: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ghost::GhostUpdate;
    use bgp_model::routemap::{MatchCond, RouteMap, RouteMapEntry, SetAction};
    use bgp_model::{Community, Route};

    fn c(s: &str) -> Community {
        s.parse().unwrap()
    }

    /// The Figure-1 network with the community-based no-transit scheme.
    fn figure1() -> (Topology, Policy) {
        let mut t = Topology::new();
        let r1 = t.add_router("R1", 65000);
        let r2 = t.add_router("R2", 65000);
        let r3 = t.add_router("R3", 65000);
        let isp1 = t.add_external("ISP1", 100);
        let isp2 = t.add_external("ISP2", 200);
        let cust = t.add_external("Customer", 300);
        t.add_session(r1, r2);
        t.add_session(r1, r3);
        t.add_session(r2, r3);
        t.add_session(isp1, r1);
        t.add_session(isp2, r2);
        t.add_session(cust, r3);

        let mut pol = Policy::new();
        let mut m = RouteMap::new("FROM-ISP1");
        m.push(RouteMapEntry::permit(10).setting(SetAction::Community {
            comms: vec![c("100:1")],
            additive: true,
        }));
        pol.set_import(t.edge_between(isp1, r1).unwrap(), m);
        let mut m = RouteMap::new("FROM-CUST");
        m.push(RouteMapEntry::permit(10).setting(SetAction::ClearCommunities));
        pol.set_import(t.edge_between(cust, r3).unwrap(), m);
        let mut m = RouteMap::new("FROM-ISP2");
        m.push(RouteMapEntry::permit(10).setting(SetAction::ClearCommunities));
        pol.set_import(t.edge_between(isp2, r2).unwrap(), m);
        let mut m = RouteMap::new("TO-ISP2");
        m.push(RouteMapEntry::deny(10).matching(MatchCond::Community {
            comms: vec![c("100:1")],
            match_all: false,
        }));
        m.push(RouteMapEntry::permit(20));
        pol.set_export(t.edge_between(r2, isp2).unwrap(), m);
        (t, pol)
    }

    fn from_isp1_ghost(t: &Topology) -> GhostAttr {
        let isp1 = t.node_by_name("ISP1").unwrap();
        let isp2 = t.node_by_name("ISP2").unwrap();
        let cust = t.node_by_name("Customer").unwrap();
        let r1 = t.node_by_name("R1").unwrap();
        let r2 = t.node_by_name("R2").unwrap();
        let r3 = t.node_by_name("R3").unwrap();
        GhostAttr::new("FromISP1")
            .with_import(t.edge_between(isp1, r1).unwrap(), GhostUpdate::SetTrue)
            .with_import(t.edge_between(isp2, r2).unwrap(), GhostUpdate::SetFalse)
            .with_import(t.edge_between(cust, r3).unwrap(), GhostUpdate::SetFalse)
    }

    fn no_transit_inputs(t: &Topology) -> (SafetyProperty, NetworkInvariants) {
        let r2 = t.node_by_name("R2").unwrap();
        let isp2 = t.node_by_name("ISP2").unwrap();
        let to_isp2 = t.edge_between(r2, isp2).unwrap();
        let prop = SafetyProperty::new(Location::Edge(to_isp2), RoutePred::ghost("FromISP1").not())
            .named("no-transit");
        let key = RoutePred::ghost("FromISP1").implies(RoutePred::has_community(c("100:1")));
        let inv = NetworkInvariants::with_default(key)
            .with(Location::Edge(to_isp2), RoutePred::ghost("FromISP1").not());
        (prop, inv)
    }

    #[test]
    fn table2_no_transit_verifies() {
        let (t, pol) = figure1();
        let (prop, inv) = no_transit_inputs(&t);
        let v = Verifier::new(&t, &pol).with_ghost(from_isp1_ghost(&t));
        let report = v.verify_safety(&prop, &inv);
        assert!(report.all_passed(), "{}", report.format_failures(&t));
        // Linear check count: one import + one export per internal-incident
        // edge direction, plus subsumption.
        assert!(report.num_checks() >= t.num_edges());
    }

    #[test]
    fn seeded_bug_is_localized_to_r1_import() {
        let (t, mut pol) = figure1();
        // Break R1's import: forget to tag some routes (prefix-matched).
        let isp1 = t.node_by_name("ISP1").unwrap();
        let r1 = t.node_by_name("R1").unwrap();
        let e = t.edge_between(isp1, r1).unwrap();
        let mut m = RouteMap::new("FROM-ISP1-BUGGY");
        m.push(
            RouteMapEntry::permit(5).matching(MatchCond::PrefixList(vec![(
                true,
                bgp_model::PrefixRange::orlonger("10.0.0.0/8".parse().unwrap()),
            )])), // forgot the set community!
        );
        m.push(RouteMapEntry::permit(10).setting(SetAction::Community {
            comms: vec![c("100:1")],
            additive: true,
        }));
        pol.set_import(e, m);

        let (prop, inv) = no_transit_inputs(&t);
        let v = Verifier::new(&t, &pol).with_ghost(from_isp1_ghost(&t));
        let report = v.verify_safety(&prop, &inv);
        assert!(!report.all_passed());
        let failures = report.failures();
        assert_eq!(failures.len(), 1, "{}", report.format_failures(&t));
        let f = failures[0];
        assert_eq!(f.check.kind, CheckKind::Import);
        assert_eq!(f.check.edge, Some(e));
        assert_eq!(f.check.map_name.as_deref(), Some("FROM-ISP1-BUGGY"));
        // The counterexample is a 10/8-covered route without the tag.
        if let CheckResult::Fail(cex) = &f.result {
            // The invariant on an edge from an external neighbor is True,
            // so the input's ghost bit never reaches the solver: it must
            // be reported as unwitnessed, not fabricated as false.
            assert!(!cex.input.ghosts.contains_key("FromISP1"));
            let out = cex.output.as_ref().expect("accepted");
            assert!(out.ghosts["FromISP1"]);
            assert!(!out.route.has_community(c("100:1")));
        } else {
            panic!("expected failure");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let (t, pol) = figure1();
        let (prop, inv) = no_transit_inputs(&t);
        let seq = Verifier::new(&t, &pol)
            .with_ghost(from_isp1_ghost(&t))
            .verify_safety(&prop, &inv);
        let par = Verifier::new(&t, &pol)
            .with_ghost(from_isp1_ghost(&t))
            .with_mode(RunMode::Parallel)
            .verify_safety(&prop, &inv);
        assert_eq!(seq.num_checks(), par.num_checks());
        for (a, b) in seq.outcomes.iter().zip(par.outcomes.iter()) {
            assert_eq!(a.check.id, b.check.id);
            assert_eq!(a.result.passed(), b.result.passed());
        }
    }

    #[test]
    fn streaming_batch_agrees_with_batch() {
        let (t, pol) = figure1();
        let (prop, inv) = no_transit_inputs(&t);
        let r2 = t.node_by_name("R2").unwrap();
        let isp2 = t.node_by_name("ISP2").unwrap();
        let to_isp2 = t.edge_between(r2, isp2).unwrap();
        // Second suite fails its subsumption check, so the parity below
        // covers failure retention, not just pass aggregation.
        let bad_prop = SafetyProperty::new(
            Location::Edge(to_isp2),
            RoutePred::local_pref(crate::pred::Cmp::Eq, 7),
        )
        .named("unprovable");
        let bad_inv = NetworkInvariants::new();
        for mode in [RunMode::Sequential, RunMode::Parallel] {
            let v = Verifier::new(&t, &pol)
                .with_ghost(from_isp1_ghost(&t))
                .with_mode(mode);
            let suites: Vec<(&[SafetyProperty], &NetworkInvariants)> = vec![
                (std::slice::from_ref(&prop), &inv),
                (std::slice::from_ref(&bad_prop), &bad_inv),
            ];
            let batch = v.verify_safety_batch(&suites);
            let streamed = v.verify_safety_batch_streaming(&suites, true);
            assert_eq!(batch.reports.len(), streamed.summaries.len());
            assert!(!streamed.all_passed());
            assert_eq!(batch.num_checks(), streamed.num_checks());
            for (r, s) in batch.reports.iter().zip(&streamed.summaries) {
                assert_eq!(r.num_checks(), s.num_checks());
                assert_eq!(r.all_passed(), s.all_passed());
                assert_eq!(r.solver_invocations(), s.solver_invocations());
                assert_eq!(r.max_vars(), s.max_vars());
                assert_eq!(r.max_clauses(), s.max_clauses());
                let rf: Vec<(usize, String)> = r
                    .failures()
                    .iter()
                    .map(|f| (f.check.id, format!("{:?}", f.result)))
                    .collect();
                let sf: Vec<(usize, String)> = s
                    .failures()
                    .iter()
                    .map(|f| (f.check.id, format!("{:?}", f.result)))
                    .collect();
                assert_eq!(rf, sf);
                let rc: Vec<(usize, &[usize])> =
                    r.cores().iter().map(|&(c, k)| (c.id, k)).collect();
                let sc: Vec<(usize, &[usize])> =
                    s.cores().iter().map(|&(c, k)| (c.id, k)).collect();
                assert_eq!(rc, sc);
            }
        }
    }

    #[test]
    fn incremental_runs_subset() {
        let (t, pol) = figure1();
        let (prop, inv) = no_transit_inputs(&t);
        let v = Verifier::new(&t, &pol).with_ghost(from_isp1_ghost(&t));
        let full = v.verify_safety(&prop, &inv);
        let r1 = t.node_by_name("R1").unwrap();
        let inc = v.verify_safety_incremental(&prop, &inv, &[r1]);
        assert!(inc.num_checks() < full.num_checks());
        assert!(inc.all_passed());
        // R1 touches sessions to R2, R3, ISP1: 6 directed edges; import
        // checks only where receiver internal, export only where sender
        // internal, plus subsumption.
        assert!(inc.num_checks() >= 6);
    }

    #[test]
    fn subsumption_failure_detected() {
        let (t, pol) = figure1();
        let r2 = t.node_by_name("R2").unwrap();
        let isp2 = t.node_by_name("ISP2").unwrap();
        let to_isp2 = t.edge_between(r2, isp2).unwrap();
        // Property asks for something the invariant does not imply.
        let prop = SafetyProperty::new(
            Location::Edge(to_isp2),
            RoutePred::local_pref(crate::pred::Cmp::Eq, 7),
        );
        let inv = NetworkInvariants::new(); // all True
        let v = Verifier::new(&t, &pol);
        let report = v.verify_safety(&prop, &inv);
        let fails = report.failures();
        assert!(fails.iter().any(|f| f.check.kind == CheckKind::Subsumption));
    }

    #[test]
    fn failure_spill_roundtrips_with_counterexample() {
        let mut route = Route::new("10.1.2.0/24".parse().unwrap());
        route.local_pref = 120;
        route.communities.insert(c("100:1"));
        let input = crate::symbolic::ConcreteRoute {
            route: route.clone(),
            comm_other: true,
            aspath_matches: [("_65000_".to_string(), true)].into_iter().collect(),
            ghosts: [("G".to_string(), false)].into_iter().collect(),
        };
        let solved = SolvedCheck {
            result: CheckResult::Fail(Box::new(Counterexample {
                input: input.clone(),
                output: None,
                rejected: true,
            })),
            stats: SolverStats {
                num_vars: 12,
                num_clauses: 34,
                ..SolverStats::default()
            },
            core: None,
        };
        let spilled = solved.spill_value().expect("failures are durable now");
        let back = SolvedCheck::from_spill(&spilled).expect("decodes");
        let CheckResult::Fail(cex) = &back.result else {
            panic!("expected a failure");
        };
        assert_eq!(cex.input, input);
        assert_eq!(cex.output, None);
        assert!(cex.rejected);
        assert_eq!(back.stats.num_vars, 12);
        assert_eq!(back.stats.num_clauses, 34);

        // Passes keep their compact form.
        let pass = SolvedCheck {
            result: CheckResult::Pass,
            stats: SolverStats::default(),
            core: Some(vec![1, 3]),
        };
        let v = pass.spill_value().unwrap();
        let back = SolvedCheck::from_spill(&v).unwrap();
        assert!(back.result.passed());
        assert_eq!(back.core, Some(vec![1, 3]), "cores must spill and reload");
        let pass = SolvedCheck {
            result: CheckResult::Pass,
            stats: SolverStats::default(),
            core: None,
        };
        let v = pass.spill_value().unwrap();
        assert!(SolvedCheck::from_spill(&v).unwrap().result.passed());
    }

    #[test]
    fn group_neighbours_do_not_leak_into_counterexamples() {
        // Two subsumption checks share one implication session: the first
        // references ghost G, the second is ghost-free and fails. The
        // second's counterexample must not "witness" G just because the
        // session encoded it for the first check — fresh and incremental
        // failure listings stay byte-identical.
        let mut t = Topology::new();
        let r = t.add_router("R", 65000);
        let x = t.add_external("X", 1);
        t.add_session(r, x);
        let pol = Policy::new();
        let props = vec![
            SafetyProperty::new(Location::Node(r), RoutePred::ghost("G")).named("ghostly"),
            SafetyProperty::new(
                Location::Node(r),
                RoutePred::local_pref(crate::pred::Cmp::Eq, 7),
            )
            .named("ghost-free"),
        ];
        let inv = NetworkInvariants::new(); // all True: both subsumptions fail
        let ghost = crate::ghost::GhostAttr::new("G");
        let fresh = Verifier::new(&t, &pol)
            .with_ghost(ghost.clone())
            .with_incremental(false)
            .verify_safety_multi(&props, &inv);
        let inc = Verifier::new(&t, &pol)
            .with_ghost(ghost)
            .verify_safety_multi(&props, &inv);
        assert!(!fresh.all_passed());
        assert_eq!(fresh.to_string(), inc.to_string());
        assert_eq!(fresh.format_failures(&t), inc.format_failures(&t));
        // And specifically: the ghost-free failure claims nothing about G.
        let inc_fail = inc
            .failures()
            .into_iter()
            .find(|f| f.check.description.contains("ghost-free"))
            .expect("ghost-free property must fail");
        let CheckResult::Fail(cex) = &inc_fail.result else {
            panic!("expected failure");
        };
        assert!(
            !cex.input.ghosts.contains_key("G"),
            "unwitnessed ghost leaked into the counterexample: {}",
            cex.input
        );
    }

    #[test]
    fn passing_checks_report_unsat_cores() {
        let (t, pol) = figure1();
        let r2 = t.node_by_name("R2").unwrap();
        let isp2 = t.node_by_name("ISP2").unwrap();
        let to_isp2 = t.edge_between(r2, isp2).unwrap();
        let prop = SafetyProperty::new(Location::Edge(to_isp2), RoutePred::ghost("FromISP1").not())
            .named("no-transit");
        // Two-conjunct override at the property edge: the ghost conjunct
        // carries the subsumption proof; the second conjunct is implied
        // by it (so every check still passes) but is dead weight for the
        // subsumption proof itself.
        let key = RoutePred::ghost("FromISP1").implies(RoutePred::has_community(c("100:1")));
        let not_g = RoutePred::ghost("FromISP1").not();
        let inv = NetworkInvariants::with_default(key).with(
            Location::Edge(to_isp2),
            not_g
                .clone()
                .and(not_g.or(RoutePred::local_pref(crate::pred::Cmp::Le, 1_000_000))),
        );
        let v = Verifier::new(&t, &pol).with_ghost(from_isp1_ghost(&t));
        let props = [prop];
        let report = v.verify_safety_multi(&props, &inv);
        assert!(report.all_passed(), "{}", report.format_failures(&t));
        let sub = report
            .outcomes
            .iter()
            .find(|o| o.check.kind == CheckKind::Subsumption)
            .expect("subsumption check exists");
        let core = sub.core.as_ref().expect("session solves report cores");
        assert_eq!(core, &vec![0], "only the ghost conjunct is load-bearing");
        // Replaying the core alone still proves the check; the dead
        // conjunct alone does not.
        assert_eq!(
            v.check_passes_with_conjuncts(&props, &inv, sub.check.id, core),
            Some(true)
        );
        assert_eq!(
            v.check_passes_with_conjuncts(&props, &inv, sub.check.id, &[1]),
            Some(false)
        );
        // Every reported core replays to UNSAT, and the blame view lists
        // them.
        for (check, core) in report.cores() {
            assert_eq!(
                v.check_passes_with_conjuncts(&props, &inv, check.id, core),
                Some(true),
                "core of check #{} is unsound",
                check.id
            );
        }
        // Fresh per-check solving has no assumption session to read
        // cores from.
        let fresh = Verifier::new(&t, &pol)
            .with_ghost(from_isp1_ghost(&t))
            .with_incremental(false)
            .verify_safety_multi(&props, &inv);
        assert!(fresh.outcomes.iter().all(|o| o.core.is_none()));
        assert_eq!(fresh.to_string(), report.to_string());
    }

    #[test]
    fn batch_matches_standalone_suites_byte_for_byte() {
        let (t, pol) = figure1();
        let (prop, inv) = no_transit_inputs(&t);
        let r1 = t.node_by_name("R1").unwrap();
        // Suite 2: a trivially-true bound under its own invariants.
        let always = RoutePred::local_pref(crate::pred::Cmp::Le, u32::MAX);
        let prop2 = SafetyProperty::new(Location::Node(r1), always.clone()).named("lp-bounded");
        let inv2 = NetworkInvariants::with_default(always);
        // Suite 3: fails (nothing implies lp == 7).
        let prop3 = SafetyProperty::new(
            Location::Node(r1),
            RoutePred::local_pref(crate::pred::Cmp::Eq, 7),
        )
        .named("lp-seven");
        let inv3 = NetworkInvariants::new();
        let v = Verifier::new(&t, &pol).with_ghost(from_isp1_ghost(&t));
        let suites: Vec<(&[SafetyProperty], &NetworkInvariants)> = vec![
            (std::slice::from_ref(&prop), &inv),
            (std::slice::from_ref(&prop2), &inv2),
            (std::slice::from_ref(&prop3), &inv3),
        ];
        let multi = v.verify_safety_batch(&suites);
        assert_eq!(multi.reports.len(), 3);
        assert!(!multi.all_passed());
        for ((props, sinv), got) in suites.iter().zip(&multi.reports) {
            let solo = v.verify_safety_multi(props, sinv);
            assert_eq!(solo.to_string(), got.to_string());
            assert_eq!(solo.format_failures(&t), got.format_failures(&t));
        }
        // Cross-property sharing really happened: one property per suite
        // means a standalone run has only singleton encoding-base groups,
        // while the batch solves the suites' same-edge checks as warm
        // assumption queries on shared sessions.
        assert!(multi.exec.groups > 0, "{:?}", multi.exec);
        assert!(multi.exec.assumption_solves > 0, "{:?}", multi.exec);
        // The batch shape holds in parallel mode too.
        let par = Verifier::new(&t, &pol)
            .with_ghost(from_isp1_ghost(&t))
            .with_mode(RunMode::Parallel)
            .verify_safety_batch(&suites);
        for (a, b) in multi.reports.iter().zip(&par.reports) {
            assert_eq!(a.to_string(), b.to_string());
            assert_eq!(a.format_failures(&t), b.format_failures(&t));
        }
    }

    #[test]
    fn incremental_and_fresh_agree_on_figure1() {
        let (t, pol) = figure1();
        let (prop, inv) = no_transit_inputs(&t);
        let fresh = Verifier::new(&t, &pol)
            .with_ghost(from_isp1_ghost(&t))
            .with_incremental(false)
            .verify_safety(&prop, &inv);
        let inc = Verifier::new(&t, &pol)
            .with_ghost(from_isp1_ghost(&t))
            .verify_safety(&prop, &inv);
        assert_eq!(fresh.to_string(), inc.to_string());
        assert_eq!(fresh.format_failures(&t), inc.format_failures(&t));
    }

    #[test]
    fn originate_check_concrete() {
        let mut t = Topology::new();
        let r = t.add_router("R", 65000);
        let x = t.add_external("X", 1);
        t.add_session(r, x);
        let rx = t.edge_between(r, x).unwrap();
        let mut pol = Policy::new();
        pol.add_origination(rx, Route::new("198.51.100.0/24".parse().unwrap()));

        // Invariant on R -> X: must carry community 9:9 (it does not).
        let prop = SafetyProperty::new(Location::Edge(rx), RoutePred::True);
        let inv = NetworkInvariants::with_default(RoutePred::True)
            .with(Location::Edge(rx), RoutePred::has_community(c("9:9")));
        let v = Verifier::new(&t, &pol);
        let report = v.verify_safety(&prop, &inv);
        let fails = report.failures();
        assert!(
            fails.iter().any(|f| f.check.kind == CheckKind::Originate),
            "{}",
            report.format_failures(&t)
        );
    }
}
