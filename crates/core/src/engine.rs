//! The verification engine: check generation, execution (sequential or
//! parallel), statistics and incremental re-verification.
//!
//! For a safety property, the engine generates the §4.2 checks:
//!
//! * per edge `A -> B` with `B` internal, an **Import** check:
//!   `I_{A->B}(r) ∧ r' = Import(A->B, r) ⟹ r' = Reject ∨ I_B(r')`;
//! * per edge `A -> B` with `A` internal, an **Export** check:
//!   `I_A(r) ∧ r' = Export(A->B, r) ⟹ r' = Reject ∨ I_{A->B}(r')`,
//!   and an **Originate** check: every `r ∈ Originate(A->B)` satisfies
//!   `I_{A->B}`;
//! * one **Subsumption** check: `I_ℓ ⟹ P`.
//!
//! Every check is discharged by a *fresh* SMT instance whose size depends
//! only on one router's configuration (the property behind Figure 3b of
//! the paper), which also makes checks embarrassingly parallel (design
//! decision D3) and incrementally re-checkable: when a node's
//! configuration changes, only the checks touching its edges re-run.

use crate::check::{Check, CheckKind, CheckOutcome, CheckResult, Counterexample, Report};
use crate::encode::{encode_export, encode_import, Transfer};
use crate::fingerprint::{check_fingerprint, universe_digest};
use crate::ghost::GhostAttr;
use crate::invariants::{Location, NetworkInvariants};
use crate::pred::RoutePred;
use crate::safety::SafetyProperty;
use crate::symbolic::SymRoute;
use crate::universe::Universe;
use bgp_model::policy::Policy;
use bgp_model::topology::{EdgeId, NodeId, Topology};
use orchestrator::{run_deduped, Fingerprint, ResultCache, RunConfig, RunStats};
use serde_json::Value;
use smt::{solve_with_stats, SatResult, SolverStats, TermPool};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// How to execute the generated checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RunMode {
    /// One check at a time, in order (paper's sequential numbers, §6.1).
    #[default]
    Sequential,
    /// Orchestrated execution (D3): checks are fingerprinted, identical
    /// structures deduplicated and (optionally) answered from a cache,
    /// and the rest solved on a work-stealing pool.
    Parallel,
}

/// The cross-run check-result cache, keyed by structural fingerprint.
pub type CheckCache = ResultCache<SolvedCheck>;

/// A check's solver-facing outcome, detached from its descriptor so one
/// solved structure can answer every renamed instantiation.
#[derive(Clone, Debug)]
pub struct SolvedCheck {
    /// Pass, or fail with a counterexample.
    pub result: CheckResult,
    /// Solver statistics of the one real invocation.
    pub stats: SolverStats,
}

impl SolvedCheck {
    /// Spill encoding for the disk cache. Only passes are durable:
    /// failures are re-proved on later runs so counterexamples stay
    /// fresh against the current configurations.
    pub fn spill_value(&self) -> Option<Value> {
        match &self.result {
            CheckResult::Pass => Some(serde_json::json!({
                "pass": true,
                "vars": self.stats.num_vars,
                "clauses": self.stats.num_clauses,
            })),
            CheckResult::Fail(_) => None,
        }
    }

    /// Decode the [`SolvedCheck::spill_value`] form.
    pub fn from_spill(v: &Value) -> Option<Self> {
        if v["pass"].as_bool() != Some(true) {
            return None;
        }
        Some(SolvedCheck {
            result: CheckResult::Pass,
            stats: SolverStats {
                num_vars: v["vars"].as_u64().unwrap_or(0),
                num_clauses: v["clauses"].as_u64().unwrap_or(0),
                ..SolverStats::default()
            },
        })
    }
}

/// Load a [`CheckCache`] spilled to `dir` by [`save_check_cache`].
/// Returns the cache and the number of entries loaded (zero when the
/// directory or file does not exist yet).
pub fn load_check_cache(dir: &std::path::Path) -> std::io::Result<(Arc<CheckCache>, usize)> {
    let cache = Arc::new(CheckCache::new());
    let loaded = cache.load_from_dir(dir, SolvedCheck::from_spill)?;
    Ok((cache, loaded))
}

/// Spill a [`CheckCache`] to `dir/cache.json` (passes only; see
/// [`SolvedCheck::spill_value`]). Returns the number of entries written.
pub fn save_check_cache(cache: &CheckCache, dir: &std::path::Path) -> std::io::Result<usize> {
    cache.save_to_dir(dir, SolvedCheck::spill_value)
}

/// The Lightyear verifier for one network.
#[derive(Clone)]
pub struct Verifier<'a> {
    topo: &'a Topology,
    policy: &'a Policy,
    ghosts: Vec<GhostAttr>,
    mode: RunMode,
    /// Worker threads for orchestrated runs (`None`: all cores).
    jobs: Option<usize>,
    /// Collapse structurally identical checks (orchestrated runs).
    dedup: bool,
    /// Cross-run result cache (orchestrated runs).
    cache: Option<Arc<CheckCache>>,
}

/// A fully-resolved check: descriptor plus the predicates its formula
/// needs, self-contained so it can run on any thread.
#[derive(Clone, Debug)]
pub(crate) struct ResolvedCheck {
    pub(crate) check: Check,
    pub(crate) body: CheckBody,
}

#[derive(Clone, Debug)]
pub(crate) enum CheckBody {
    /// assume(r) ∧ r' = transfer(r) ⟹ reject ∨ ensure(r')
    Transfer {
        edge: EdgeId,
        is_import: bool,
        assume: RoutePred,
        ensure: RoutePred,
        /// Liveness propagation: additionally require non-rejection and
        /// drop the `reject ∨ ...` escape.
        require_accept: bool,
    },
    /// Concrete: every originated route satisfies the predicate.
    Originate { edge: EdgeId, ensure: RoutePred },
    /// assume(r) ⟹ ensure(r)
    Implication {
        assume: RoutePred,
        ensure: RoutePred,
    },
}

impl<'a> Verifier<'a> {
    /// A verifier over a topology and policy.
    pub fn new(topo: &'a Topology, policy: &'a Policy) -> Self {
        Verifier {
            topo,
            policy,
            ghosts: Vec::new(),
            mode: RunMode::Sequential,
            jobs: None,
            dedup: true,
            cache: None,
        }
    }

    /// Register a ghost attribute.
    pub fn with_ghost(mut self, g: GhostAttr) -> Self {
        self.ghosts.push(g);
        self
    }

    /// Set the execution mode.
    pub fn with_mode(mut self, mode: RunMode) -> Self {
        self.mode = mode;
        self
    }

    /// The configured execution mode.
    pub fn mode(&self) -> RunMode {
        self.mode
    }

    /// Set the orchestrated worker-thread count (implies
    /// [`RunMode::Parallel`]).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs.max(1));
        self.mode = RunMode::Parallel;
        self
    }

    /// Enable or disable structural deduplication (on by default; only
    /// affects orchestrated runs).
    pub fn with_dedup(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }

    /// Attach a cross-run result cache (only consulted by orchestrated
    /// runs). The cache is shared: clone the `Arc` to reuse it across
    /// verifier instances or runs.
    pub fn with_cache(mut self, cache: Arc<CheckCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The topology under verification.
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// The policy under verification.
    pub fn policy(&self) -> &Policy {
        self.policy
    }

    /// Names of the registered ghost attributes.
    pub fn ghost_names(&self) -> Vec<String> {
        self.ghosts.iter().map(|g| g.name.clone()).collect()
    }

    /// Build the attribute universe: policy + ghosts + the given
    /// predicates (property and invariants).
    fn universe(&self, extra: &[&RoutePred]) -> Universe {
        let mut u = Universe::from_policy(self.policy);
        for g in &self.ghosts {
            u.add_ghost(&g.name);
        }
        for p in extra {
            p.register(&mut u);
        }
        u
    }

    // ------------------------------------------------------------------
    // Safety
    // ------------------------------------------------------------------

    /// Verify a safety property under the given network invariants.
    pub fn verify_safety(&self, prop: &SafetyProperty, inv: &NetworkInvariants) -> Report {
        let checks = self.generate_safety_checks(prop, inv);
        let mut u = self.universe(&[&prop.pred]);
        inv.register(&mut u);
        self.run(&u, &checks)
    }

    /// Verify several safety properties that share one invariant
    /// assignment. The Import/Export/Originate checks depend only on the
    /// invariants (the §4.3 lemma), so they run once; each property adds a
    /// single subsumption check `I_ℓ ⟹ P`.
    pub fn verify_safety_multi(&self, props: &[SafetyProperty], inv: &NetworkInvariants) -> Report {
        let Some(first) = props.first() else {
            return Report::default();
        };
        let mut checks = self.generate_safety_checks(first, inv);
        // The generator appended `first`'s subsumption check last; add the
        // remaining properties' subsumption checks after it.
        for (id, p) in (checks.len()..).zip(&props[1..]) {
            checks.push(ResolvedCheck {
                check: Check {
                    id,
                    kind: CheckKind::Subsumption,
                    location: p.location,
                    edge: None,
                    map_name: None,
                    description: format!(
                        "invariant at {} implies {}",
                        p.location.display(self.topo),
                        p.name.as_deref().unwrap_or("the property")
                    ),
                },
                body: CheckBody::Implication {
                    assume: inv.at(self.topo, p.location),
                    ensure: p.pred.clone(),
                },
            });
        }
        let mut u = self.universe(&[]);
        for p in props {
            p.pred.register(&mut u);
        }
        inv.register(&mut u);
        self.run(&u, &checks)
    }

    /// Re-verify after the configurations of `changed` nodes were updated:
    /// only checks touching those nodes' edges (plus the subsumption
    /// check) are re-run.
    pub fn verify_safety_incremental(
        &self,
        prop: &SafetyProperty,
        inv: &NetworkInvariants,
        changed: &[NodeId],
    ) -> Report {
        let checks: Vec<ResolvedCheck> = self
            .generate_safety_checks(prop, inv)
            .into_iter()
            .filter(|c| match c.body {
                CheckBody::Transfer { edge, .. } | CheckBody::Originate { edge, .. } => {
                    let e = self.topo.edge(edge);
                    changed.contains(&e.src) || changed.contains(&e.dst)
                }
                CheckBody::Implication { .. } => true,
            })
            .collect();
        let mut u = self.universe(&[&prop.pred]);
        inv.register(&mut u);
        self.run(&u, &checks)
    }

    /// Number of checks a safety verification would run (for reporting).
    pub fn num_safety_checks(&self, prop: &SafetyProperty, inv: &NetworkInvariants) -> usize {
        self.generate_safety_checks(prop, inv).len()
    }

    fn generate_safety_checks(
        &self,
        prop: &SafetyProperty,
        inv: &NetworkInvariants,
    ) -> Vec<ResolvedCheck> {
        let mut out = Vec::new();
        let mut id = 0;
        for e in self.topo.edge_ids() {
            let edge = self.topo.edge(e);
            let edge_loc = Location::Edge(e);
            // Import check (receiver internal).
            if !self.topo.node(edge.dst).external {
                let assume = inv.at(self.topo, edge_loc);
                let ensure = inv.at(self.topo, Location::Node(edge.dst));
                let map_name = self.policy.import_map(e).map(|m| m.name.clone());
                out.push(ResolvedCheck {
                    check: Check {
                        id,
                        kind: CheckKind::Import,
                        location: edge_loc,
                        edge: Some(e),
                        map_name,
                        description: format!(
                            "import on {} preserves the invariants",
                            self.topo.edge_name(e)
                        ),
                    },
                    body: CheckBody::Transfer {
                        edge: e,
                        is_import: true,
                        assume,
                        ensure,
                        require_accept: false,
                    },
                });
                id += 1;
            }
            // Export + Originate checks (sender internal).
            if !self.topo.node(edge.src).external {
                let assume = inv.at(self.topo, Location::Node(edge.src));
                let ensure = inv.at(self.topo, edge_loc);
                let map_name = self.policy.export_map(e).map(|m| m.name.clone());
                out.push(ResolvedCheck {
                    check: Check {
                        id,
                        kind: CheckKind::Export,
                        location: edge_loc,
                        edge: Some(e),
                        map_name,
                        description: format!(
                            "export on {} preserves the invariants",
                            self.topo.edge_name(e)
                        ),
                    },
                    body: CheckBody::Transfer {
                        edge: e,
                        is_import: false,
                        assume,
                        ensure: ensure.clone(),
                        require_accept: false,
                    },
                });
                id += 1;
                if !self.policy.originated(e).is_empty() {
                    out.push(ResolvedCheck {
                        check: Check {
                            id,
                            kind: CheckKind::Originate,
                            location: edge_loc,
                            edge: Some(e),
                            map_name: None,
                            description: format!(
                                "originated routes on {} satisfy the edge invariant",
                                self.topo.edge_name(e)
                            ),
                        },
                        body: CheckBody::Originate { edge: e, ensure },
                    });
                    id += 1;
                }
            }
        }
        // Subsumption: I_ℓ ⟹ P.
        out.push(ResolvedCheck {
            check: Check {
                id,
                kind: CheckKind::Subsumption,
                location: prop.location,
                edge: None,
                map_name: None,
                description: format!(
                    "invariant at {} implies the property",
                    prop.location.display(self.topo)
                ),
            },
            body: CheckBody::Implication {
                assume: inv.at(self.topo, prop.location),
                ensure: prop.pred.clone(),
            },
        });
        out
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    fn run(&self, universe: &Universe, checks: &[ResolvedCheck]) -> Report {
        let t0 = Instant::now();
        let (outcomes, exec) = match self.mode {
            RunMode::Sequential => (
                checks.iter().map(|c| self.run_one(universe, c)).collect(),
                RunStats::default(),
            ),
            RunMode::Parallel => self.run_orchestrated(universe, checks),
        };
        let mut report = Report {
            outcomes,
            total_time: t0.elapsed(),
            exec,
        };
        // Deterministic report assembly regardless of completion order.
        report.sort_by_id();
        report
    }

    /// Lower resolved checks into orchestrator jobs: fingerprint each
    /// body, deduplicate structures, consult the cache, solve the rest
    /// on the work-stealing pool, and reattach per-instance descriptors.
    fn run_orchestrated(
        &self,
        universe: &Universe,
        checks: &[ResolvedCheck],
    ) -> (Vec<CheckOutcome>, RunStats) {
        let ufp = universe_digest(universe);
        let keyed: Vec<(Fingerprint, &ResolvedCheck)> = checks
            .iter()
            .map(|c| {
                (
                    check_fingerprint(ufp, self.policy, &self.ghosts, &c.body),
                    c,
                )
            })
            .collect();
        let cfg = RunConfig {
            jobs: self.jobs,
            dedup: self.dedup,
        };
        let batch = run_deduped(cfg, self.cache.as_deref(), &keyed, |rc: &&ResolvedCheck| {
            let o = self.run_one(universe, rc);
            SolvedCheck {
                result: o.result,
                stats: o.stats,
            }
        });
        let outcomes = checks
            .iter()
            .zip(batch.results)
            .zip(batch.fresh)
            .map(|((c, s), fresh)| {
                // Replicated answers (dedup copies, cache hits) keep the
                // formula-size stats — the formula is identical — but drop
                // the work counters, so aggregate solve/encode times count
                // each real solver invocation exactly once.
                let stats = if fresh {
                    s.stats
                } else {
                    SolverStats {
                        num_vars: s.stats.num_vars,
                        num_clauses: s.stats.num_clauses,
                        ..SolverStats::default()
                    }
                };
                CheckOutcome {
                    check: c.check.clone(),
                    result: s.result,
                    stats,
                }
            })
            .collect();
        (outcomes, batch.stats)
    }

    fn run_one(&self, universe: &Universe, rc: &ResolvedCheck) -> CheckOutcome {
        match &rc.body {
            CheckBody::Transfer {
                edge,
                is_import,
                assume,
                ensure,
                require_accept,
            } => self.run_transfer_check(
                universe,
                &rc.check,
                *edge,
                *is_import,
                assume,
                ensure,
                *require_accept,
            ),
            CheckBody::Originate { edge, ensure } => {
                self.run_originate_check(&rc.check, *edge, ensure)
            }
            CheckBody::Implication { assume, ensure } => {
                self.run_implication_check(universe, &rc.check, assume, ensure)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_transfer_check(
        &self,
        universe: &Universe,
        check: &Check,
        edge: EdgeId,
        is_import: bool,
        assume: &RoutePred,
        ensure: &RoutePred,
        require_accept: bool,
    ) -> CheckOutcome {
        let mut pool = TermPool::new();
        let input = SymRoute::fresh(&mut pool, universe, "r");
        let wf = input.well_formed(&mut pool);
        let pre = assume.encode(&mut pool, universe, &input);

        let transfer: Transfer = if is_import {
            encode_import(
                &mut pool,
                universe,
                self.policy.import_map(edge),
                &self.ghosts,
                edge,
                &input,
            )
        } else {
            encode_export(
                &mut pool,
                universe,
                self.policy.export_map(edge),
                &self.ghosts,
                edge,
                &input,
            )
        };
        let post = ensure.encode(&mut pool, universe, &transfer.out);
        let goal = if require_accept {
            // Liveness propagation: must accept AND satisfy the next
            // constraint.
            let not_rej = pool.not(transfer.reject);
            pool.and2(not_rej, post)
        } else {
            // Safety: reject ∨ post.
            pool.or2(transfer.reject, post)
        };
        // Counterexample query: assume ∧ ¬goal.
        let neg = pool.not(goal);
        let (result, stats) = solve_with_stats(&pool, &[wf, pre, neg]);
        let result = match result {
            SatResult::Unsat => CheckResult::Pass,
            SatResult::Sat(model) => {
                let rejected = model.eval_bool(&pool, transfer.reject).unwrap_or(false);
                CheckResult::Fail(Box::new(Counterexample {
                    input: input.concretize(&pool, universe, &model),
                    output: if rejected {
                        None
                    } else {
                        Some(transfer.out.concretize(&pool, universe, &model))
                    },
                    rejected,
                }))
            }
        };
        CheckOutcome {
            check: check.clone(),
            result,
            stats,
        }
    }

    fn run_originate_check(&self, check: &Check, edge: EdgeId, ensure: &RoutePred) -> CheckOutcome {
        // Originate(A -> B) is a concrete, finite set: evaluate directly.
        let ghosts: BTreeMap<String, bool> = self
            .ghosts
            .iter()
            .map(|g| (g.name.clone(), g.originate_value))
            .collect();
        for r in self.policy.originated(edge) {
            if !ensure.eval(r, &ghosts) {
                let result = CheckResult::Fail(Box::new(Counterexample {
                    input: crate::symbolic::ConcreteRoute {
                        route: r.clone(),
                        comm_other: false,
                        aspath_matches: BTreeMap::new(),
                        ghosts: ghosts.clone(),
                    },
                    output: None,
                    rejected: false,
                }));
                return CheckOutcome {
                    check: check.clone(),
                    result,
                    stats: SolverStats::default(),
                };
            }
        }
        CheckOutcome {
            check: check.clone(),
            result: CheckResult::Pass,
            stats: SolverStats::default(),
        }
    }

    fn run_implication_check(
        &self,
        universe: &Universe,
        check: &Check,
        assume: &RoutePred,
        ensure: &RoutePred,
    ) -> CheckOutcome {
        let mut pool = TermPool::new();
        let r = SymRoute::fresh(&mut pool, universe, "r");
        let wf = r.well_formed(&mut pool);
        let pre = assume.encode(&mut pool, universe, &r);
        let post = ensure.encode(&mut pool, universe, &r);
        let neg = pool.not(post);
        let (result, stats) = solve_with_stats(&pool, &[wf, pre, neg]);
        let result = match result {
            SatResult::Unsat => CheckResult::Pass,
            SatResult::Sat(model) => CheckResult::Fail(Box::new(Counterexample {
                input: r.concretize(&pool, universe, &model),
                output: None,
                rejected: false,
            })),
        };
        CheckOutcome {
            check: check.clone(),
            result,
            stats,
        }
    }

    // ------------------------------------------------------------------
    // Liveness (invoked from crate::liveness)
    // ------------------------------------------------------------------

    pub(crate) fn run_propagation_check(
        &self,
        universe: &Universe,
        check: &Check,
        edge: EdgeId,
        is_import: bool,
        assume: &RoutePred,
        ensure: &RoutePred,
    ) -> CheckOutcome {
        self.run_transfer_check(universe, check, edge, is_import, assume, ensure, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ghost::GhostUpdate;
    use bgp_model::routemap::{MatchCond, RouteMap, RouteMapEntry, SetAction};
    use bgp_model::{Community, Route};

    fn c(s: &str) -> Community {
        s.parse().unwrap()
    }

    /// The Figure-1 network with the community-based no-transit scheme.
    fn figure1() -> (Topology, Policy) {
        let mut t = Topology::new();
        let r1 = t.add_router("R1", 65000);
        let r2 = t.add_router("R2", 65000);
        let r3 = t.add_router("R3", 65000);
        let isp1 = t.add_external("ISP1", 100);
        let isp2 = t.add_external("ISP2", 200);
        let cust = t.add_external("Customer", 300);
        t.add_session(r1, r2);
        t.add_session(r1, r3);
        t.add_session(r2, r3);
        t.add_session(isp1, r1);
        t.add_session(isp2, r2);
        t.add_session(cust, r3);

        let mut pol = Policy::new();
        let mut m = RouteMap::new("FROM-ISP1");
        m.push(RouteMapEntry::permit(10).setting(SetAction::Community {
            comms: vec![c("100:1")],
            additive: true,
        }));
        pol.set_import(t.edge_between(isp1, r1).unwrap(), m);
        let mut m = RouteMap::new("FROM-CUST");
        m.push(RouteMapEntry::permit(10).setting(SetAction::ClearCommunities));
        pol.set_import(t.edge_between(cust, r3).unwrap(), m);
        let mut m = RouteMap::new("FROM-ISP2");
        m.push(RouteMapEntry::permit(10).setting(SetAction::ClearCommunities));
        pol.set_import(t.edge_between(isp2, r2).unwrap(), m);
        let mut m = RouteMap::new("TO-ISP2");
        m.push(RouteMapEntry::deny(10).matching(MatchCond::Community {
            comms: vec![c("100:1")],
            match_all: false,
        }));
        m.push(RouteMapEntry::permit(20));
        pol.set_export(t.edge_between(r2, isp2).unwrap(), m);
        (t, pol)
    }

    fn from_isp1_ghost(t: &Topology) -> GhostAttr {
        let isp1 = t.node_by_name("ISP1").unwrap();
        let isp2 = t.node_by_name("ISP2").unwrap();
        let cust = t.node_by_name("Customer").unwrap();
        let r1 = t.node_by_name("R1").unwrap();
        let r2 = t.node_by_name("R2").unwrap();
        let r3 = t.node_by_name("R3").unwrap();
        GhostAttr::new("FromISP1")
            .with_import(t.edge_between(isp1, r1).unwrap(), GhostUpdate::SetTrue)
            .with_import(t.edge_between(isp2, r2).unwrap(), GhostUpdate::SetFalse)
            .with_import(t.edge_between(cust, r3).unwrap(), GhostUpdate::SetFalse)
    }

    fn no_transit_inputs(t: &Topology) -> (SafetyProperty, NetworkInvariants) {
        let r2 = t.node_by_name("R2").unwrap();
        let isp2 = t.node_by_name("ISP2").unwrap();
        let to_isp2 = t.edge_between(r2, isp2).unwrap();
        let prop = SafetyProperty::new(Location::Edge(to_isp2), RoutePred::ghost("FromISP1").not())
            .named("no-transit");
        let key = RoutePred::ghost("FromISP1").implies(RoutePred::has_community(c("100:1")));
        let inv = NetworkInvariants::with_default(key)
            .with(Location::Edge(to_isp2), RoutePred::ghost("FromISP1").not());
        (prop, inv)
    }

    #[test]
    fn table2_no_transit_verifies() {
        let (t, pol) = figure1();
        let (prop, inv) = no_transit_inputs(&t);
        let v = Verifier::new(&t, &pol).with_ghost(from_isp1_ghost(&t));
        let report = v.verify_safety(&prop, &inv);
        assert!(report.all_passed(), "{}", report.format_failures(&t));
        // Linear check count: one import + one export per internal-incident
        // edge direction, plus subsumption.
        assert!(report.num_checks() >= t.num_edges());
    }

    #[test]
    fn seeded_bug_is_localized_to_r1_import() {
        let (t, mut pol) = figure1();
        // Break R1's import: forget to tag some routes (prefix-matched).
        let isp1 = t.node_by_name("ISP1").unwrap();
        let r1 = t.node_by_name("R1").unwrap();
        let e = t.edge_between(isp1, r1).unwrap();
        let mut m = RouteMap::new("FROM-ISP1-BUGGY");
        m.push(
            RouteMapEntry::permit(5).matching(MatchCond::PrefixList(vec![(
                true,
                bgp_model::PrefixRange::orlonger("10.0.0.0/8".parse().unwrap()),
            )])), // forgot the set community!
        );
        m.push(RouteMapEntry::permit(10).setting(SetAction::Community {
            comms: vec![c("100:1")],
            additive: true,
        }));
        pol.set_import(e, m);

        let (prop, inv) = no_transit_inputs(&t);
        let v = Verifier::new(&t, &pol).with_ghost(from_isp1_ghost(&t));
        let report = v.verify_safety(&prop, &inv);
        assert!(!report.all_passed());
        let failures = report.failures();
        assert_eq!(failures.len(), 1, "{}", report.format_failures(&t));
        let f = failures[0];
        assert_eq!(f.check.kind, CheckKind::Import);
        assert_eq!(f.check.edge, Some(e));
        assert_eq!(f.check.map_name.as_deref(), Some("FROM-ISP1-BUGGY"));
        // The counterexample is a 10/8-covered route without the tag.
        if let CheckResult::Fail(cex) = &f.result {
            assert!(cex.input.ghosts.contains_key("FromISP1"));
            let out = cex.output.as_ref().expect("accepted");
            assert!(out.ghosts["FromISP1"]);
            assert!(!out.route.has_community(c("100:1")));
        } else {
            panic!("expected failure");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let (t, pol) = figure1();
        let (prop, inv) = no_transit_inputs(&t);
        let seq = Verifier::new(&t, &pol)
            .with_ghost(from_isp1_ghost(&t))
            .verify_safety(&prop, &inv);
        let par = Verifier::new(&t, &pol)
            .with_ghost(from_isp1_ghost(&t))
            .with_mode(RunMode::Parallel)
            .verify_safety(&prop, &inv);
        assert_eq!(seq.num_checks(), par.num_checks());
        for (a, b) in seq.outcomes.iter().zip(par.outcomes.iter()) {
            assert_eq!(a.check.id, b.check.id);
            assert_eq!(a.result.passed(), b.result.passed());
        }
    }

    #[test]
    fn incremental_runs_subset() {
        let (t, pol) = figure1();
        let (prop, inv) = no_transit_inputs(&t);
        let v = Verifier::new(&t, &pol).with_ghost(from_isp1_ghost(&t));
        let full = v.verify_safety(&prop, &inv);
        let r1 = t.node_by_name("R1").unwrap();
        let inc = v.verify_safety_incremental(&prop, &inv, &[r1]);
        assert!(inc.num_checks() < full.num_checks());
        assert!(inc.all_passed());
        // R1 touches sessions to R2, R3, ISP1: 6 directed edges; import
        // checks only where receiver internal, export only where sender
        // internal, plus subsumption.
        assert!(inc.num_checks() >= 6);
    }

    #[test]
    fn subsumption_failure_detected() {
        let (t, pol) = figure1();
        let r2 = t.node_by_name("R2").unwrap();
        let isp2 = t.node_by_name("ISP2").unwrap();
        let to_isp2 = t.edge_between(r2, isp2).unwrap();
        // Property asks for something the invariant does not imply.
        let prop = SafetyProperty::new(
            Location::Edge(to_isp2),
            RoutePred::local_pref(crate::pred::Cmp::Eq, 7),
        );
        let inv = NetworkInvariants::new(); // all True
        let v = Verifier::new(&t, &pol);
        let report = v.verify_safety(&prop, &inv);
        let fails = report.failures();
        assert!(fails.iter().any(|f| f.check.kind == CheckKind::Subsumption));
    }

    #[test]
    fn originate_check_concrete() {
        let mut t = Topology::new();
        let r = t.add_router("R", 65000);
        let x = t.add_external("X", 1);
        t.add_session(r, x);
        let rx = t.edge_between(r, x).unwrap();
        let mut pol = Policy::new();
        pol.add_origination(rx, Route::new("198.51.100.0/24".parse().unwrap()));

        // Invariant on R -> X: must carry community 9:9 (it does not).
        let prop = SafetyProperty::new(Location::Edge(rx), RoutePred::True);
        let inv = NetworkInvariants::with_default(RoutePred::True)
            .with(Location::Edge(rx), RoutePred::has_community(c("9:9")));
        let v = Verifier::new(&t, &pol);
        let report = v.verify_safety(&prop, &inv);
        let fails = report.failures();
        assert!(
            fails.iter().any(|f| f.check.kind == CheckKind::Originate),
            "{}",
            report.format_failures(&t)
        );
    }
}
