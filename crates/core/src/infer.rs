//! Automatic inference of community-based key invariants.
//!
//! The paper's conclusion (§8) suggests: *"we believe it is possible to
//! instead learn local invariants automatically from configurations in
//! the future, for example when properties are enforced via
//! communities."* This module implements that idea with a guess-and-check
//! loop:
//!
//! 1. **Guess.** For a ghost attribute `g` (whose set-true edges mark the
//!    routes of interest), collect candidate communities: those that are
//!    *added* by the import filter on every edge that sets `g` true. Each
//!    candidate `C` yields the three-part invariant template of §2.1 —
//!    default `g ⇒ C ∈ Comm(r)`, with the property predicate at the
//!    property location.
//! 2. **Check.** Run the ordinary safety verification with the candidate
//!    invariants. Because the checks are sound, an inferred invariant
//!    that passes is a real proof; candidates that fail are discarded and
//!    the next is tried.
//!
//! The result is either a verified invariant assignment (with its
//! report) or the per-candidate failure reports, which is exactly the
//! iterative-refinement workflow §6.1 describes, automated for the
//! community-tagging pattern.

use crate::check::Report;
use crate::engine::Verifier;
use crate::ghost::{GhostAttr, GhostUpdate};
use crate::invariants::NetworkInvariants;
use crate::pred::RoutePred;
use crate::safety::SafetyProperty;
use bgp_model::route::Community;
use bgp_model::routemap::{RouteMap, SetAction};

/// The outcome of invariant inference.
#[derive(Debug)]
pub enum InferResult {
    /// A candidate worked: the invariants, the tagging community, and
    /// the passing report.
    Proved {
        /// The verified invariant assignment.
        invariants: NetworkInvariants,
        /// The community the network uses to track the ghost.
        community: Community,
        /// The all-pass verification report.
        report: Report,
    },
    /// No candidate community yields a proof; the failure report of each
    /// attempted candidate is returned for the §6.1-style feedback loop.
    NoCandidate(Vec<(Community, Report)>),
}

impl InferResult {
    /// True when inference succeeded.
    pub fn proved(&self) -> bool {
        matches!(self, InferResult::Proved { .. })
    }
}

/// Communities that a route map is guaranteed to add to every route it
/// permits (i.e. set by a `set community` in every permitting entry).
fn communities_always_added(map: &RouteMap) -> Vec<Community> {
    let mut result: Option<Vec<Community>> = None;
    for e in &map.entries {
        if e.action != bgp_model::routemap::Action::Permit {
            continue;
        }
        let mut added = Vec::new();
        for s in &e.sets {
            if let SetAction::Community { comms, .. } = s {
                added.extend(comms.iter().copied());
            }
        }
        result = Some(match result {
            None => added,
            Some(prev) => prev.into_iter().filter(|c| added.contains(c)).collect(),
        });
    }
    result.unwrap_or_default()
}

impl<'a> Verifier<'a> {
    /// Infer and verify a community-based key invariant for `prop`,
    /// where `ghost` marks the routes the property tracks.
    ///
    /// Returns [`InferResult::Proved`] with the first candidate that
    /// verifies, trying candidates in deterministic order.
    pub fn infer_safety_invariants(&self, prop: &SafetyProperty, ghost: &GhostAttr) -> InferResult {
        // Candidate communities: added by EVERY import filter on the
        // edges that set the ghost true.
        let mut candidates: Option<Vec<Community>> = None;
        for e in self.topology().edge_ids() {
            if ghost.import_update(e) != GhostUpdate::SetTrue {
                continue;
            }
            let added = match self.policy().import_map(e) {
                Some(m) => communities_always_added(m),
                None => Vec::new(),
            };
            candidates = Some(match candidates {
                None => added,
                Some(prev) => prev.into_iter().filter(|c| added.contains(c)).collect(),
            });
        }
        let mut candidates = candidates.unwrap_or_default();
        candidates.sort();
        candidates.dedup();

        let mut failures = Vec::new();
        for c in candidates {
            let key = RoutePred::ghost(&ghost.name).implies(RoutePred::has_community(c));
            let invariants =
                NetworkInvariants::with_default(key).with(prop.location, prop.pred.clone());
            let report = self.verify_safety(prop, &invariants);
            if report.all_passed() {
                return InferResult::Proved {
                    invariants,
                    community: c,
                    report,
                };
            }
            failures.push((c, report));
        }
        InferResult::NoCandidate(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::Location;
    use bgp_model::routemap::{MatchCond, RouteMapEntry};
    use bgp_model::{Policy, Topology};

    fn c(s: &str) -> Community {
        s.parse().unwrap()
    }

    fn figure1() -> (Topology, Policy) {
        let mut t = Topology::new();
        let r1 = t.add_router("R1", 65000);
        let r2 = t.add_router("R2", 65000);
        let isp1 = t.add_external("ISP1", 100);
        let isp2 = t.add_external("ISP2", 200);
        t.add_session(r1, r2);
        t.add_session(isp1, r1);
        t.add_session(isp2, r2);

        let mut pol = Policy::new();
        let mut m = RouteMap::new("FROM-ISP1");
        // Two communities added: 100:1 (load-bearing) and 300:9 (noise
        // that is stripped downstream, so only 100:1 can prove the
        // property).
        m.push(RouteMapEntry::permit(10).setting(SetAction::Community {
            comms: vec![c("100:1"), c("300:9")],
            additive: true,
        }));
        pol.set_import(t.edge_between(isp1, r1).unwrap(), m);
        // R2 strips 300:9 from everything (so 300:9 cannot be the key).
        let mut m = RouteMap::new("R1-TO-R2");
        m.push(RouteMapEntry::permit(10).setting(SetAction::DeleteCommunities(vec![c("300:9")])));
        pol.set_export(t.edge_between(r1, r2).unwrap(), m);
        let mut m = RouteMap::new("TO-ISP2");
        m.push(RouteMapEntry::deny(10).matching(MatchCond::Community {
            comms: vec![c("100:1")],
            match_all: false,
        }));
        m.push(RouteMapEntry::permit(20));
        pol.set_export(t.edge_between(r2, isp2).unwrap(), m);
        (t, pol)
    }

    fn ghost(t: &Topology) -> GhostAttr {
        let isp1 = t.node_by_name("ISP1").unwrap();
        let isp2 = t.node_by_name("ISP2").unwrap();
        let r1 = t.node_by_name("R1").unwrap();
        let r2 = t.node_by_name("R2").unwrap();
        GhostAttr::new("FromISP1")
            .with_import(t.edge_between(isp1, r1).unwrap(), GhostUpdate::SetTrue)
            .with_import(t.edge_between(isp2, r2).unwrap(), GhostUpdate::SetFalse)
    }

    #[test]
    fn infers_the_load_bearing_community() {
        let (t, pol) = figure1();
        let r2 = t.node_by_name("R2").unwrap();
        let isp2 = t.node_by_name("ISP2").unwrap();
        let loc = Location::Edge(t.edge_between(r2, isp2).unwrap());
        let g = ghost(&t);
        let prop = SafetyProperty::new(loc, RoutePred::ghost("FromISP1").not());
        let v = Verifier::new(&t, &pol).with_ghost(g.clone());
        match v.infer_safety_invariants(&prop, &g) {
            InferResult::Proved {
                community, report, ..
            } => {
                assert_eq!(community, c("100:1"));
                assert!(report.all_passed());
            }
            InferResult::NoCandidate(fails) => {
                panic!("expected a proof; candidates failed: {:?}", fails.len())
            }
        }
    }

    #[test]
    fn reports_failures_when_nothing_works() {
        let (t, mut pol) = figure1();
        // Break the scheme: R2 no longer filters on 100:1.
        let r2 = t.node_by_name("R2").unwrap();
        let isp2 = t.node_by_name("ISP2").unwrap();
        pol.export.remove(&t.edge_between(r2, isp2).unwrap());
        let loc = Location::Edge(t.edge_between(r2, isp2).unwrap());
        let g = ghost(&t);
        let prop = SafetyProperty::new(loc, RoutePred::ghost("FromISP1").not());
        let v = Verifier::new(&t, &pol).with_ghost(g.clone());
        match v.infer_safety_invariants(&prop, &g) {
            InferResult::Proved { .. } => panic!("nothing should prove a broken network"),
            InferResult::NoCandidate(fails) => {
                // Both candidate communities were tried and failed.
                assert_eq!(fails.len(), 2);
                assert!(fails.iter().all(|(_, r)| !r.all_passed()));
            }
        }
    }

    #[test]
    fn no_candidates_when_imports_do_not_tag() {
        let (t, mut pol) = figure1();
        let isp1 = t.node_by_name("ISP1").unwrap();
        let r1 = t.node_by_name("R1").unwrap();
        pol.import.remove(&t.edge_between(isp1, r1).unwrap());
        let r2 = t.node_by_name("R2").unwrap();
        let isp2 = t.node_by_name("ISP2").unwrap();
        let loc = Location::Edge(t.edge_between(r2, isp2).unwrap());
        let g = ghost(&t);
        let prop = SafetyProperty::new(loc, RoutePred::ghost("FromISP1").not());
        let v = Verifier::new(&t, &pol).with_ghost(g.clone());
        match v.infer_safety_invariants(&prop, &g) {
            InferResult::NoCandidate(fails) => assert!(fails.is_empty()),
            InferResult::Proved { .. } => panic!("no tags, no proof"),
        }
    }

    #[test]
    fn inference_works_on_generated_fullmesh() {
        // End-to-end on a netgen-sized example is covered in the
        // integration suite; here a small hand-rolled mesh.
        let (t, pol) = figure1();
        let g = ghost(&t);
        let r2 = t.node_by_name("R2").unwrap();
        let isp2 = t.node_by_name("ISP2").unwrap();
        let loc = Location::Edge(t.edge_between(r2, isp2).unwrap());
        let prop = SafetyProperty::new(loc, RoutePred::ghost("FromISP1").not());
        let v = Verifier::new(&t, &pol).with_ghost(g.clone());
        let result = v.infer_safety_invariants(&prop, &g);
        assert!(result.proved());
    }
}
