//! The route-predicate language.
//!
//! [`RoutePred`] is the language in which end-to-end properties, network
//! invariants and liveness path constraints are written — the role that
//! user-supplied Zen functions play in the paper's C# implementation.
//! Every predicate has two semantics, which tests hold in agreement:
//!
//! * **symbolic** ([`RoutePred::encode`]): an SMT term over a [`SymRoute`];
//! * **concrete** ([`RoutePred::eval`]): a boolean over a [`Route`] plus
//!   ghost values (used for counterexample validation, originate checks
//!   and simulator differential tests).

use crate::symbolic::SymRoute;
use crate::universe::Universe;
use bgp_model::prefix::{Ipv4Prefix, PrefixRange};
use bgp_model::route::{Community, Route};
use serde::{Deserialize, Serialize};
use smt::{TermId, TermPool};
use std::collections::BTreeMap;
use std::fmt;

/// Comparison operators for numeric attributes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cmp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

impl Cmp {
    fn eval(self, a: u32, b: u32) -> bool {
        match self {
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
            Cmp::Lt => a < b,
            Cmp::Le => a <= b,
            Cmp::Gt => a > b,
            Cmp::Ge => a >= b,
        }
    }
}

/// Numeric route attributes usable in comparisons.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NumAttr {
    /// Local preference.
    LocalPref,
    /// MED.
    Med,
    /// Next hop (as a 32-bit integer).
    NextHop,
}

/// A predicate over routes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RoutePred {
    /// Always true.
    True,
    /// Always false.
    False,
    /// The route's prefix matches any of the ranges.
    PrefixIn(Vec<PrefixRange>),
    /// The route's prefix equals the given prefix exactly.
    PrefixEq(Ipv4Prefix),
    /// The route carries the community.
    HasCommunity(Community),
    /// The route carries no communities at all.
    NoCommunities,
    /// Numeric attribute comparison against a constant.
    Num(NumAttr, Cmp, u32),
    /// The route's origin attribute equals the given value.
    OriginIs(bgp_model::route::Origin),
    /// The ghost attribute holds.
    Ghost(String),
    /// The AS path matches the regex (source pattern).
    AsPathMatches(String),
    /// Negation.
    Not(Box<RoutePred>),
    /// Conjunction.
    And(Vec<RoutePred>),
    /// Disjunction.
    Or(Vec<RoutePred>),
}

impl RoutePred {
    /// `true`.
    pub fn tru() -> Self {
        RoutePred::True
    }

    /// `false`.
    pub fn fls() -> Self {
        RoutePred::False
    }

    /// Prefix within any of the given ranges.
    pub fn prefix_in(ranges: impl Into<Vec<PrefixRange>>) -> Self {
        RoutePred::PrefixIn(ranges.into())
    }

    /// Prefix equals exactly.
    pub fn prefix_eq(p: Ipv4Prefix) -> Self {
        RoutePred::PrefixEq(p)
    }

    /// Carries the community.
    pub fn has_community(c: Community) -> Self {
        RoutePred::HasCommunity(c)
    }

    /// Origin attribute equals.
    pub fn origin_is(o: bgp_model::route::Origin) -> Self {
        RoutePred::OriginIs(o)
    }

    /// Ghost attribute by name.
    pub fn ghost(name: impl Into<String>) -> Self {
        RoutePred::Ghost(name.into())
    }

    /// AS-path regex match.
    pub fn aspath(pattern: impl Into<String>) -> Self {
        RoutePred::AsPathMatches(pattern.into())
    }

    /// Local preference comparison.
    pub fn local_pref(cmp: Cmp, v: u32) -> Self {
        RoutePred::Num(NumAttr::LocalPref, cmp, v)
    }

    /// MED comparison.
    pub fn med(cmp: Cmp, v: u32) -> Self {
        RoutePred::Num(NumAttr::Med, cmp, v)
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        match self {
            RoutePred::Not(inner) => *inner,
            RoutePred::True => RoutePred::False,
            RoutePred::False => RoutePred::True,
            other => RoutePred::Not(Box::new(other)),
        }
    }

    /// Conjunction.
    pub fn and(self, other: RoutePred) -> Self {
        match (self, other) {
            (RoutePred::True, b) => b,
            (a, RoutePred::True) => a,
            (RoutePred::False, _) | (_, RoutePred::False) => RoutePred::False,
            (RoutePred::And(mut xs), RoutePred::And(ys)) => {
                xs.extend(ys);
                RoutePred::And(xs)
            }
            (RoutePred::And(mut xs), b) => {
                xs.push(b);
                RoutePred::And(xs)
            }
            (a, b) => RoutePred::And(vec![a, b]),
        }
    }

    /// Disjunction.
    pub fn or(self, other: RoutePred) -> Self {
        match (self, other) {
            (RoutePred::False, b) => b,
            (a, RoutePred::False) => a,
            (RoutePred::True, _) | (_, RoutePred::True) => RoutePred::True,
            (RoutePred::Or(mut xs), RoutePred::Or(ys)) => {
                xs.extend(ys);
                RoutePred::Or(xs)
            }
            (RoutePred::Or(mut xs), b) => {
                xs.push(b);
                RoutePred::Or(xs)
            }
            (a, b) => RoutePred::Or(vec![a, b]),
        }
    }

    /// Implication `self => other`.
    pub fn implies(self, other: RoutePred) -> Self {
        self.not().or(other)
    }

    /// The predicate's top-level conjuncts, with nested conjunctions
    /// flattened: `A ∧ (B ∧ C)` yields `[A, B, C]`, `True` yields `[]`,
    /// and any other predicate yields itself as the single conjunct.
    ///
    /// This is the granularity of unsat-core localization: a check whose
    /// assumed invariant is a conjunction gets one assumption literal per
    /// conjunct, so a passing (UNSAT) check can report exactly which
    /// conjuncts its proof needed (`CheckOutcome::core`).
    pub fn conjuncts(&self) -> Vec<RoutePred> {
        fn walk(p: &RoutePred, out: &mut Vec<RoutePred>) {
            match p {
                RoutePred::True => {}
                RoutePred::And(xs) => {
                    for x in xs {
                        walk(x, out);
                    }
                }
                other => out.push(other.clone()),
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Register every community / regex / ghost the predicate mentions.
    pub fn register(&self, universe: &mut Universe) {
        match self {
            RoutePred::HasCommunity(c) => {
                universe.add_community(*c);
            }
            RoutePred::AsPathMatches(p) => {
                universe.add_regex(p);
            }
            RoutePred::Ghost(g) => {
                universe.add_ghost(g);
            }
            RoutePred::Not(inner) => inner.register(universe),
            RoutePred::And(xs) | RoutePred::Or(xs) => {
                for x in xs {
                    x.register(universe);
                }
            }
            _ => {}
        }
    }

    /// Symbolic semantics: an SMT term over `route`.
    pub fn encode(&self, pool: &mut TermPool, universe: &Universe, route: &SymRoute) -> TermId {
        match self {
            RoutePred::True => pool.tru(),
            RoutePred::False => pool.fls(),
            RoutePred::PrefixIn(ranges) => {
                let parts: Vec<TermId> = ranges
                    .iter()
                    .map(|r| encode_range(pool, route, r))
                    .collect();
                pool.or(&parts)
            }
            RoutePred::PrefixEq(p) => {
                let addr = pool.bv_const(p.addr as u64, 32);
                let len = pool.bv_const(p.len as u64, 8);
                let ea = pool.bv_eq(route.prefix_addr, addr);
                let el = pool.bv_eq(route.prefix_len, len);
                pool.and2(ea, el)
            }
            RoutePred::HasCommunity(c) => route.has_community(universe, *c),
            RoutePred::NoCommunities => {
                let mut parts: Vec<TermId> = route.comm_bits.iter().map(|&b| pool.not(b)).collect();
                let no_other = pool.not(route.comm_other);
                parts.push(no_other);
                pool.and(&parts)
            }
            RoutePred::Num(attr, cmp, v) => {
                let term = match attr {
                    NumAttr::LocalPref => route.local_pref,
                    NumAttr::Med => route.med,
                    NumAttr::NextHop => route.next_hop,
                };
                let k = pool.bv_const(*v as u64, 32);
                match cmp {
                    Cmp::Eq => pool.bv_eq(term, k),
                    Cmp::Ne => {
                        let e = pool.bv_eq(term, k);
                        pool.not(e)
                    }
                    Cmp::Lt => pool.bv_ult(term, k),
                    Cmp::Le => pool.bv_ule(term, k),
                    Cmp::Gt => pool.bv_ugt(term, k),
                    Cmp::Ge => pool.bv_uge(term, k),
                }
            }
            RoutePred::OriginIs(o) => {
                let k = pool.bv_const(o.code() as u64, 2);
                pool.bv_eq(route.origin, k)
            }
            RoutePred::Ghost(name) => {
                let i = universe
                    .ghost_index(name)
                    .unwrap_or_else(|| panic!("ghost {name:?} not in universe"));
                route.ghost_bits[i]
            }
            RoutePred::AsPathMatches(pattern) => {
                let id = universe
                    .regex_id(pattern)
                    .unwrap_or_else(|| panic!("regex {pattern:?} not in universe"));
                route.aspath_atoms[id.0 as usize]
            }
            RoutePred::Not(inner) => {
                let t = inner.encode(pool, universe, route);
                pool.not(t)
            }
            RoutePred::And(xs) => {
                let parts: Vec<TermId> =
                    xs.iter().map(|x| x.encode(pool, universe, route)).collect();
                pool.and(&parts)
            }
            RoutePred::Or(xs) => {
                let parts: Vec<TermId> =
                    xs.iter().map(|x| x.encode(pool, universe, route)).collect();
                pool.or(&parts)
            }
        }
    }

    /// Concrete semantics over a route plus ghost values.
    pub fn eval(&self, route: &Route, ghosts: &BTreeMap<String, bool>) -> bool {
        match self {
            RoutePred::True => true,
            RoutePred::False => false,
            RoutePred::PrefixIn(ranges) => ranges.iter().any(|r| r.matches(&route.prefix)),
            RoutePred::PrefixEq(p) => route.prefix == *p,
            RoutePred::HasCommunity(c) => route.has_community(*c),
            RoutePred::NoCommunities => route.communities.is_empty(),
            RoutePred::Num(attr, cmp, v) => {
                let x = match attr {
                    NumAttr::LocalPref => route.local_pref,
                    NumAttr::Med => route.med,
                    NumAttr::NextHop => route.next_hop,
                };
                cmp.eval(x, *v)
            }
            RoutePred::OriginIs(o) => route.origin == *o,
            RoutePred::Ghost(name) => ghosts.get(name).copied().unwrap_or(false),
            RoutePred::AsPathMatches(pattern) => bgp_model::AsPathRegex::compile(pattern)
                .map(|re| re.matches(&route.as_path))
                .unwrap_or(false),
            RoutePred::Not(inner) => !inner.eval(route, ghosts),
            RoutePred::And(xs) => xs.iter().all(|x| x.eval(route, ghosts)),
            RoutePred::Or(xs) => xs.iter().any(|x| x.eval(route, ghosts)),
        }
    }
}

fn encode_range(pool: &mut TermPool, route: &SymRoute, r: &PrefixRange) -> TermId {
    let mask = pool.bv_const(Ipv4Prefix::mask(r.pattern.len) as u64, 32);
    let masked = pool.bv_and(route.prefix_addr, mask);
    let pattern = pool.bv_const(r.pattern.addr as u64, 32);
    let net_ok = pool.bv_eq(masked, pattern);
    let lo = pool.bv_const(r.min_len as u64, 8);
    let hi = pool.bv_const(r.max_len as u64, 8);
    let ge = pool.bv_uge(route.prefix_len, lo);
    let le = pool.bv_ule(route.prefix_len, hi);
    pool.and(&[net_ok, ge, le])
}

impl fmt::Display for RoutePred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutePred::True => write!(f, "true"),
            RoutePred::False => write!(f, "false"),
            RoutePred::PrefixIn(ranges) => {
                write!(f, "prefix in [")?;
                for (i, r) in ranges.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{r}")?;
                }
                write!(f, "]")
            }
            RoutePred::PrefixEq(p) => write!(f, "prefix = {p}"),
            RoutePred::HasCommunity(c) => write!(f, "{c} in comm"),
            RoutePred::NoCommunities => write!(f, "comm = {{}}"),
            RoutePred::Num(attr, cmp, v) => {
                let a = match attr {
                    NumAttr::LocalPref => "local-pref",
                    NumAttr::Med => "med",
                    NumAttr::NextHop => "next-hop",
                };
                let op = match cmp {
                    Cmp::Eq => "=",
                    Cmp::Ne => "!=",
                    Cmp::Lt => "<",
                    Cmp::Le => "<=",
                    Cmp::Gt => ">",
                    Cmp::Ge => ">=",
                };
                write!(f, "{a} {op} {v}")
            }
            RoutePred::OriginIs(o) => write!(f, "origin = {o}"),
            RoutePred::Ghost(g) => write!(f, "{g}"),
            RoutePred::AsPathMatches(p) => write!(f, "as-path ~ {p}"),
            RoutePred::Not(x) => write!(f, "!({x})"),
            RoutePred::And(xs) => {
                write!(f, "(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " && ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            RoutePred::Or(xs) => {
                write!(f, "(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt::{solve, SatResult};

    fn c(s: &str) -> Community {
        s.parse().unwrap()
    }

    #[test]
    fn conjuncts_flatten_and_cover() {
        let a = RoutePred::ghost("A");
        let b = RoutePred::has_community(c("1:1"));
        let d = RoutePred::local_pref(Cmp::Eq, 100);
        // Nested conjunction flattens.
        let nested = a.clone().and(RoutePred::And(vec![b.clone(), d.clone()]));
        assert_eq!(nested.conjuncts(), vec![a.clone(), b.clone(), d.clone()]);
        // True contributes nothing; a lone non-And is its own conjunct.
        assert!(RoutePred::True.conjuncts().is_empty());
        assert_eq!(b.conjuncts(), vec![b.clone()]);
        // An Or is atomic at this granularity (no distribution).
        let or = a.clone().or(b.clone());
        assert_eq!(or.conjuncts(), vec![or.clone()]);
        // Semantics: the conjunction of the conjuncts equals the original.
        let route = Route::new("10.0.0.0/8".parse().unwrap()).with_community(c("1:1"));
        let ghosts: BTreeMap<String, bool> = [("A".to_string(), true)].into_iter().collect();
        let again = nested
            .conjuncts()
            .into_iter()
            .fold(RoutePred::True, RoutePred::and);
        assert_eq!(nested.eval(&route, &ghosts), again.eval(&route, &ghosts));
    }

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    /// Pin a symbolic route to `route`/`ghosts` and check that the encoded
    /// predicate evaluates to the same value as the concrete semantics.
    fn agree(pred: &RoutePred, route: &Route, ghosts: &BTreeMap<String, bool>) {
        let mut u = Universe::new();
        pred.register(&mut u);
        // Also register communities the route carries so pinning is exact.
        for cm in &route.communities {
            u.add_community(*cm);
        }
        let mut pool = TermPool::new();
        let sym = SymRoute::fresh(&mut pool, &u, "r");
        let pin = sym.equals_concrete(&mut pool, &u, route, ghosts);
        let enc = pred.encode(&mut pool, &u, &sym);
        let expected = pred.eval(route, ghosts);
        let want = if expected { enc } else { pool.not(enc) };
        match solve(&pool, &[pin, want]) {
            SatResult::Sat(_) => {}
            SatResult::Unsat => panic!("symbolic/concrete disagree on {pred} for {route}"),
        }
        // And the opposite must be unsat.
        let unwant = if expected { pool.not(enc) } else { enc };
        assert!(
            !solve(&pool, &[pin, unwant]).is_sat(),
            "encoding not functional for {pred}"
        );
    }

    #[test]
    fn prefix_predicates_agree() {
        let ranges = vec![PrefixRange::with_bounds(p("10.0.0.0/8"), 16, 24)];
        let pred = RoutePred::prefix_in(ranges);
        agree(&pred, &Route::new(p("10.5.0.0/16")), &BTreeMap::new());
        agree(&pred, &Route::new(p("10.0.0.0/8")), &BTreeMap::new());
        agree(&pred, &Route::new(p("11.0.0.0/16")), &BTreeMap::new());

        let eq = RoutePred::prefix_eq(p("192.168.0.0/16"));
        agree(&eq, &Route::new(p("192.168.0.0/16")), &BTreeMap::new());
        agree(&eq, &Route::new(p("192.168.0.0/24")), &BTreeMap::new());
    }

    #[test]
    fn community_predicates_agree() {
        let pred = RoutePred::has_community(c("100:1"));
        agree(
            &pred,
            &Route::new(p("1.0.0.0/8")).with_community(c("100:1")),
            &BTreeMap::new(),
        );
        agree(&pred, &Route::new(p("1.0.0.0/8")), &BTreeMap::new());

        let none = RoutePred::NoCommunities;
        agree(&none, &Route::new(p("1.0.0.0/8")), &BTreeMap::new());
        agree(
            &none,
            &Route::new(p("1.0.0.0/8")).with_community(c("5:5")),
            &BTreeMap::new(),
        );
    }

    #[test]
    fn numeric_predicates_agree() {
        for cmp in [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge] {
            let pred = RoutePred::local_pref(cmp, 100);
            agree(
                &pred,
                &Route::new(p("1.0.0.0/8")).with_local_pref(100),
                &BTreeMap::new(),
            );
            agree(
                &pred,
                &Route::new(p("1.0.0.0/8")).with_local_pref(99),
                &BTreeMap::new(),
            );
            agree(
                &pred,
                &Route::new(p("1.0.0.0/8")).with_local_pref(101),
                &BTreeMap::new(),
            );
        }
    }

    #[test]
    fn ghost_and_aspath_agree() {
        let pred = RoutePred::ghost("G").and(RoutePred::aspath("_65001_"));
        let mut ghosts = BTreeMap::new();
        ghosts.insert("G".to_string(), true);
        agree(
            &pred,
            &Route::new(p("1.0.0.0/8")).with_as_path(vec![65001]),
            &ghosts,
        );
        agree(
            &pred,
            &Route::new(p("1.0.0.0/8")).with_as_path(vec![2]),
            &ghosts,
        );
        ghosts.insert("G".to_string(), false);
        agree(
            &pred,
            &Route::new(p("1.0.0.0/8")).with_as_path(vec![65001]),
            &ghosts,
        );
    }

    #[test]
    fn boolean_combinators_agree() {
        let a = RoutePred::has_community(c("1:1"));
        let b = RoutePred::local_pref(Cmp::Ge, 200);
        let pred = a.clone().and(b.clone()).or(a.clone().not()).implies(b);
        for lp in [100, 200, 300] {
            for has in [true, false] {
                let mut r = Route::new(p("1.0.0.0/8")).with_local_pref(lp);
                if has {
                    r = r.with_community(c("1:1"));
                }
                agree(&pred, &r, &BTreeMap::new());
            }
        }
    }

    #[test]
    fn combinator_simplifications() {
        assert_eq!(RoutePred::tru().and(RoutePred::fls()), RoutePred::False);
        assert_eq!(RoutePred::tru().or(RoutePred::fls()), RoutePred::True);
        assert_eq!(RoutePred::tru().not(), RoutePred::False);
        let g = RoutePred::ghost("G");
        assert_eq!(g.clone().not().not(), g.clone());
        assert_eq!(RoutePred::tru().and(g.clone()), g);
    }

    #[test]
    fn display_smoke() {
        let pred = RoutePred::ghost("FromISP1").implies(RoutePred::has_community(c("100:1")));
        assert_eq!(pred.to_string(), "(!(FromISP1) || 100:1 in comm)");
    }
}
