//! Ghost attributes (§4.4).
//!
//! A ghost attribute conceptually extends every route with an extra
//! boolean field that does not affect routing but lets properties refer to
//! provenance ("did this route come from ISP1?", "did it pass through
//! router W?"). The user defines how each filter updates the attribute:
//! set it true, set it false, or leave it unchanged; origination uses a
//! default value (false unless configured).

use bgp_model::topology::EdgeId;
use std::collections::HashMap;

/// How a filter updates a ghost attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GhostUpdate {
    /// Set the attribute to true.
    SetTrue,
    /// Set the attribute to false.
    SetFalse,
    /// Leave the attribute unchanged.
    #[default]
    Unchanged,
}

/// A user-defined ghost attribute.
#[derive(Clone, Debug)]
pub struct GhostAttr {
    /// The attribute name (referenced by [`crate::pred::RoutePred::Ghost`]).
    pub name: String,
    import_rules: HashMap<EdgeId, GhostUpdate>,
    export_rules: HashMap<EdgeId, GhostUpdate>,
    /// Value on originated routes (default false).
    pub originate_value: bool,
}

impl GhostAttr {
    /// A new ghost attribute, unchanged everywhere, false on origination.
    pub fn new(name: impl Into<String>) -> Self {
        GhostAttr {
            name: name.into(),
            import_rules: HashMap::new(),
            export_rules: HashMap::new(),
            originate_value: false,
        }
    }

    /// Set the update applied by the import filter on `edge`.
    pub fn on_import(&mut self, edge: EdgeId, update: GhostUpdate) -> &mut Self {
        self.import_rules.insert(edge, update);
        self
    }

    /// Set the update applied by the export filter on `edge`.
    pub fn on_export(&mut self, edge: EdgeId, update: GhostUpdate) -> &mut Self {
        self.export_rules.insert(edge, update);
        self
    }

    /// Builder-style [`GhostAttr::on_import`].
    pub fn with_import(mut self, edge: EdgeId, update: GhostUpdate) -> Self {
        self.on_import(edge, update);
        self
    }

    /// Builder-style [`GhostAttr::on_export`].
    pub fn with_export(mut self, edge: EdgeId, update: GhostUpdate) -> Self {
        self.on_export(edge, update);
        self
    }

    /// Set the origination default.
    pub fn with_originate_value(mut self, v: bool) -> Self {
        self.originate_value = v;
        self
    }

    /// The update applied by the import filter on `edge`.
    pub fn import_update(&self, edge: EdgeId) -> GhostUpdate {
        self.import_rules.get(&edge).copied().unwrap_or_default()
    }

    /// The update applied by the export filter on `edge`.
    pub fn export_update(&self, edge: EdgeId) -> GhostUpdate {
        self.export_rules.get(&edge).copied().unwrap_or_default()
    }

    /// Apply an update to a concrete value.
    pub fn apply(update: GhostUpdate, current: bool) -> bool {
        match update {
            GhostUpdate::SetTrue => true,
            GhostUpdate::SetFalse => false,
            GhostUpdate::Unchanged => current,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_unchanged_and_false() {
        let g = GhostAttr::new("G");
        assert_eq!(g.import_update(EdgeId(0)), GhostUpdate::Unchanged);
        assert_eq!(g.export_update(EdgeId(0)), GhostUpdate::Unchanged);
        assert!(!g.originate_value);
    }

    #[test]
    fn rules_apply_per_edge() {
        let g = GhostAttr::new("FromISP1")
            .with_import(EdgeId(1), GhostUpdate::SetTrue)
            .with_import(EdgeId(2), GhostUpdate::SetFalse);
        assert_eq!(g.import_update(EdgeId(1)), GhostUpdate::SetTrue);
        assert_eq!(g.import_update(EdgeId(2)), GhostUpdate::SetFalse);
        assert_eq!(g.import_update(EdgeId(3)), GhostUpdate::Unchanged);
    }

    #[test]
    fn apply_semantics() {
        assert!(GhostAttr::apply(GhostUpdate::SetTrue, false));
        assert!(!GhostAttr::apply(GhostUpdate::SetFalse, true));
        assert!(GhostAttr::apply(GhostUpdate::Unchanged, true));
        assert!(!GhostAttr::apply(GhostUpdate::Unchanged, false));
    }
}
