//! End-to-end check throughput benchmarks.
//!
//! * full-mesh no-transit verification at several sizes (the Figure-3d
//!   curve as a criterion bench);
//! * sequential vs parallel execution (ablation D3);
//! * full vs incremental re-verification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lightyear::engine::{RunMode, Verifier};
use netgen::{fullmesh, wan};

fn bench_fullmesh(c: &mut Criterion) {
    let mut g = c.benchmark_group("verify/fullmesh");
    g.sample_size(10);
    for n in [4usize, 8] {
        let s = fullmesh::build(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &s, |b, s| {
            b.iter(|| {
                let v = Verifier::new(&s.network.topology, &s.network.policy)
                    .with_ghost(s.ghost.clone());
                let report = v.verify_safety(&s.property, &s.invariants);
                assert!(report.all_passed());
            })
        });
    }
    g.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("verify/run-mode");
    g.sample_size(10);
    let s = wan::build(&wan::WanParams {
        regions: 3,
        routers_per_region: 3,
        edge_routers: 4,
        peers_per_edge: 3,
        ..wan::WanParams::default()
    });
    let (name, q) = s.peering_predicates().into_iter().next().unwrap();
    let (props, inv) = s.peering_property_inputs(&q);
    for mode in [RunMode::Sequential, RunMode::Parallel] {
        let label = format!("{name}-{mode:?}");
        g.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let v = Verifier::new(&s.network.topology, &s.network.policy)
                    .with_ghost(s.from_peer_ghost())
                    .with_mode(mode);
                let report = v.verify_safety_multi(&props, &inv);
                assert!(report.all_passed());
            })
        });
    }
    g.finish();
}

fn bench_incremental(c: &mut Criterion) {
    let mut g = c.benchmark_group("verify/incremental");
    g.sample_size(10);
    let s = fullmesh::build(8);
    let changed = s.network.topology.node_by_name("R0").unwrap();
    g.bench_function("full", |b| {
        b.iter(|| {
            let v =
                Verifier::new(&s.network.topology, &s.network.policy).with_ghost(s.ghost.clone());
            let report = v.verify_safety(&s.property, &s.invariants);
            assert!(report.all_passed());
        })
    });
    g.bench_function("incremental-one-node", |b| {
        b.iter(|| {
            let v =
                Verifier::new(&s.network.topology, &s.network.policy).with_ghost(s.ghost.clone());
            let report = v.verify_safety_incremental(&s.property, &s.invariants, &[changed]);
            assert!(report.all_passed());
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fullmesh, bench_parallel, bench_incremental);
criterion_main!(benches);
