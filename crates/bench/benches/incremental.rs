//! Incremental assumption-based solving ablation on the synthetic cloud
//! WAN: one peering property suite verified three ways —
//!
//! * `fresh` — one fresh `TermPool` + bit-blast + `SatSolver` per check
//!   (the seed behavior; `--no-incremental`);
//! * `incremental` — checks grouped by encoding base, each group solved
//!   on one persistent `IncrementalSession` via activation-literal
//!   assumption queries, learnt clauses carried across checks;
//! * `incremental+cache` — incremental orchestrated solving against a
//!   pre-warmed cross-run result cache (the warm re-verification path).
//!
//! `fresh` and `incremental` run the sequential engine with structural
//! dedup out of the picture, so the measured delta is purely the cost of
//! re-encoding and re-learning versus assumption solving. Outcomes are
//! asserted byte-identical before timing starts.
//!
//! Sized at an 8-router and a 50-router WAN; scale further with
//! `WAN_REGIONS` / `WAN_ROUTERS` / `WAN_EDGES` / `WAN_PEERS`.

use bench::env_usize;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lightyear::engine::{CheckCache, RunMode, Verifier};
use netgen::wan::{self, WanParams};
use std::sync::Arc;

fn small_params() -> WanParams {
    WanParams {
        regions: env_usize("WAN_REGIONS", 2),
        routers_per_region: env_usize("WAN_ROUTERS", 2),
        edge_routers: env_usize("WAN_EDGES", 4),
        peers_per_edge: env_usize("WAN_PEERS", 2),
        ..WanParams::default()
    }
}

fn large_params() -> WanParams {
    WanParams {
        regions: 6,
        routers_per_region: 6,
        edge_routers: 14,
        peers_per_edge: 2,
        ..WanParams::default()
    }
}

fn bench_scenario(c: &mut Criterion, s: &wan::Scenario) {
    let topo = &s.network.topology;
    let (name, q) = s.peering_predicates().into_iter().next().unwrap();
    let (props, inv) = s.peering_property_inputs(&q);
    let label = format!("{name}/{}r", s.params.num_routers());

    // Outcome parity gate: the ablation only means something if the
    // engines agree byte-for-byte.
    let fresh_report = Verifier::new(topo, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .with_incremental(false)
        .verify_safety_multi(&props, &inv);
    let inc_report = Verifier::new(topo, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .verify_safety_multi(&props, &inv);
    assert!(fresh_report.all_passed());
    assert_eq!(fresh_report.to_string(), inc_report.to_string());
    assert_eq!(
        fresh_report.format_failures(topo),
        inc_report.format_failures(topo)
    );

    let mut g = c.benchmark_group("wan-incremental");
    g.sample_size(10);

    g.bench_with_input(BenchmarkId::new("fresh", &label), &s, |b, s| {
        b.iter(|| {
            let v = Verifier::new(topo, &s.network.policy)
                .with_ghost(s.from_peer_ghost())
                .with_incremental(false);
            assert!(v.verify_safety_multi(&props, &inv).all_passed());
        })
    });

    g.bench_with_input(BenchmarkId::new("incremental", &label), &s, |b, s| {
        b.iter(|| {
            let v = Verifier::new(topo, &s.network.policy).with_ghost(s.from_peer_ghost());
            assert!(v.verify_safety_multi(&props, &inv).all_passed());
        })
    });

    let cache = Arc::new(CheckCache::new());
    // Warm pass outside the timing loop.
    let warm = Verifier::new(topo, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .with_mode(RunMode::Parallel)
        .with_cache(cache.clone());
    assert!(warm.verify_safety_multi(&props, &inv).all_passed());
    g.bench_with_input(BenchmarkId::new("incremental+cache", &label), &s, |b, s| {
        b.iter(|| {
            let v = Verifier::new(topo, &s.network.policy)
                .with_ghost(s.from_peer_ghost())
                .with_mode(RunMode::Parallel)
                .with_cache(cache.clone());
            let report = v.verify_safety_multi(&props, &inv);
            assert!(report.all_passed());
            assert_eq!(report.exec.executed, 0, "warm cache must answer everything");
        })
    });
    g.finish();
}

fn bench_incremental(c: &mut Criterion) {
    bench_scenario(c, &wan::build(&small_params()));
    bench_scenario(c, &wan::build(&large_params()));
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
