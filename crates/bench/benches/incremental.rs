//! Incremental assumption-based solving ablation on the synthetic cloud
//! WAN: one peering property suite verified three ways —
//!
//! * `fresh` — one fresh `TermPool` + bit-blast + `SatSolver` per check
//!   (the seed behavior; `--no-incremental`);
//! * `incremental` — checks grouped by encoding base, each group solved
//!   on one persistent `IncrementalSession` via activation-literal
//!   assumption queries, learnt clauses carried across checks;
//! * `incremental+cache` — incremental orchestrated solving against a
//!   pre-warmed cross-run result cache (the warm re-verification path).
//!
//! `fresh` and `incremental` run the sequential engine with structural
//! dedup out of the picture, so the measured delta is purely the cost of
//! re-encoding and re-learning versus assumption solving. Outcomes are
//! asserted byte-identical before timing starts.
//!
//! Sized at an 8-router and a 50-router WAN; scale further with
//! `WAN_REGIONS` / `WAN_ROUTERS` / `WAN_EDGES` / `WAN_PEERS`.

use bench::{env_usize, median, record_gate};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lightyear::engine::{CheckCache, RunMode, Verifier};
use netgen::wan::{self, WanParams};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn small_params() -> WanParams {
    WanParams {
        regions: env_usize("WAN_REGIONS", 2),
        routers_per_region: env_usize("WAN_ROUTERS", 2),
        edge_routers: env_usize("WAN_EDGES", 4),
        peers_per_edge: env_usize("WAN_PEERS", 2),
        ..WanParams::default()
    }
}

fn large_params() -> WanParams {
    WanParams {
        regions: 6,
        routers_per_region: 6,
        edge_routers: 14,
        peers_per_edge: 2,
        ..WanParams::default()
    }
}

fn bench_scenario(c: &mut Criterion, s: &wan::Scenario, acceptance: bool) {
    let topo = &s.network.topology;
    let (name, q) = s.peering_predicates().into_iter().next().unwrap();
    let (props, inv) = s.peering_property_inputs(&q);
    let label = format!("{name}/{}r", s.params.num_routers());

    // Outcome parity gate: the ablation only means something if the
    // engines agree byte-for-byte.
    let fresh_report = Verifier::new(topo, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .with_incremental(false)
        .verify_safety_multi(&props, &inv);
    let inc_report = Verifier::new(topo, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .verify_safety_multi(&props, &inv);
    assert!(fresh_report.all_passed());
    assert_eq!(fresh_report.to_string(), inc_report.to_string());
    assert_eq!(
        fresh_report.format_failures(topo),
        inc_report.format_failures(topo)
    );

    let mut g = c.benchmark_group("wan-incremental");
    g.sample_size(10);

    g.bench_with_input(BenchmarkId::new("fresh", &label), &s, |b, s| {
        b.iter(|| {
            let v = Verifier::new(topo, &s.network.policy)
                .with_ghost(s.from_peer_ghost())
                .with_incremental(false);
            assert!(v.verify_safety_multi(&props, &inv).all_passed());
        })
    });

    g.bench_with_input(BenchmarkId::new("incremental", &label), &s, |b, s| {
        b.iter(|| {
            let v = Verifier::new(topo, &s.network.policy).with_ghost(s.from_peer_ghost());
            assert!(v.verify_safety_multi(&props, &inv).all_passed());
        })
    });

    let cache = Arc::new(CheckCache::new());
    // Warm pass outside the timing loop.
    let warm = Verifier::new(topo, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .with_mode(RunMode::Parallel)
        .with_cache(cache.clone());
    assert!(warm.verify_safety_multi(&props, &inv).all_passed());
    g.bench_with_input(BenchmarkId::new("incremental+cache", &label), &s, |b, s| {
        b.iter(|| {
            let v = Verifier::new(topo, &s.network.policy)
                .with_ghost(s.from_peer_ghost())
                .with_mode(RunMode::Parallel)
                .with_cache(cache.clone());
            let report = v.verify_safety_multi(&props, &inv);
            assert!(report.all_passed());
            assert_eq!(report.exec.executed, 0, "warm cache must answer everything");
        })
    });
    g.finish();

    if !acceptance {
        return;
    }
    // Acceptance gate (ISSUE 2, asserted in-bench since ISSUE 4's CI
    // bench-gate job): incremental group solving >= 2x over fresh
    // per-check solving on the 50-router WAN.
    let reps = 5usize;
    let fresh_times: Vec<Duration> = (0..reps)
        .map(|_| {
            let v = Verifier::new(topo, &s.network.policy)
                .with_ghost(s.from_peer_ghost())
                .with_incremental(false);
            let t = Instant::now();
            assert!(v.verify_safety_multi(&props, &inv).all_passed());
            t.elapsed()
        })
        .collect();
    let inc_times: Vec<Duration> = (0..reps)
        .map(|_| {
            let v = Verifier::new(topo, &s.network.policy).with_ghost(s.from_peer_ghost());
            let t = Instant::now();
            assert!(v.verify_safety_multi(&props, &inv).all_passed());
            t.elapsed()
        })
        .collect();
    let (fresh_med, inc_med) = (median(fresh_times), median(inc_times));
    let ratio = fresh_med.as_secs_f64() / inc_med.as_secs_f64();
    println!(
        "acceptance {label}: fresh {fresh_med:?} vs incremental {inc_med:?} ({ratio:.1}x, need >= 2x)"
    );
    record_gate("incremental-50r", ratio, 2.0);
}

fn bench_incremental(c: &mut Criterion) {
    bench_scenario(c, &wan::build(&small_params()), false);
    bench_scenario(c, &wan::build(&large_params()), true);
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
