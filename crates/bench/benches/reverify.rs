//! Fresh vs warm-daemon re-verification under single-router edits.
//!
//! The workload the delta subsystem exists for: a long-lived verifier
//! has proved the WAN once; an operator edits one router's route map;
//! how fast is the re-check?
//!
//! * `fresh` — a full `--incremental` verification of the edited
//!   network from scratch (what `lightyear verify` does per run);
//! * `warm-reverify` — a `ReverifyEngine` round: the semantic diff names
//!   the edited router, fingerprints confirm the dirty neighborhood, the
//!   one dirty check re-solves on a persistent cross-run session and
//!   everything else is answered from the carried result cache.
//!
//! Each warm iteration applies a *distinct* edit (monotonically rising
//! local-pref), so every round genuinely re-solves on the warm session —
//! no round is answered purely from cache. Reports are asserted
//! byte-identical to the fresh engine before timing starts, and the
//! acceptance gate (warm ≥ 5x faster than fresh on the 50-router WAN,
//! dirty set ≤ the edited neighborhood) is asserted at the end.

use bench::{env_usize, median, record_gate};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use delta::diff_configs;
use lightyear::engine::Verifier;
use lightyear::reverify::ReverifyEngine;
use netgen::edits;
use netgen::wan::{self, WanParams};
use std::time::{Duration, Instant};

fn small_params() -> WanParams {
    WanParams {
        regions: env_usize("WAN_REGIONS", 2),
        routers_per_region: env_usize("WAN_ROUTERS", 2),
        edge_routers: env_usize("WAN_EDGES", 4),
        peers_per_edge: env_usize("WAN_PEERS", 2),
        ..WanParams::default()
    }
}

/// The paper-scale WAN: 6 regions x 6 routers + 14 edges = 50 routers.
fn large_params() -> WanParams {
    WanParams {
        regions: 6,
        routers_per_region: 6,
        edge_routers: 14,
        peers_per_edge: 2,
        ..WanParams::default()
    }
}

/// A bank of single-router edit variants (distinct local-pref values on
/// EDGE0's first peer import), pre-lowered outside any timing loop.
struct Variant {
    scenario: wan::Scenario,
    changed: Vec<String>,
}

fn variants(params: &WanParams, n: u32) -> Vec<Variant> {
    let base = wan::configs(params);
    (0..n)
        .map(|i| {
            let mut cfgs = base.clone();
            edits::set_local_pref(&mut cfgs, "EDGE0", "FROM-PEER0", 101 + i).unwrap();
            let changed = diff_configs(&base, &cfgs).changed_routers();
            Variant {
                scenario: wan::build_from_configs(params, cfgs),
                changed,
            }
        })
        .collect()
}

fn bench_scenario(c: &mut Criterion, params: &WanParams, acceptance: bool) {
    let base = wan::build(params);
    let label = format!("{}r", params.num_routers());
    let (_, q) = base.peering_predicates().into_iter().next().unwrap();

    // Enough pre-built variants that no timed iteration ever repeats an
    // edit (criterion shim: warmup + sample_size iterations per bench).
    let bank = variants(params, 40);
    let suite = |s: &wan::Scenario| s.peering_property_inputs(&q);

    // Parity gate before timing: a warm round over an edit must render
    // byte-identically to the fresh engine on the same network.
    {
        let mut engine = ReverifyEngine::new();
        let (props, inv) = suite(&base);
        let v = Verifier::new(&base.network.topology, &base.network.policy)
            .with_ghost(base.from_peer_ghost());
        engine.reverify(&v, &props, &inv, None);
        let s = &bank[0].scenario;
        let (props, inv) = suite(s);
        let v =
            Verifier::new(&s.network.topology, &s.network.policy).with_ghost(s.from_peer_ghost());
        let (warm, stats) = engine.reverify(&v, &props, &inv, Some(&bank[0].changed));
        let fresh = v.verify_safety_multi(&props, &inv);
        assert_eq!(fresh.to_string(), warm.to_string());
        assert!(
            stats.dirty > 0 && stats.dirty <= stats.candidates,
            "{stats:?}"
        );
        assert!(stats.candidates < stats.total, "{stats:?}");
    }

    let mut g = c.benchmark_group("wan-reverify");
    g.sample_size(10);

    g.bench_with_input(BenchmarkId::new("fresh", &label), &bank, |b, bank| {
        let mut i = 0usize;
        b.iter(|| {
            let s = &bank[i % bank.len()].scenario;
            i += 1;
            let (props, inv) = suite(s);
            let v = Verifier::new(&s.network.topology, &s.network.policy)
                .with_ghost(s.from_peer_ghost());
            assert!(v.verify_safety_multi(&props, &inv).all_passed());
        })
    });

    // Warm daemon: base round outside the loop; each iteration is one
    // delta round over a distinct edit.
    let mut engine = ReverifyEngine::new();
    {
        let (props, inv) = suite(&base);
        let v = Verifier::new(&base.network.topology, &base.network.policy)
            .with_ghost(base.from_peer_ghost());
        engine.reverify(&v, &props, &inv, None);
    }
    g.bench_with_input(
        BenchmarkId::new("warm-reverify", &label),
        &bank,
        |b, bank| {
            let mut i = 1usize; // variant 0 consumed by the parity gate shape
            b.iter(|| {
                let var = &bank[i % bank.len()];
                i += 1;
                let s = &var.scenario;
                let (props, inv) = suite(s);
                let v = Verifier::new(&s.network.topology, &s.network.policy)
                    .with_ghost(s.from_peer_ghost());
                let (report, stats) = engine.reverify(&v, &props, &inv, Some(&var.changed));
                assert!(report.all_passed());
                assert!(stats.dirty > 0, "every round must really re-solve");
            })
        },
    );
    g.finish();

    if !acceptance {
        return;
    }
    // Acceptance gate (ISSUE 3): on the 50-router WAN a warm re-verify
    // round after a single-router route-map edit is >= 5x faster than a
    // fresh --incremental run, re-solving only the dirty neighborhood.
    let reps = 5usize;
    let fresh_times: Vec<Duration> = (0..reps)
        .map(|r| {
            let s = &bank[r % bank.len()].scenario;
            let (props, inv) = suite(s);
            let v = Verifier::new(&s.network.topology, &s.network.policy)
                .with_ghost(s.from_peer_ghost());
            let t = Instant::now();
            assert!(v.verify_safety_multi(&props, &inv).all_passed());
            t.elapsed()
        })
        .collect();
    let warm_times: Vec<Duration> = (0..reps)
        .map(|r| {
            // Variants 20.. were never posed to the engine: a variant the
            // warm loop already solved would now be answered dirty-0 from
            // the conjunct-core cache (its rest fingerprint recurs), and
            // the gate must time rounds that really re-solve.
            let var = &bank[(20 + r) % bank.len()];
            let s = &var.scenario;
            let (props, inv) = suite(s);
            let v = Verifier::new(&s.network.topology, &s.network.policy)
                .with_ghost(s.from_peer_ghost());
            let t = Instant::now();
            let (report, stats) = engine.reverify(&v, &props, &inv, Some(&var.changed));
            let dt = t.elapsed();
            assert!(report.all_passed());
            assert!(stats.dirty > 0 && stats.dirty <= stats.candidates);
            dt
        })
        .collect();
    let (fresh_med, warm_med) = (median(fresh_times), median(warm_times));
    let ratio = fresh_med.as_secs_f64() / warm_med.as_secs_f64();
    println!(
        "acceptance {label}: fresh {fresh_med:?} vs warm {warm_med:?} ({ratio:.1}x, need >= 5x)"
    );
    record_gate("reverify-warm-50r", ratio, 5.0);
}

fn bench_reverify(c: &mut Criterion) {
    bench_scenario(c, &small_params(), false);
    bench_scenario(c, &large_params(), true);
}

criterion_group!(benches, bench_reverify);
criterion_main!(benches);
