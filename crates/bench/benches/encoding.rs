//! Route-map encoding ablations.
//!
//! * **D4** — encoding cost vs number of route-map entries (the nested
//!   if-then-else chain grows linearly with entries).
//! * **D1** — check cost vs community-universe width (each universe
//!   community adds one boolean per symbolic route).

use bgp_model::prefix::PrefixRange;
use bgp_model::routemap::{MatchCond, RouteMap, RouteMapEntry, SetAction};
use bgp_model::Community;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lightyear::encode::Encoder;
use lightyear::symbolic::SymRoute;
use lightyear::universe::Universe;
use smt::{solve, TermPool};

/// A route map with `n` prefix-match entries plus a final deny.
fn map_with_entries(n: usize) -> RouteMap {
    let mut m = RouteMap::new("BENCH");
    for i in 0..n {
        let base = ((10 + i) as u32) << 24;
        m.push(
            RouteMapEntry::permit((i as u32 + 1) * 10)
                .matching(MatchCond::PrefixList(vec![(
                    true,
                    PrefixRange::orlonger(bgp_model::Ipv4Prefix::new(base, 8)),
                )]))
                .setting(SetAction::LocalPref(100 + i as u32)),
        );
    }
    m
}

fn bench_entries(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode/entries");
    g.sample_size(20);
    for n in [4usize, 16, 64] {
        let map = map_with_entries(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &map, |b, map| {
            b.iter(|| {
                let u = Universe::new();
                let mut pool = TermPool::new();
                let r = SymRoute::fresh(&mut pool, &u, "r");
                let mut enc = Encoder::new(&mut pool, &u, "b");
                let t = enc.encode_route_map(map, &r);
                // Solve a trivial query over the transfer to include
                // bit-blasting cost.
                let not_rej = pool.not(t.reject);
                let _ = solve(&pool, &[not_rej]);
            })
        });
    }
    g.finish();
}

fn bench_universe_width(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode/universe-width");
    g.sample_size(20);
    for width in [4usize, 32, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &width| {
            // A map that tags one community; the universe carries `width`
            // communities that all must be threaded through the transfer.
            let mut map = RouteMap::new("TAG");
            map.push(RouteMapEntry::permit(10).setting(SetAction::Community {
                comms: vec![Community::new(9, 9)],
                additive: true,
            }));
            b.iter(|| {
                let mut u = Universe::new();
                for i in 0..width {
                    u.add_community(Community::new(1, i as u16));
                }
                u.add_community(Community::new(9, 9));
                let mut pool = TermPool::new();
                let r = SymRoute::fresh(&mut pool, &u, "r");
                let mut enc = Encoder::new(&mut pool, &u, "b");
                let t = enc.encode_route_map(&map, &r);
                let tagged = t.out.has_community(&u, Community::new(9, 9));
                let not = pool.not(tagged);
                // Accepted routes are always tagged: UNSAT.
                let not_rej = pool.not(t.reject);
                assert!(!solve(&pool, &[not_rej, not]).is_sat());
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_entries, bench_universe_width);
criterion_main!(benches);
