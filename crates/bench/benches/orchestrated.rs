//! Orchestrator ablation on the synthetic cloud WAN: the same peering
//! property verified three ways —
//!
//! * `naive` — orchestrated pool, structural dedup disabled (every
//!   check is its own solver call; the old D3 behavior);
//! * `dedup` — structural dedup on (the Figure 3b/3d attack: WAN
//!   peerings share route-map templates, so thousands of checks
//!   collapse to a handful of solver calls);
//! * `cached` — dedup plus a pre-warmed cross-run result cache (the
//!   incremental re-verification path: nothing to solve).
//!
//! Scale with `WAN_REGIONS` / `WAN_ROUTERS` / `WAN_EDGES` / `WAN_PEERS`.

use bench::env_usize;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lightyear::engine::{CheckCache, RunMode, Verifier};
use netgen::wan::{self, WanParams};
use std::sync::Arc;

fn params() -> WanParams {
    WanParams {
        regions: env_usize("WAN_REGIONS", 2),
        routers_per_region: env_usize("WAN_ROUTERS", 2),
        edge_routers: env_usize("WAN_EDGES", 4),
        peers_per_edge: env_usize("WAN_PEERS", 4),
        ..WanParams::default()
    }
}

fn bench_orchestrated(c: &mut Criterion) {
    let s = wan::build(&params());
    let topo = &s.network.topology;
    let (name, q) = s.peering_predicates().into_iter().next().unwrap();
    let (props, inv) = s.peering_property_inputs(&q);
    let label = format!("{name}/{}r", s.params.num_routers());

    let mut g = c.benchmark_group("wan-orchestrated");
    g.sample_size(10);

    g.bench_with_input(BenchmarkId::new("naive", &label), &s, |b, s| {
        b.iter(|| {
            let v = Verifier::new(topo, &s.network.policy)
                .with_ghost(s.from_peer_ghost())
                .with_mode(RunMode::Parallel)
                .with_dedup(false);
            assert!(v.verify_safety_multi(&props, &inv).all_passed());
        })
    });

    g.bench_with_input(BenchmarkId::new("dedup", &label), &s, |b, s| {
        b.iter(|| {
            let v = Verifier::new(topo, &s.network.policy)
                .with_ghost(s.from_peer_ghost())
                .with_mode(RunMode::Parallel);
            assert!(v.verify_safety_multi(&props, &inv).all_passed());
        })
    });

    let cache = Arc::new(CheckCache::new());
    // Warm pass outside the timing loop.
    let warm = Verifier::new(topo, &s.network.policy)
        .with_ghost(s.from_peer_ghost())
        .with_mode(RunMode::Parallel)
        .with_cache(cache.clone());
    assert!(warm.verify_safety_multi(&props, &inv).all_passed());
    g.bench_with_input(BenchmarkId::new("cached", &label), &s, |b, s| {
        b.iter(|| {
            let v = Verifier::new(topo, &s.network.policy)
                .with_ghost(s.from_peer_ghost())
                .with_mode(RunMode::Parallel)
                .with_cache(cache.clone());
            let report = v.verify_safety_multi(&props, &inv);
            assert!(report.all_passed());
            assert_eq!(report.exec.executed, 0, "warm cache must answer everything");
        })
    });
    g.finish();
}

criterion_group!(benches, bench_orchestrated);
criterion_main!(benches);
