//! Solver raw-speed benchmarks: SAT/bit-blasting microbenchmarks plus
//! the ISSUE-7 ablation on the synthetic cloud WAN's fresh solve path —
//! one peering property suite verified under three solver tunings:
//!
//! * `plain` — the pre-ISSUE-7 feed and database shape: one owned,
//!   sorted `Vec` per fed clause, a heap-allocated watcher list per
//!   literal, and subsumption/sweeps disabled (`SolverConfig::plain`);
//! * `inprocessed` — the default path: flat slice feed into the shared
//!   clause arena, inline watcher heads, on-the-fly binary subsumption
//!   and periodic learnt-DB sweeps with vivification;
//! * `inprocessed+portfolio` — the default path with intra-group
//!   portfolio racing enabled (production thresholds, so only groups
//!   whose encodings are genuinely heavyweight race).
//!
//! Reports are asserted byte-identical across all three before any
//! timing starts. The acceptance gate compares *solver busy time*
//! (bit-blast + feed + search, read from the metrics sink) on the
//! 50-router WAN, which is the part of the pipeline this work touches;
//! end-to-end wall clock is recorded as a second, looser trend line
//! (the fresh path also spends time building terms, which is out of
//! scope here). Warm re-verify regressions are guarded by the existing
//! `reverify` bench gates.
//!
//! A pigeonhole-principle instance posed through a portfolio session
//! provides the hard-search trend line: racing jittered clones must not
//! be catastrophically slower than sequential solving (and is often
//! faster — the win attribution lands in the profile's portfolio
//! section).
//!
//! Sized at an 8-router and a 50-router WAN; scale further with
//! `WAN_REGIONS` / `WAN_ROUTERS` / `WAN_EDGES` / `WAN_PEERS`.

use bench::{env_usize, median, record_gate};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lightyear::engine::{SolverTuning, Verifier};
use netgen::wan::{self, WanParams};
use smt::{
    solve, IncrementalSession, PortfolioConfig, SatSolver, SolveOutcome, SolverConfig, TermId,
    TermPool, Var,
};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Microbenchmarks (kernel-level)
// ---------------------------------------------------------------------------

/// Pigeonhole principle: n+1 pigeons, n holes (UNSAT, exponentially hard
/// for resolution — stresses conflict analysis).
fn pigeonhole(n: u32) -> SatSolver {
    let pigeons = n + 1;
    let holes = n;
    let var = |p: u32, h: u32| Var(p * holes + h);
    let mut s = SatSolver::new(pigeons * holes);
    for p in 0..pigeons {
        let clause: Vec<_> = (0..holes).map(|h| var(p, h).pos()).collect();
        s.add_clause(clause);
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                s.add_clause(vec![var(p1, h).neg(), var(p2, h).neg()]);
            }
        }
    }
    s
}

fn bench_pigeonhole(c: &mut Criterion) {
    let mut g = c.benchmark_group("sat/pigeonhole");
    g.sample_size(10);
    for n in [5u32, 6, 7] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut s = pigeonhole(n);
                assert_eq!(s.solve(), SolveOutcome::Unsat);
            })
        });
    }
    g.finish();
}

/// Chained bitvector comparisons (SAT): x0 < x1 < ... < xk over bv16.
fn bench_bv_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("smt/bv-ult-chain");
    g.sample_size(20);
    for k in [8usize, 16, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut pool = TermPool::new();
                let vars: Vec<_> = (0..=k).map(|i| pool.bv_var(&format!("x{i}"), 16)).collect();
                let mut assertions = Vec::new();
                for w in vars.windows(2) {
                    assertions.push(pool.bv_ult(w[0], w[1]));
                }
                assert!(solve(&pool, &assertions).is_sat());
            })
        });
    }
    g.finish();
}

/// Bitvector addition pipelines (UNSAT): proves x + k - k == x.
fn bench_adder_identity(c: &mut Criterion) {
    c.bench_function("smt/adder-identity-unsat", |b| {
        b.iter(|| {
            let mut pool = TermPool::new();
            let x = pool.bv_var("x", 32);
            let k = pool.bv_const(0x1234_5678, 32);
            let nk = pool.bv_const((0x1234_5678u64 as u32).wrapping_neg() as u64, 32);
            let sum = pool.bv_add(x, k);
            let back = pool.bv_add(sum, nk);
            let eq = pool.bv_eq(back, x);
            let neq = pool.not(eq);
            assert!(!solve(&pool, &[neq]).is_sat());
        })
    });
}

// ---------------------------------------------------------------------------
// WAN ablation: plain vs inprocessed vs inprocessed+portfolio
// ---------------------------------------------------------------------------

fn small_params() -> WanParams {
    WanParams {
        regions: env_usize("WAN_REGIONS", 2),
        routers_per_region: env_usize("WAN_ROUTERS", 2),
        edge_routers: env_usize("WAN_EDGES", 4),
        peers_per_edge: env_usize("WAN_PEERS", 2),
        ..WanParams::default()
    }
}

fn large_params() -> WanParams {
    WanParams {
        regions: 6,
        routers_per_region: 6,
        edge_routers: 14,
        peers_per_edge: 2,
        ..WanParams::default()
    }
}

/// The pre-ISSUE-7 solver: buffered per-clause feed, spilled (heap
/// `Vec` per literal) watcher lists, no subsumption, no sweeps, no
/// portfolio.
fn plain_tuning() -> SolverTuning {
    SolverTuning {
        config: SolverConfig::plain(),
        buffered_feed: true,
        portfolio: None,
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Tuning {
    Plain,
    Inprocessed,
    Portfolio,
}

impl Tuning {
    fn label(self) -> &'static str {
        match self {
            Tuning::Plain => "plain",
            Tuning::Inprocessed => "inprocessed",
            Tuning::Portfolio => "inprocessed+portfolio",
        }
    }
}

fn verifier<'a>(s: &'a wan::Scenario, tuning: Tuning) -> Verifier<'a> {
    let v = Verifier::new(&s.network.topology, &s.network.policy).with_ghost(s.from_peer_ghost());
    match tuning {
        Tuning::Plain => v.with_solver_tuning(plain_tuning()),
        Tuning::Inprocessed => v,
        Tuning::Portfolio => v.with_portfolio(Default::default()),
    }
}

/// One fresh verification with a scoped metrics sink, returning
/// `(solver busy, wall)`: busy is bit-blast + clause feed + SAT search
/// (`smt.encode_ns + smt.solve_ns`), the portion of the run this
/// bench's tunings change.
fn timed_run(
    s: &wan::Scenario,
    props: &[lightyear::SafetyProperty],
    inv: &lightyear::NetworkInvariants,
    tuning: Tuning,
) -> (Duration, Duration) {
    let reg = obs::install();
    let t = Instant::now();
    assert!(verifier(s, tuning)
        .verify_safety_multi(props, inv)
        .all_passed());
    let wall = t.elapsed();
    let snap = reg.snapshot();
    let busy = Duration::from_nanos(snap.counter("smt.encode_ns") + snap.counter("smt.solve_ns"));
    obs::uninstall();
    (busy, wall)
}

fn bench_scenario(c: &mut Criterion, s: &wan::Scenario, acceptance: bool) {
    let topo = &s.network.topology;
    let (name, q) = s.peering_predicates().into_iter().next().unwrap();
    let (props, inv) = s.peering_property_inputs(&q);
    let label = format!("{name}/{}r", s.params.num_routers());

    // Parity gate: the three tunings must render byte-identical reports
    // (the whole point of the determinism contract) before any timing.
    let reference = verifier(s, Tuning::Plain).verify_safety_multi(&props, &inv);
    assert!(reference.all_passed());
    for tuning in [Tuning::Inprocessed, Tuning::Portfolio] {
        let r = verifier(s, tuning).verify_safety_multi(&props, &inv);
        assert_eq!(reference.to_string(), r.to_string(), "{}", tuning.label());
        assert_eq!(
            reference.format_failures(topo),
            r.format_failures(topo),
            "{}",
            tuning.label()
        );
    }

    let mut g = c.benchmark_group("wan-solver");
    g.sample_size(10);
    for tuning in [Tuning::Plain, Tuning::Inprocessed, Tuning::Portfolio] {
        g.bench_with_input(BenchmarkId::new(tuning.label(), &label), &s, |b, s| {
            b.iter(|| {
                assert!(verifier(s, tuning)
                    .verify_safety_multi(&props, &inv)
                    .all_passed());
            })
        });
    }
    g.finish();

    if !acceptance {
        return;
    }
    // Acceptance gate (ISSUE 7): the inprocessed flat-feed solver must
    // be >= 2x the plain baseline on solver busy time for the fresh
    // 50-router WAN, and end-to-end wall clock must show a material
    // win too (looser floor: the fresh path also builds terms, which
    // this work does not touch).
    // Interleaved reps (one discarded warm-up each): frequency scaling,
    // allocator and page-cache drift over the measurement window then
    // hit both tunings equally instead of biasing whichever ran last.
    let reps = 7usize;
    timed_run(s, &props, &inv, Tuning::Plain);
    timed_run(s, &props, &inv, Tuning::Inprocessed);
    let mut plain_samples = Vec::new();
    let mut tuned_samples = Vec::new();
    for _ in 0..reps {
        plain_samples.push(timed_run(s, &props, &inv, Tuning::Plain));
        tuned_samples.push(timed_run(s, &props, &inv, Tuning::Inprocessed));
    }
    let split = |samples: &[(Duration, Duration)]| -> (Duration, Duration) {
        (
            median(samples.iter().map(|&(b, _)| b).collect()),
            median(samples.iter().map(|&(_, w)| w).collect()),
        )
    };
    let (plain_busy, plain_wall) = split(&plain_samples);
    let (tuned_busy, tuned_wall) = split(&tuned_samples);
    let busy_ratio = plain_busy.as_secs_f64() / tuned_busy.as_secs_f64();
    let wall_ratio = plain_wall.as_secs_f64() / tuned_wall.as_secs_f64();
    println!(
        "acceptance {label}: solver busy plain {plain_busy:?} vs inprocessed {tuned_busy:?} \
         ({busy_ratio:.2}x, need >= 2x); wall {plain_wall:?} vs {tuned_wall:?} ({wall_ratio:.2}x)"
    );
    record_gate("solver-50r", busy_ratio, 2.0);
    record_gate("solver-50r-wall", wall_ratio, 1.2);
}

// ---------------------------------------------------------------------------
// Portfolio racing on hard search (trend line)
// ---------------------------------------------------------------------------

/// The pigeonhole principle as a term formula: n+1 pigeons, n holes.
fn pigeonhole_formula(pool: &mut TermPool, n: usize) -> TermId {
    let mut clauses = Vec::new();
    for i in 0..=n {
        let lits: Vec<TermId> = (0..n)
            .map(|j| pool.bool_var(&format!("p{i}_{j}")))
            .collect();
        clauses.push(pool.or(&lits));
    }
    for j in 0..n {
        for i1 in 0..=n {
            for i2 in (i1 + 1)..=n {
                let a = pool.bool_var(&format!("p{i1}_{j}"));
                let b = pool.bool_var(&format!("p{i2}_{j}"));
                let both = pool.and(&[a, b]);
                clauses.push(pool.not(both));
            }
        }
    }
    pool.and(&clauses)
}

fn php_session_solve(n: usize, portfolio: bool) -> Duration {
    let mut sess = IncrementalSession::new();
    if portfolio {
        // Race with the machine's spare cores, as production does: on a
        // single-core runner the slot pool refuses the race and the
        // session solves sequentially (ratio ~1), instead of timing K
        // threads contending for one core.
        let spare = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .saturating_sub(1);
        sess = sess.with_portfolio(PortfolioConfig {
            min_clauses: 0,
            slots: Some(smt::PortfolioSlots::new(spare)),
            ..PortfolioConfig::default()
        });
    }
    let php = pigeonhole_formula(sess.pool_mut(), n);
    let act = sess.activation(php);
    let t = Instant::now();
    let (r, _) = sess.solve_under(&[act]);
    assert!(!r.is_sat(), "pigeonhole must be UNSAT");
    t.elapsed()
}

fn bench_portfolio_hard_search(c: &mut Criterion) {
    let n = env_usize("PHP_HOLES", 7);
    let mut g = c.benchmark_group("portfolio/pigeonhole");
    g.sample_size(10);
    for (label, portfolio) in [("sequential", false), ("raced", true)] {
        g.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
            b.iter(|| php_session_solve(n, portfolio))
        });
    }
    g.finish();

    // Trend line, not a speedup promise: jittered clones race the same
    // exponential instance, so the win fluctuates with the jitter draw.
    // The floor only guards against the portfolio layer making hard
    // search pathologically slower than sequential solving.
    let reps = 5usize;
    let seq = median((0..reps).map(|_| php_session_solve(n, false)).collect());
    let raced = median((0..reps).map(|_| php_session_solve(n, true)).collect());
    let ratio = seq.as_secs_f64() / raced.as_secs_f64();
    println!("portfolio pigeonhole-{n}: sequential {seq:?} vs raced {raced:?} ({ratio:.2}x)");
    record_gate("solver-portfolio-php", ratio, 0.5);
}

fn bench_solver_ablation(c: &mut Criterion) {
    bench_scenario(c, &wan::build(&small_params()), false);
    bench_scenario(c, &wan::build(&large_params()), true);
}

criterion_group!(
    benches,
    bench_pigeonhole,
    bench_bv_chain,
    bench_adder_identity,
    bench_solver_ablation,
    bench_portfolio_hard_search
);
criterion_main!(benches);
