//! SAT / bit-blasting microbenchmarks for the SMT substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smt::{solve, SatSolver, SolveOutcome, TermPool, Var};

/// Pigeonhole principle: n+1 pigeons, n holes (UNSAT, exponentially hard
/// for resolution — stresses conflict analysis).
fn pigeonhole(n: u32) -> SatSolver {
    let pigeons = n + 1;
    let holes = n;
    let var = |p: u32, h: u32| Var(p * holes + h);
    let mut s = SatSolver::new(pigeons * holes);
    for p in 0..pigeons {
        let clause: Vec<_> = (0..holes).map(|h| var(p, h).pos()).collect();
        s.add_clause(clause);
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                s.add_clause(vec![var(p1, h).neg(), var(p2, h).neg()]);
            }
        }
    }
    s
}

fn bench_pigeonhole(c: &mut Criterion) {
    let mut g = c.benchmark_group("sat/pigeonhole");
    g.sample_size(10);
    for n in [5u32, 6, 7] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut s = pigeonhole(n);
                assert_eq!(s.solve(), SolveOutcome::Unsat);
            })
        });
    }
    g.finish();
}

/// Chained bitvector comparisons (SAT): x0 < x1 < ... < xk over bv16.
fn bench_bv_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("smt/bv-ult-chain");
    g.sample_size(20);
    for k in [8usize, 16, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut pool = TermPool::new();
                let vars: Vec<_> = (0..=k).map(|i| pool.bv_var(&format!("x{i}"), 16)).collect();
                let mut assertions = Vec::new();
                for w in vars.windows(2) {
                    assertions.push(pool.bv_ult(w[0], w[1]));
                }
                assert!(solve(&pool, &assertions).is_sat());
            })
        });
    }
    g.finish();
}

/// Bitvector addition pipelines (UNSAT): proves x + k - k == x.
fn bench_adder_identity(c: &mut Criterion) {
    c.bench_function("smt/adder-identity-unsat", |b| {
        b.iter(|| {
            let mut pool = TermPool::new();
            let x = pool.bv_var("x", 32);
            let k = pool.bv_const(0x1234_5678, 32);
            let nk = pool.bv_const((0x1234_5678u64 as u32).wrapping_neg() as u64, 32);
            let sum = pool.bv_add(x, k);
            let back = pool.bv_add(sum, nk);
            let eq = pool.bv_eq(back, x);
            let neq = pool.not(eq);
            assert!(!solve(&pool, &[neq]).is_sat());
        })
    });
}

criterion_group!(
    benches,
    bench_pigeonhole,
    bench_bv_chain,
    bench_adder_identity
);
criterion_main!(benches);
