//! Cross-property shared-encoding verification on the synthetic cloud
//! WAN: several peering-policy property suites verified two ways —
//!
//! * `per-property` — one grouped (`--incremental`) run per suite, the
//!   PR-2 state of the art: within a suite each edge's transfer relation
//!   is encoded once, but every suite re-encodes every edge again;
//! * `cross-property` — `Verifier::verify_safety_batch`: ONE run over
//!   all suites, so checks from different suites that share an edge are
//!   solved as warm assumption queries on a single persistent session
//!   and each edge is encoded exactly once for the whole batch.
//!
//! Per-suite reports are asserted byte-identical before timing starts,
//! and the acceptance gate (cross-property ≥ 1.5x over per-property
//! grouped solving on the 50-router WAN with ≥ 3 properties) is asserted
//! at the end — in-bench and, via `BENCH_JSON`, in the CI `bench-gate`
//! job.
//!
//! Sized at an 8-router and a 50-router WAN; scale further with
//! `WAN_REGIONS` / `WAN_ROUTERS` / `WAN_EDGES` / `WAN_PEERS` /
//! `MULTI_PROPS`.

use bench::{env_usize, median, record_gate};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lightyear::invariants::NetworkInvariants;
use lightyear::safety::SafetyProperty;
use netgen::wan::{self, WanParams};
use std::time::{Duration, Instant};

fn small_params() -> WanParams {
    WanParams {
        regions: env_usize("WAN_REGIONS", 2),
        routers_per_region: env_usize("WAN_ROUTERS", 2),
        edge_routers: env_usize("WAN_EDGES", 4),
        peers_per_edge: env_usize("WAN_PEERS", 2),
        ..WanParams::default()
    }
}

/// The paper-scale WAN: 6 regions x 6 routers + 14 edges = 50 routers.
fn large_params() -> WanParams {
    WanParams {
        regions: 6,
        routers_per_region: 6,
        edge_routers: 14,
        peers_per_edge: 2,
        ..WanParams::default()
    }
}

/// The property suites of the run: the first `MULTI_PROPS` (default 4,
/// min 3) §6.1 peering predicates, each resolved into its own per-router
/// property set and invariant assignment — distinct suites over the same
/// network, the workload `verify_safety_batch` exists for. With exactly
/// 3 properties the theoretical ceiling of the gate ratio on this WAN is
/// ≈1.5x (solve time is not shareable, only encoding is), so the default
/// runs one property above the minimum for CI headroom.
fn suites(s: &wan::Scenario) -> Vec<(Vec<SafetyProperty>, NetworkInvariants)> {
    let n = env_usize("MULTI_PROPS", 4).max(3);
    s.peering_predicates()
        .into_iter()
        .take(n)
        .map(|(_, q)| s.peering_property_inputs(&q))
        .collect()
}

fn as_refs(
    owned: &[(Vec<SafetyProperty>, NetworkInvariants)],
) -> Vec<(&[SafetyProperty], &NetworkInvariants)> {
    owned.iter().map(|(p, i)| (p.as_slice(), i)).collect()
}

fn verifier<'a>(s: &'a wan::Scenario) -> lightyear::Verifier<'a> {
    lightyear::Verifier::new(&s.network.topology, &s.network.policy).with_ghost(s.from_peer_ghost())
}

fn bench_scenario(c: &mut Criterion, s: &wan::Scenario, acceptance: bool) {
    let topo = &s.network.topology;
    let label = format!("{}r", s.params.num_routers());
    let owned = suites(s);
    let refs = as_refs(&owned);

    // Parity gate before timing: every suite of the batch must render
    // byte-identically to its standalone grouped run, and the batch must
    // really have shared sessions across suites (warm assumption solves).
    {
        let multi = verifier(s).verify_safety_batch(&refs);
        assert!(multi.all_passed());
        assert!(multi.exec.assumption_solves > 0, "{:?}", multi.exec);
        for ((props, inv), got) in owned.iter().zip(&multi.reports) {
            let solo = verifier(s).verify_safety_multi(props, inv);
            assert_eq!(solo.to_string(), got.to_string());
            assert_eq!(solo.format_failures(topo), got.format_failures(topo));
        }
    }

    let mut g = c.benchmark_group("wan-multi");
    g.sample_size(10);

    g.bench_with_input(BenchmarkId::new("per-property", &label), &s, |b, s| {
        b.iter(|| {
            for (props, inv) in &owned {
                assert!(verifier(s).verify_safety_multi(props, inv).all_passed());
            }
        })
    });

    g.bench_with_input(BenchmarkId::new("cross-property", &label), &s, |b, s| {
        b.iter(|| {
            assert!(verifier(s).verify_safety_batch(&refs).all_passed());
        })
    });
    g.finish();

    if !acceptance {
        return;
    }
    // Acceptance gate (ISSUE 4): on the 50-router WAN with >= 3
    // properties, one cross-property batch beats per-property grouped
    // solving by >= 1.5x — the win of encoding every edge once for the
    // whole spec instead of once per property.
    let reps = 5usize;
    let per_prop: Vec<Duration> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            for (props, inv) in &owned {
                assert!(verifier(s).verify_safety_multi(props, inv).all_passed());
            }
            t.elapsed()
        })
        .collect();
    let cross: Vec<Duration> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            assert!(verifier(s).verify_safety_batch(&refs).all_passed());
            t.elapsed()
        })
        .collect();
    let (per_med, cross_med) = (median(per_prop), median(cross));
    let ratio = per_med.as_secs_f64() / cross_med.as_secs_f64();
    println!(
        "acceptance {label}: per-property {per_med:?} vs cross-property {cross_med:?} \
         ({ratio:.1}x, need >= 1.5x, {} properties)",
        owned.len()
    );
    record_gate("multi-cross-property-50r", ratio, 1.5);
}

fn bench_multi(c: &mut Criterion) {
    bench_scenario(c, &wan::build(&small_params()), false);
    bench_scenario(c, &wan::build(&large_params()), true);
}

criterion_group!(benches, bench_multi);
criterion_main!(benches);
