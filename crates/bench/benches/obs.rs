//! Disabled-overhead acceptance for the `obs` instrumentation layer:
//! with no sink installed, every instrumentation point in the pipeline
//! must cost one relaxed atomic load and a branch — the gate asserts
//! the aggregate cost stays under 3% of the 50-router incremental
//! verify wall time.
//!
//! "This binary minus its instrumentation" cannot be measured directly
//! post-merge, so the bound is computed analytically from quantities
//! this binary CAN measure:
//!
//! * the exact number of instrumentation calls the workload makes — one
//!   run with a sink installed; every counter/gauge/histogram/span
//!   entry point bumps `Registry::calls()`;
//! * the disabled per-call cost — a tight loop over `obs::add` with no
//!   sink (the disabled fast path is the same early-return across all
//!   entry points);
//! * the median disabled wall time of the workload itself.
//!
//! overhead% = calls x per-call / wall. The estimate is conservative:
//! it prices every call at the measured loop cost even though the real
//! run amortizes the load's cache line across far colder surrounding
//! work.

use bench::{env_usize, median, record_gate_max};
use criterion::{criterion_group, criterion_main, Criterion};
use lightyear::engine::Verifier;
use netgen::wan::{self, WanParams};
use std::time::{Duration, Instant};

fn large_params() -> WanParams {
    WanParams {
        regions: env_usize("WAN_REGIONS", 6),
        routers_per_region: env_usize("WAN_ROUTERS", 6),
        edge_routers: env_usize("WAN_EDGES", 14),
        peers_per_edge: env_usize("WAN_PEERS", 2),
        ..WanParams::default()
    }
}

fn bench_obs_overhead(c: &mut Criterion) {
    let s = wan::build(&large_params());
    let topo = &s.network.topology;
    let (name, q) = s.peering_predicates().into_iter().next().unwrap();
    let (props, inv) = s.peering_property_inputs(&q);
    let label = format!("{name}/{}r", s.params.num_routers());
    let run = || {
        let v = Verifier::new(topo, &s.network.policy).with_ghost(s.from_peer_ghost());
        assert!(v.verify_safety_multi(&props, &inv).all_passed());
    };

    // The headline comparison for the criterion record: the same
    // workload with the sink absent vs installed.
    let mut g = c.benchmark_group("obs-overhead");
    g.sample_size(10);
    assert!(obs::sink().is_none(), "bench must start with no sink");
    g.bench_function(format!("disabled/{label}"), |b| b.iter(run));
    let reg = obs::install();
    g.bench_function(format!("enabled/{label}"), |b| b.iter(run));
    g.finish();

    // Exact instrumentation-call count for one run of the workload.
    let calls_before = reg.calls();
    run();
    let calls = reg.calls() - calls_before;
    obs::uninstall();
    assert!(calls > 0, "the instrumented pipeline must count its calls");

    // Disabled per-call cost, then the analytic gate.
    let reps = env_usize("OBS_REPS", 5);
    let walls: Vec<Duration> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed()
        })
        .collect();
    let wall = median(walls);

    const LOOP: u64 = 10_000_000;
    let t = Instant::now();
    for i in 0..LOOP {
        obs::add("obs.bench.disabled", std::hint::black_box(i));
    }
    let per_call = t.elapsed().as_secs_f64() / LOOP as f64;

    let overhead_pct = calls as f64 * per_call / wall.as_secs_f64() * 100.0;
    println!(
        "obs disabled overhead {label}: {calls} instrumentation calls x {:.2}ns \
         = {overhead_pct:.4}% of {wall:?} (ceiling 3%)",
        per_call * 1e9,
    );
    record_gate_max("obs-disabled-overhead-50r", overhead_pct, 3.0);

    // Idle-listener gate: a bound-but-unscraped telemetry endpoint
    // (`watch --listen` with nobody polling) must not move the verify
    // wall — its accept loop blocks in the kernel. Both arms run with
    // the sink installed, so this isolates the *listener's* marginal
    // cost; reps interleave listen/no-listen and compare medians to
    // ride out scheduler drift, and negative noise clamps to zero.
    let reg = obs::install();
    run(); // warm-up, outside both arms
    let reps = env_usize("OBS_LISTEN_REPS", 5);
    let mut with_listener: Vec<Duration> = Vec::with_capacity(reps);
    let mut without: Vec<Duration> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let status = obs::http::Status::new(None);
        let server =
            obs::http::serve("127.0.0.1:0", reg.clone(), status).expect("bind 127.0.0.1:0");
        let t = Instant::now();
        run();
        with_listener.push(t.elapsed());
        drop(server);
        let t = Instant::now();
        run();
        without.push(t.elapsed());
    }
    obs::uninstall();
    let (m_listen, m_base) = (median(with_listener), median(without));
    let idle_pct =
        ((m_listen.as_secs_f64() - m_base.as_secs_f64()) / m_base.as_secs_f64() * 100.0).max(0.0);
    println!(
        "obs idle listener {label}: {m_listen:?} with listener vs {m_base:?} without \
         = {idle_pct:.4}% (ceiling 1%)"
    );
    record_gate_max("obs-idle-listener-50r", idle_pct, 1.0);
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
