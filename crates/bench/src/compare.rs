//! `bench::compare` — the read side of the bench trajectory: diff two
//! `BENCH_*.json` files (arrays of gate lines as assembled by CI with
//! `jq -s`) into per-gate regressions and improvements.
//!
//! Two gate shapes exist, matching [`crate::record_gate`] and
//! [`crate::record_gate_max`]:
//!
//! * floor gates `{"gate","ratio","floor","pass"}` — bigger is better;
//! * ceiling gates `{"gate","value","ceiling","pass"}` — smaller is
//!   better.
//!
//! A **regression** is a pass that flipped to a fail, or a metric that
//! moved in the bad direction by more than [`TOLERANCE`]; the symmetric
//! move is an **improvement**; anything inside the band is *unchanged*.

use serde_json::Value;
use std::collections::BTreeMap;

/// Relative movement below which two runs count as noise, not change.
pub const TOLERANCE: f64 = 0.02;

/// One parsed gate line.
#[derive(Clone, Debug, PartialEq)]
pub struct GateRecord {
    /// Gate name (unique per file; see `unique_gate_name`).
    pub gate: String,
    /// The measured metric (`ratio` for floor gates, `value` for
    /// ceiling gates).
    pub metric: f64,
    /// The asserted bound (`floor` or `ceiling`).
    pub bound: f64,
    /// Whether bigger metric values are better (floor gates).
    pub bigger_is_better: bool,
    /// The recorded verdict.
    pub pass: bool,
}

/// What one gate did between run A (baseline) and run B (candidate).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum GateDelta {
    /// Verdict flipped pass -> fail, or the metric moved the bad way
    /// beyond tolerance.
    Regressed,
    /// Verdict flipped fail -> pass, or the metric moved the good way
    /// beyond tolerance.
    Improved,
    /// Within the noise band, same verdict.
    Unchanged,
    /// Present only in the candidate file.
    Added,
    /// Present only in the baseline file.
    Removed,
}

/// One row of the diff.
#[derive(Clone, Debug)]
pub struct GateDiff {
    /// Gate name.
    pub gate: String,
    /// The verdict for this gate's movement.
    pub delta: GateDelta,
    /// Baseline record, when present.
    pub a: Option<GateRecord>,
    /// Candidate record, when present.
    pub b: Option<GateRecord>,
}

/// The full diff of two gate files.
pub struct CompareReport {
    /// One row per gate name in either file, name order.
    pub diffs: Vec<GateDiff>,
}

/// Parse a `BENCH_*.json` text: a JSON array of gate objects (a single
/// object is accepted too). Non-gate entries (no `"gate"` key) are
/// skipped — bench files may interleave timing records.
pub fn parse_gates(text: &str) -> Result<Vec<GateRecord>, String> {
    let v: Value = serde_json::from_str(text).map_err(|e| format!("bad JSON: {e}"))?;
    let items: Vec<&Value> = match &v {
        Value::Array(items) => items.iter().collect(),
        other => vec![other],
    };
    let mut gates = Vec::new();
    for item in items {
        let Some(name) = item.get("gate").and_then(Value::as_str) else {
            continue;
        };
        let num = |key: &str| item.get(key).and_then(Value::as_f64);
        let rec = if let (Some(metric), Some(bound)) = (num("ratio"), num("floor")) {
            GateRecord {
                gate: name.to_string(),
                metric,
                bound,
                bigger_is_better: true,
                pass: item.get("pass").and_then(Value::as_bool).unwrap_or(false),
            }
        } else if let (Some(metric), Some(bound)) = (num("value"), num("ceiling")) {
            GateRecord {
                gate: name.to_string(),
                metric,
                bound,
                bigger_is_better: false,
                pass: item.get("pass").and_then(Value::as_bool).unwrap_or(false),
            }
        } else {
            return Err(format!(
                "gate {name:?} has neither ratio/floor nor value/ceiling fields"
            ));
        };
        gates.push(rec);
    }
    Ok(gates)
}

/// How far `b` moved from `a`, signed so positive is *better* (accounts
/// for gate direction). Relative to `a` when nonzero.
fn movement(a: &GateRecord, b: &GateRecord) -> f64 {
    let base = if a.metric.abs() > f64::EPSILON {
        a.metric.abs()
    } else {
        1.0
    };
    let raw = (b.metric - a.metric) / base;
    if a.bigger_is_better {
        raw
    } else {
        -raw
    }
}

/// Diff baseline `a` against candidate `b` over the union of gate
/// names.
pub fn compare(a: &[GateRecord], b: &[GateRecord]) -> CompareReport {
    let index = |gs: &[GateRecord]| -> BTreeMap<String, GateRecord> {
        gs.iter().map(|g| (g.gate.clone(), g.clone())).collect()
    };
    let (ia, ib) = (index(a), index(b));
    let mut names: Vec<&String> = ia.keys().chain(ib.keys()).collect();
    names.sort();
    names.dedup();
    let diffs = names
        .into_iter()
        .map(|name| {
            let (ga, gb) = (ia.get(name), ib.get(name));
            let delta = match (ga, gb) {
                (None, Some(_)) => GateDelta::Added,
                (Some(_), None) => GateDelta::Removed,
                (Some(ga), Some(gb)) => {
                    if ga.pass && !gb.pass {
                        GateDelta::Regressed
                    } else if !ga.pass && gb.pass {
                        GateDelta::Improved
                    } else {
                        let m = movement(ga, gb);
                        if m < -TOLERANCE {
                            GateDelta::Regressed
                        } else if m > TOLERANCE {
                            GateDelta::Improved
                        } else {
                            GateDelta::Unchanged
                        }
                    }
                }
                (None, None) => unreachable!("name came from one of the indexes"),
            };
            GateDiff {
                gate: name.clone(),
                delta,
                a: ga.cloned(),
                b: gb.cloned(),
            }
        })
        .collect();
    CompareReport { diffs }
}

impl CompareReport {
    /// Whether any gate regressed (the exit-code signal).
    pub fn any_regression(&self) -> bool {
        self.diffs.iter().any(|d| d.delta == GateDelta::Regressed)
    }

    /// Human rendering, one line per gate plus a summary tail.
    pub fn render(&self, a_name: &str, b_name: &str) -> String {
        let mut out = format!("bench-report: {a_name} (baseline) vs {b_name} (candidate)\n");
        let fmt = |g: &GateRecord| {
            format!(
                "{:.4} ({} {:.4}, {})",
                g.metric,
                if g.bigger_is_better {
                    "floor"
                } else {
                    "ceiling"
                },
                g.bound,
                if g.pass { "pass" } else { "FAIL" }
            )
        };
        let mut counts = BTreeMap::new();
        for d in &self.diffs {
            *counts.entry(d.delta).or_insert(0usize) += 1;
            let label = match d.delta {
                GateDelta::Regressed => "REGRESSED",
                GateDelta::Improved => "improved",
                GateDelta::Unchanged => "unchanged",
                GateDelta::Added => "added",
                GateDelta::Removed => "removed",
            };
            let detail = match (&d.a, &d.b) {
                (Some(ga), Some(gb)) => {
                    format!(
                        "{} -> {} ({:+.1}%)",
                        fmt(ga),
                        fmt(gb),
                        movement(ga, gb) * 100.0
                    )
                }
                (None, Some(gb)) => fmt(gb),
                (Some(ga), None) => fmt(ga),
                (None, None) => String::new(),
            };
            out.push_str(&format!("  {label:<9} {:<32} {detail}\n", d.gate));
        }
        let count = |d: GateDelta| counts.get(&d).copied().unwrap_or(0);
        out.push_str(&format!(
            "bench-report: {} gates: {} regressed, {} improved, {} unchanged, {} added, {} removed\n",
            self.diffs.len(),
            count(GateDelta::Regressed),
            count(GateDelta::Improved),
            count(GateDelta::Unchanged),
            count(GateDelta::Added),
            count(GateDelta::Removed),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn floor(gate: &str, ratio: f64, floor: f64) -> GateRecord {
        GateRecord {
            gate: gate.to_string(),
            metric: ratio,
            bound: floor,
            bigger_is_better: true,
            pass: ratio >= floor,
        }
    }

    fn ceiling(gate: &str, value: f64, ceiling: f64) -> GateRecord {
        GateRecord {
            gate: gate.to_string(),
            metric: value,
            bound: ceiling,
            bigger_is_better: false,
            pass: value <= ceiling,
        }
    }

    #[test]
    fn parses_both_gate_shapes_and_skips_non_gates() {
        let text = r#"[
            {"gate":"incremental-50r","ratio":3.21,"floor":2.0,"pass":true},
            {"gate":"obs-disabled-overhead-50r","value":0.8,"ceiling":3.0,"pass":true},
            {"bench":"something-else","seconds":1.0}
        ]"#;
        let gates = parse_gates(text).unwrap();
        assert_eq!(gates.len(), 2);
        assert!(gates[0].bigger_is_better && gates[0].pass);
        assert!(!gates[1].bigger_is_better && gates[1].pass);
        assert!(parse_gates(r#"[{"gate":"x"}]"#).is_err());
        assert!(parse_gates("not json").is_err());
    }

    #[test]
    fn direction_aware_regressions_and_improvements() {
        let a = vec![
            floor("speedup", 3.0, 2.0),
            ceiling("overhead", 1.0, 3.0),
            floor("steady", 2.5, 2.0),
        ];
        let b = vec![
            floor("speedup", 2.1, 2.0),    // -30%: regressed (still passing)
            ceiling("overhead", 0.5, 3.0), // halved: improved (smaller is better)
            floor("steady", 2.51, 2.0),    // +0.4%: inside tolerance
        ];
        let report = compare(&a, &b);
        let by_name: BTreeMap<&str, GateDelta> = report
            .diffs
            .iter()
            .map(|d| (d.gate.as_str(), d.delta))
            .collect();
        assert_eq!(by_name["speedup"], GateDelta::Regressed);
        assert_eq!(by_name["overhead"], GateDelta::Improved);
        assert_eq!(by_name["steady"], GateDelta::Unchanged);
        assert!(report.any_regression());
    }

    #[test]
    fn verdict_flips_dominate_and_union_covers_added_removed() {
        let a = vec![floor("flips", 1.9, 2.0), floor("gone", 2.5, 2.0)];
        let b = vec![floor("flips", 2.0, 2.0), floor("new", 2.5, 2.0)];
        let report = compare(&a, &b);
        let by_name: BTreeMap<&str, GateDelta> = report
            .diffs
            .iter()
            .map(|d| (d.gate.as_str(), d.delta))
            .collect();
        // fail -> pass is an improvement even with a small move.
        assert_eq!(by_name["flips"], GateDelta::Improved);
        assert_eq!(by_name["gone"], GateDelta::Removed);
        assert_eq!(by_name["new"], GateDelta::Added);
        assert!(!report.any_regression());
        let text = report.render("A.json", "B.json");
        assert!(text.contains("3 gates"));
        assert!(text.contains("1 improved"));
    }
}
