//! Benchmark harnesses regenerating every table and figure of the paper.
//!
//! Binaries (see `src/bin/`):
//!
//! * `table2` — the Table-2 safety walkthrough (no-transit on Figure 1),
//!   including the seeded-bug counterexample of §2.1.
//! * `table3` — the Table-3 liveness walkthrough (customer reachability).
//! * `table4` — the §6.1 WAN use cases: 4a bogon filtering, 4b IP-reuse
//!   safety, 4c IP-reuse liveness.
//! * `figure3` — the §6.2 scaling comparison against Minesweeper
//!   (panels a-d: encoding sizes and solve/total times vs network size).
//! * `wan_scale` — the §6.1 scaling claims: the 11 peering properties
//!   over a WAN, sequential and parallel, with per-property timings.
//!
//! Criterion benches (see `benches/`):
//!
//! * `solver` — SAT/bit-blasting microbenchmarks.
//! * `encoding` — route-map encoding cost vs map size and universe width
//!   (ablations D1/D4).
//! * `checks` — end-to-end check throughput: sequential vs parallel (D3)
//!   and incremental vs full re-verification.
//!
//! All binaries accept environment variables to scale up to paper-size
//! runs (see each binary's `--help`-style header comment).

pub mod compare;

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Read a usize parameter from the environment with a default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Record an in-bench acceptance gate's outcome: print it, append it to
/// the `BENCH_JSON` file (the CI `bench-gate` job's `BENCH_ci.json`
/// artifact), and **panic when the floor is missed** so `cargo bench`
/// — and with it the CI job — fails. Call this with the measured
/// speedup ratio and the asserted floor.
pub fn record_gate(name: &str, ratio: f64, floor: f64) {
    let name = unique_gate_name(name);
    let pass = ratio >= floor;
    println!(
        "gate {name}: {ratio:.2}x (floor {floor:.2}x) -> {}",
        if pass { "pass" } else { "FAIL" }
    );
    criterion::append_json_line(&format!(
        "{{\"gate\":\"{name}\",\"ratio\":{ratio:.4},\"floor\":{floor:.2},\"pass\":{pass}}}"
    ));
    assert!(
        pass,
        "bench gate {name}: {ratio:.2}x is below the {floor:.2}x floor"
    );
}

/// Record a ceiling-style gate: pass when `value <= ceiling` (overhead
/// gates, where smaller is better). Same print/append/panic contract as
/// [`record_gate`], with `value`/`ceiling` fields in the JSON record.
pub fn record_gate_max(name: &str, value: f64, ceiling: f64) {
    let name = unique_gate_name(name);
    let pass = value <= ceiling;
    println!(
        "gate {name}: {value:.4} (ceiling {ceiling:.4}) -> {}",
        if pass { "pass" } else { "FAIL" }
    );
    criterion::append_json_line(&format!(
        "{{\"gate\":\"{name}\",\"value\":{value:.4},\"ceiling\":{ceiling:.4},\"pass\":{pass}}}"
    ));
    assert!(
        pass,
        "bench gate {name}: {value:.4} exceeds the {ceiling:.4} ceiling"
    );
}

/// Disambiguate gate names within one process. `BENCH_JSON` is
/// append-only, so two gates recorded under one name used to produce
/// two identical-looking lines in the assembled artifact — ambiguous
/// for any trend tooling keyed on the gate name. Repeats now get a
/// `#2`, `#3`, ... suffix and a warning on stderr.
fn unique_gate_name(name: &str) -> String {
    static SEEN: OnceLock<Mutex<BTreeMap<String, usize>>> = OnceLock::new();
    let mut seen = SEEN.get_or_init(Mutex::default).lock().unwrap();
    let n = seen.entry(name.to_string()).or_insert(0);
    *n += 1;
    if *n == 1 {
        name.to_string()
    } else {
        let unique = format!("{name}#{n}");
        eprintln!("warning: duplicate bench gate name {name:?}; recording as {unique:?}");
        unique
    }
}

/// Median of a sample (used by the in-bench acceptance gates; a median
/// rides out one-off scheduler hiccups better than a mean on CI boxes).
pub fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

/// Format a duration in seconds with millisecond precision.
pub fn secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// Print a horizontal rule of the given width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// A minimal aligned-table printer for benchmark output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.headers));
        println!(
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_usize_default() {
        assert_eq!(env_usize("DEFINITELY_NOT_SET_XYZ", 7), 7);
    }

    #[test]
    fn duplicate_gate_names_get_suffixes() {
        assert_eq!(unique_gate_name("dup-gate-test"), "dup-gate-test");
        assert_eq!(unique_gate_name("dup-gate-test"), "dup-gate-test#2");
        assert_eq!(unique_gate_name("dup-gate-test"), "dup-gate-test#3");
        // Independent names stay untouched.
        assert_eq!(unique_gate_name("other-gate-test"), "other-gate-test");
    }

    #[test]
    fn ceiling_gate_passes_under_ceiling() {
        record_gate_max("ceiling-gate-pass-test", 1.0, 3.0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn ceiling_gate_fails_over_ceiling() {
        record_gate_max("ceiling-gate-fail-test", 5.0, 3.0);
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["n", "time"]);
        t.row(vec!["10".into(), "1.5s".into()]);
        t.print(); // smoke test
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
