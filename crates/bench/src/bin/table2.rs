//! Table 2: the no-transit safety walkthrough on the Figure-1 network.
//!
//! Prints the end-to-end property, the user-supplied network invariants,
//! every generated local check with its verdict, and then seeds the §2.1
//! bug (R1's import forgets to tag some routes) to show the localized
//! counterexample.

use bench::Table;
use lightyear::engine::Verifier;
use netgen::figure1;
use netgen::mutate::drop_community_sets;

fn main() {
    println!("== Table 2: modular verification of the no-transit property ==\n");
    let s = figure1::build();
    let topo = &s.network.topology;

    println!("End-to-end property: {}", s.no_transit.display(topo));
    println!("\nNetwork invariants:");
    println!(
        "  default (all other locations): {}",
        s.no_transit_inv.default_pred()
    );
    println!(
        "  R2 -> ISP2: {}",
        lightyear::pred::RoutePred::ghost("FromISP1").not()
    );
    println!("  edges from external neighbors: true (unconstrained)\n");

    let v = Verifier::new(topo, &s.network.policy).with_ghost(s.ghost.clone());
    let report = v.verify_safety(&s.no_transit, &s.no_transit_inv);

    let mut t = Table::new(&["#", "kind", "location", "route-map", "verdict"]);
    for o in &report.outcomes {
        t.row(vec![
            o.check.id.to_string(),
            o.check.kind.to_string(),
            o.check.location.display(topo),
            o.check.map_name.clone().unwrap_or_else(|| "-".into()),
            if o.result.passed() {
                "pass".into()
            } else {
                "FAIL".into()
            },
        ]);
    }
    t.print();
    println!(
        "\n{} checks, all passed: {} (total {:?}, solving {:?})",
        report.num_checks(),
        report.all_passed(),
        report.total_time,
        report.solve_time()
    );
    assert!(report.all_passed(), "Table 2 network must verify");

    println!("\n== Seeded bug: R1's import forgets the 100:1 tag (§2.1 Output) ==\n");
    let mut configs = figure1::configs();
    drop_community_sets(&mut configs, "R1", "FROM-ISP1").expect("mutation applies");
    let broken = figure1::build_from_configs(configs);
    let v = Verifier::new(&broken.network.topology, &broken.network.policy)
        .with_ghost(broken.ghost.clone());
    let report = v.verify_safety(&broken.no_transit, &broken.no_transit_inv);
    assert!(!report.all_passed(), "seeded bug must be found");
    print!("{}", report.format_failures(&broken.network.topology));
    println!(
        "\nThe failed check pinpoints the erroneous route-map directly: \
         a concrete route accepted by R1 without the 100:1 community."
    );
}
