//! Table 4: the three §6.1 WAN use cases on the synthetic cloud WAN.
//!
//! * `4a` — Internet peering policies: 11 properties of the form
//!   `FromPeer(r) => Q(r)` verified at every router.
//! * `4b` — IP-reuse safety: reused prefixes never leave their region.
//! * `4c` — IP-reuse liveness: reused prefixes reach the region gateway.
//!
//! Environment: `WAN_REGIONS` (default 4), `WAN_RPR` routers/region (3),
//! `WAN_EDGES` edge routers (6), `WAN_PEERS` peers/edge (4).
//! Pass a case name (`bogons`, `reuse-safety`, `reuse-liveness`) as the
//! first argument to run one case; default runs all three.

use bench::{env_usize, secs, Table};
use lightyear::engine::Verifier;
use netgen::wan::{self, WanParams};

fn params() -> WanParams {
    WanParams {
        regions: env_usize("WAN_REGIONS", 4),
        routers_per_region: env_usize("WAN_RPR", 3),
        edge_routers: env_usize("WAN_EDGES", 6),
        peers_per_edge: env_usize("WAN_PEERS", 4),
        ..WanParams::default()
    }
}

fn main() {
    let case = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let p = params();
    println!(
        "Synthetic WAN: {} regions x {} routers + {} edge routers x {} peers",
        p.regions, p.routers_per_region, p.edge_routers, p.peers_per_edge
    );
    let s = wan::build(&p);
    let t = &s.network.topology;
    println!(
        "  {} routers, {} external neighbors, {} directed edges\n",
        t.router_ids().count(),
        t.external_ids().count(),
        t.num_edges()
    );
    println!(
        "Region metadata file:\n{}\n",
        serde_json::to_string_pretty(&s.metadata).unwrap()
    );

    match case.as_str() {
        "bogons" => table4a(&s),
        "reuse-safety" => table4b(&s),
        "reuse-liveness" => table4c(&s),
        _ => {
            table4a(&s);
            table4b(&s);
            table4c(&s);
        }
    }
}

/// Table 4a: peering-policy safety properties.
fn table4a(s: &wan::Scenario) {
    println!("== Table 4a: Internet peering policies (FromPeer => Q) ==\n");
    let v = Verifier::new(&s.network.topology, &s.network.policy).with_ghost(s.from_peer_ghost());
    let mut table = Table::new(&["property", "checks", "verdict", "total", "solving"]);
    for (name, q) in s.peering_predicates() {
        let (props, inv) = s.peering_property_inputs(&q);
        let report = v.verify_safety_multi(&props, &inv);
        table.row(vec![
            name,
            report.num_checks().to_string(),
            if report.all_passed() {
                "verified".into()
            } else {
                "VIOLATED".into()
            },
            secs(report.total_time),
            secs(report.solve_time()),
        ]);
        if !report.all_passed() {
            print!("{}", report.format_failures(&s.network.topology));
        }
    }
    table.print();
    println!();
}

/// Table 4b: IP-reuse safety per region.
fn table4b(s: &wan::Scenario) {
    println!("== Table 4b: IP-reuse safety (reused prefixes stay in-region) ==\n");
    let mut table = Table::new(&[
        "region",
        "community",
        "properties",
        "checks",
        "verdict",
        "total",
    ]);
    for k in 0..s.params.regions {
        let v = Verifier::new(&s.network.topology, &s.network.policy)
            .with_ghost(s.from_region_ghost(k));
        let (props, inv) = s.reuse_safety_inputs(k);
        let report = v.verify_safety_multi(&props, &inv);
        table.row(vec![
            format!("region-{k}"),
            wan::region_comm(k).to_string(),
            props.len().to_string(),
            report.num_checks().to_string(),
            if report.all_passed() {
                "verified".into()
            } else {
                "VIOLATED".into()
            },
            secs(report.total_time),
        ]);
        if !report.all_passed() {
            print!("{}", report.format_failures(&s.network.topology));
        }
    }
    table.print();
    println!();
}

/// Table 4c: IP-reuse liveness per region.
fn table4c(s: &wan::Scenario) {
    println!("== Table 4c: IP-reuse liveness (reused prefixes reach the gateway) ==\n");
    let mut table = Table::new(&["region", "path-len", "checks", "verdict", "total"]);
    for k in 0..s.params.regions {
        let v = Verifier::new(&s.network.topology, &s.network.policy)
            .with_ghost(s.from_region_ghost(k));
        let Some(spec) = s.reuse_liveness_spec(k) else {
            println!("region-{k}: skipped (single-router region)");
            continue;
        };
        let report = v.verify_liveness(&spec).expect("valid spec");
        table.row(vec![
            format!("region-{k}"),
            spec.path.len().to_string(),
            report.num_checks().to_string(),
            if report.all_passed() {
                "verified".into()
            } else {
                "VIOLATED".into()
            },
            secs(report.total_time),
        ]);
        if !report.all_passed() {
            print!("{}", report.format_failures(&s.network.topology));
        }
    }
    table.print();
    println!();
}
