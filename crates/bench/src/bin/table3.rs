//! Table 3: the customer-reachability liveness walkthrough on Figure 1.
//!
//! Prints the liveness property, the witness path with its per-location
//! constraints, the generated propagation and no-interference checks with
//! verdicts, and then removes R3's community strip to reproduce the §2.2
//! subtlety ("It is important that routes from Customer do not have the
//! community 100:1, or else they will be dropped at R2").

use bench::Table;
use lightyear::check::CheckKind;
use lightyear::engine::Verifier;
use netgen::figure1;

fn main() {
    println!("== Table 3: modular verification of the liveness property ==\n");
    let s = figure1::build();
    let topo = &s.network.topology;
    let spec = &s.customer_liveness;

    println!(
        "Liveness property: a route satisfying [{}] eventually reaches {}",
        spec.pred,
        spec.location.display(topo)
    );
    println!("\nWitness path and constraints:");
    for (loc, c) in spec.path.iter().zip(&spec.constraints) {
        println!("  {:<20} {}", loc.display(topo), c);
    }
    println!();

    let v = Verifier::new(topo, &s.network.policy).with_ghost(s.ghost.clone());
    let report = v.verify_liveness(spec).expect("valid spec");

    let mut t = Table::new(&["#", "kind", "location", "route-map", "verdict"]);
    for o in &report.outcomes {
        t.row(vec![
            o.check.id.to_string(),
            o.check.kind.to_string(),
            o.check.location.display(topo),
            o.check.map_name.clone().unwrap_or_else(|| "-".into()),
            if o.result.passed() {
                "pass".into()
            } else {
                "FAIL".into()
            },
        ]);
    }
    t.print();
    let props = report
        .outcomes
        .iter()
        .filter(|o| o.check.kind == CheckKind::Propagation)
        .count();
    println!(
        "\n{} checks ({} propagation), all passed: {} (total {:?})",
        report.num_checks(),
        props,
        report.all_passed(),
        report.total_time
    );
    assert!(report.all_passed(), "Table 3 network must verify");

    println!("\n== Seeded bug: R3 stops stripping communities (§2.2) ==\n");
    let mut configs = figure1::configs();
    // Drop the community-clearing set from R3's FROM-CUST map.
    netgen::mutate::drop_community_sets(&mut configs, "R3", "FROM-CUST").expect("mutation applies");
    let broken = figure1::build_from_configs(configs);
    let v = Verifier::new(&broken.network.topology, &broken.network.policy)
        .with_ghost(broken.ghost.clone());
    let report = v
        .verify_liveness(&broken.customer_liveness)
        .expect("valid spec");
    assert!(!report.all_passed(), "seeded bug must be found");
    print!("{}", report.format_failures(&broken.network.topology));
    println!(
        "\nWithout the strip, a customer route may arrive carrying 100:1 and \
         would be dropped by R2's export to ISP2 — the propagation check \
         at Customer -> R3 fails with a concrete witness."
    );
}
