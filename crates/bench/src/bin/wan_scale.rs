//! The §6.1 scaling claims: run the peering-property suite over a large
//! synthetic WAN, sequentially and in parallel, with per-property timings
//! — the analogue of "the maximum time for any single property was 15
//! minutes; four properties across all edge routers took 16 minutes".
//!
//! Environment: `WAN_REGIONS` (default 8), `WAN_RPR` (default 4),
//! `WAN_EDGES` (default 16), `WAN_PEERS` (default 12), `WAN_PROPS`
//! (number of peering properties to run, default all 11).
//!
//! For a paper-scale run (hundreds of routers, tens of thousands of
//! peerings): `WAN_REGIONS=12 WAN_RPR=10 WAN_EDGES=120 WAN_PEERS=80`.

use bench::{env_usize, secs, Table};
use lightyear::engine::{RunMode, Verifier};
use netgen::wan::{self, WanParams};
use std::time::Instant;

fn main() {
    let p = WanParams {
        regions: env_usize("WAN_REGIONS", 8),
        routers_per_region: env_usize("WAN_RPR", 4),
        edge_routers: env_usize("WAN_EDGES", 16),
        peers_per_edge: env_usize("WAN_PEERS", 12),
        ..WanParams::default()
    };
    eprintln!("building WAN {p:?} ...");
    let t0 = Instant::now();
    let s = wan::build(&p);
    let build_time = t0.elapsed();
    let topo = &s.network.topology;
    println!(
        "WAN: {} routers, {} externals, {} directed edges (built+parsed in {})",
        topo.router_ids().count(),
        topo.external_ids().count(),
        topo.num_edges(),
        secs(build_time)
    );

    let nprops = env_usize("WAN_PROPS", usize::MAX);
    let preds: Vec<_> = s.peering_predicates().into_iter().take(nprops).collect();

    let mut table = Table::new(&[
        "property",
        "checks",
        "seq total",
        "seq solving",
        "par total",
        "speedup",
    ]);
    let mut seq_sum = 0.0;
    let mut par_sum = 0.0;
    for (name, q) in &preds {
        let (props, inv) = s.peering_property_inputs(q);

        let v = Verifier::new(topo, &s.network.policy)
            .with_ghost(s.from_peer_ghost())
            .with_mode(RunMode::Sequential);
        let seq = v.verify_safety_multi(&props, &inv);
        assert!(seq.all_passed(), "{name}: {}", seq.format_failures(topo));

        let vp = Verifier::new(topo, &s.network.policy)
            .with_ghost(s.from_peer_ghost())
            .with_mode(RunMode::Parallel);
        let par = vp.verify_safety_multi(&props, &inv);
        assert!(par.all_passed());

        seq_sum += seq.total_time.as_secs_f64();
        par_sum += par.total_time.as_secs_f64();
        table.row(vec![
            name.clone(),
            seq.num_checks().to_string(),
            secs(seq.total_time),
            secs(seq.solve_time()),
            secs(par.total_time),
            format!(
                "{:.1}x",
                seq.total_time.as_secs_f64() / par.total_time.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    table.print();
    println!(
        "\n{} properties: sequential {:.3}s total, parallel {:.3}s total",
        preds.len(),
        seq_sum,
        par_sum
    );

    // Incremental re-verification: change one edge router, re-check.
    let (_, q) = &preds[0];
    let (props, inv) = s.peering_property_inputs(q);
    let v = Verifier::new(topo, &s.network.policy).with_ghost(s.from_peer_ghost());
    let full = v.verify_safety_multi(&props, &inv);
    let changed = topo.node_by_name("EDGE0").expect("edge router exists");
    let single = props
        .iter()
        .find(|pr| pr.location == lightyear::invariants::Location::Node(changed))
        .cloned()
        .unwrap_or_else(|| props[0].clone());
    let inc = v.verify_safety_incremental(&single, &inv, &[changed]);
    println!(
        "\nIncremental re-verification after changing EDGE0: {} checks in {} \
         (vs {} checks in {} for the full run)",
        inc.num_checks(),
        secs(inc.total_time),
        full.num_checks(),
        secs(full.total_time)
    );
    assert!(inc.all_passed());
}
