//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `iter`,
//! [`black_box`], `criterion_group!` / `criterion_main!` — with a
//! simple mean-of-samples timer instead of criterion's statistics.
//! Output is one line per benchmark: `name/param ... mean <time> (N samples)`.
//!
//! When the `BENCH_JSON` environment variable names a file, every
//! benchmark additionally appends one machine-readable JSON line
//! (`{"bench": ..., "mean_ns": ..., "samples": ...}`) to it — the CI
//! `bench-gate` job collects these into its `BENCH_ci.json` artifact.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier, printed as `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identify by function and parameter.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Identify by parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The timing loop handle passed to bench closures.
pub struct Bencher {
    samples: usize,
    /// Mean sample time, recorded by `iter`.
    last_mean: Option<Duration>,
}

impl Bencher {
    /// Time `f`, recording the mean over the configured samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup.
        black_box(f());
        let t0 = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.last_mean = Some(t0.elapsed() / self.samples as u32);
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Override the default sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Run one benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(&id.to_string(), sample_size, f);
        self
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Run one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// End the group (no-op; accepted for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        last_mean: None,
    };
    f(&mut b);
    match b.last_mean {
        Some(mean) => {
            println!("{label:<40} mean {mean:>12.3?} ({samples} samples)");
            append_json_line(&format!(
                "{{\"bench\":\"{}\",\"mean_ns\":{},\"samples\":{samples}}}",
                escape(label),
                mean.as_nanos(),
            ));
        }
        None => println!("{label:<40} (no iter() call)"),
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Append one JSON line to the file named by `BENCH_JSON` (no-op when
/// the variable is unset or the file cannot be opened — benchmarks must
/// never fail because of telemetry).
pub fn append_json_line(line: &str) {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    use std::io::Write;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(f, "{line}");
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running the given groups. Ignores harness arguments
/// (`--bench`, `--test`, filters) the way cargo passes them.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` invokes bench targets with `--test`; matching
            // real criterion, that mode runs nothing.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}
