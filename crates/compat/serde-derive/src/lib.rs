//! Offline stand-in for `serde_derive`.
//!
//! The real serde data model (Serializer/Deserializer visitors) is far
//! larger than this workspace needs: the only serde consumer here is the
//! local `serde_json` shim. The local `serde` crate therefore defines
//! value-based traits (`Serialize::to_value` / `Deserialize::from_value`)
//! and this proc-macro derives them for the container shapes the
//! workspace actually uses:
//!
//! * structs with named fields — serialized as JSON objects; field
//!   attributes `#[serde(skip)]`, `#[serde(default)]` and
//!   `#[serde(default = "path")]` are honored;
//! * newtype and tuple structs — serialized as the inner value / an array;
//! * enums — externally tagged exactly like real serde: unit variants as
//!   `"Variant"`, newtype variants as `{"Variant": value}`, tuple variants
//!   as `{"Variant": [..]}`, struct variants as `{"Variant": {..}}`;
//! * the container attributes `#[serde(try_from = "T", into = "T")]`.
//!
//! Parsing is done directly over the `proc_macro::TokenStream` (no `syn`
//! in the tree); code is generated as source text. Unsupported shapes
//! (generic containers, other serde attributes) produce a compile error
//! naming the construct, so drift is caught loudly rather than silently.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let src = match mode {
        Mode::Serialize => gen_serialize(&item),
        Mode::Deserialize => gen_deserialize(&item),
    };
    src.parse()
        .unwrap_or_else(|e| compile_error(&format!("serde_derive generated invalid code: {e}")))
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

// ---------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------

struct Item {
    name: String,
    /// `try_from = "T"` container attribute.
    try_from: Option<String>,
    /// `into = "T"` container attribute.
    into: Option<String>,
    kind: Kind,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

enum Fields {
    Unit,
    /// Tuple fields (only arity matters; attrs unsupported on these).
    Tuple(usize),
    Named(Vec<Field>),
}

struct Field {
    name: String,
    skip: bool,
    /// `None`: required; `Some(None)`: `#[serde(default)]`;
    /// `Some(Some(path))`: `#[serde(default = "path")]`.
    default: Option<Option<String>>,
}

struct Variant {
    name: String,
    fields: Fields,
}

// ---------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------

/// Serde attribute contents gathered from `#[serde(...)]` groups.
#[derive(Default)]
struct SerdeAttrs {
    skip: bool,
    default: Option<Option<String>>,
    try_from: Option<String>,
    into: Option<String>,
}

fn parse_serde_attr(body: &str, out: &mut SerdeAttrs) -> Result<(), String> {
    // body is the text inside `serde(...)`, e.g. `default = "RoutePred::tru"`.
    for part in split_top_level(body) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if part == "skip" || part == "skip_serializing" || part == "skip_deserializing" {
            out.skip = true;
        } else if part == "default" {
            out.default = Some(None);
        } else if let Some(rest) = part.strip_prefix("default") {
            let path = parse_eq_string(rest)
                .ok_or_else(|| format!("unsupported serde attribute `{part}`"))?;
            out.default = Some(Some(path));
        } else if let Some(rest) = part.strip_prefix("try_from") {
            out.try_from = Some(
                parse_eq_string(rest)
                    .ok_or_else(|| format!("unsupported serde attribute `{part}`"))?,
            );
        } else if let Some(rest) = part.strip_prefix("into") {
            out.into = Some(
                parse_eq_string(rest)
                    .ok_or_else(|| format!("unsupported serde attribute `{part}`"))?,
            );
        } else {
            return Err(format!("unsupported serde attribute `{part}`"));
        }
    }
    Ok(())
}

/// Split on commas that are not inside quotes.
fn split_top_level(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    out.push(cur);
    out
}

/// Parse `= "text"` (with arbitrary spacing) and return `text`.
fn parse_eq_string(s: &str) -> Option<String> {
    let s = s.trim();
    let s = s.strip_prefix('=')?.trim();
    let s = s.strip_prefix('"')?;
    let s = s.strip_suffix('"')?;
    Some(s.to_string())
}

/// Collect leading attributes from a token cursor, returning accumulated
/// serde attrs. Non-serde attributes (doc comments etc.) are skipped.
fn take_attrs(tokens: &[TokenTree], pos: &mut usize) -> Result<SerdeAttrs, String> {
    let mut attrs = SerdeAttrs::default();
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) else {
                    return Err("malformed attribute".into());
                };
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            parse_serde_attr(&args.stream().to_string(), &mut attrs)?;
                        }
                    }
                }
                *pos += 2;
            }
            _ => break,
        }
    }
    Ok(attrs)
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let container = take_attrs(&tokens, &mut pos)?;
    skip_vis(&tokens, &mut pos);

    let is_enum = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => false,
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => true,
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected container name, found {other:?}")),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            return Err(format!(
                "generic container `{name}` is not supported by the serde shim"
            ));
        }
    }

    let kind = if is_enum {
        let Some(TokenTree::Group(body)) = tokens.get(pos) else {
            return Err("expected enum body".into());
        };
        Kind::Enum(parse_variants(body.stream())?)
    } else {
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Fields::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Fields::Unit),
            other => return Err(format!("unsupported struct body: {other:?}")),
        }
    };

    Ok(Item {
        name,
        try_from: container.try_from,
        into: container.into,
        kind,
    })
}

/// Advance past a type, tracking `<...>` nesting, stopping at a
/// top-level `,` (which is consumed) or end of input.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut depth: i32 = 0;
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *pos += 1;
                return;
            }
            _ => {}
        }
        *pos += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut out = Vec::new();
    while pos < tokens.len() {
        let attrs = take_attrs(&tokens, &mut pos)?;
        if pos >= tokens.len() {
            break;
        }
        skip_vis(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_type(&tokens, &mut pos);
        out.push(Field {
            name,
            skip: attrs.skip,
            default: attrs.default,
        });
    }
    Ok(out)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut pos = 0;
    let mut n = 0;
    while pos < tokens.len() {
        // Tuple fields may carry a visibility; attrs on tuple fields are
        // not supported (none exist in this workspace).
        skip_vis(&tokens, &mut pos);
        skip_type(&tokens, &mut pos);
        n += 1;
    }
    n
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut out = Vec::new();
    while pos < tokens.len() {
        let _attrs = take_attrs(&tokens, &mut pos)?;
        if pos >= tokens.len() {
            break;
        }
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        pos += 1;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            _ => Fields::Unit,
        };
        // Consume the separating comma, if any.
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
        out.push(Variant { name, fields });
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    if let Some(into) = &item.into {
        return format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
             let bridged: {into} = ::core::convert::Into::into(::core::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_value(&bridged)\n\
             }}\n}}"
        );
    }
    let body = match &item.kind {
        Kind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Kind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
        }
        Kind::Struct(Fields::Named(fields)) => {
            let mut s = String::from("let mut obj = ::std::vec::Vec::new();\n");
            for f in fields {
                if f.skip {
                    continue;
                }
                s.push_str(&format!(
                    "obj.push(({:?}.to_string(), ::serde::Serialize::to_value(&self.{})));\n",
                    f.name, f.name
                ));
            }
            s.push_str("::serde::Value::Object(obj)");
            s
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(f0) => ::serde::Value::Object(::std::vec![({vn:?}.to_string(), \
                         ::serde::Serialize::to_value(f0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![({vn:?}.to_string(), \
                             ::serde::Value::Array(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from("{ let mut obj = ::std::vec::Vec::new();\n");
                        for f in fields {
                            if f.skip {
                                continue;
                            }
                            inner.push_str(&format!(
                                "obj.push(({:?}.to_string(), ::serde::Serialize::to_value({})));\n",
                                f.name, f.name
                            ));
                        }
                        inner.push_str("::serde::Value::Object(obj) }");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Object(::std::vec![({vn:?}.to_string(), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\nfn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
}

/// Code producing field `f` of container `container` from object
/// entries bound as `fields` (a `&[(String, Value)]`).
fn named_field_expr(container: &str, f: &Field) -> String {
    if f.skip {
        return format!("{}: ::core::default::Default::default(),\n", f.name);
    }
    let missing = match &f.default {
        None => format!(
            "return Err(::serde::DeError::custom(::std::format!(\
             \"missing field `{}` for {}\")))",
            f.name, container
        ),
        Some(None) => "::core::default::Default::default()".to_string(),
        Some(Some(path)) => format!("{path}()"),
    };
    format!(
        "{}: match ::serde::obj_get(fields, {:?}) {{\n\
         Some(v) => ::serde::Deserialize::from_value(v)?,\n\
         None => {missing},\n\
         }},\n",
        f.name, f.name
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    if let Some(try_from) = &item.try_from {
        return format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
             let bridged: {try_from} = ::serde::Deserialize::from_value(v)?;\n\
             <Self as ::core::convert::TryFrom<{try_from}>>::try_from(bridged)\n\
             .map_err(|e| ::serde::DeError::custom(::std::format!(\"{{e}}\")))\n\
             }}\n}}"
        );
    }
    let body = match &item.kind {
        Kind::Struct(Fields::Unit) => format!("Ok({name})"),
        Kind::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                .collect();
            format!(
                "let arr = v.as_array().ok_or_else(|| ::serde::DeError::custom(\
                 ::std::format!(\"expected array for {name}\")))?;\n\
                 if arr.len() != {n} {{ return Err(::serde::DeError::custom(\
                 ::std::format!(\"expected {n} elements for {name}\"))); }}\n\
                 Ok({name}({}))",
                elems.join(", ")
            )
        }
        Kind::Struct(Fields::Named(fields)) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&named_field_expr(name, f));
            }
            format!(
                "let fields = v.as_object().ok_or_else(|| ::serde::DeError::custom(\
                 ::std::format!(\"expected object for {name}\")))?;\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for vr in variants {
                let vn = &vr.name;
                match &vr.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("{vn:?} => Ok({name}::{vn}),\n"));
                        // Also accept `{"Variant": null}`.
                        tagged_arms.push_str(&format!("{vn:?} => Ok({name}::{vn}),\n"));
                    }
                    Fields::Tuple(1) => tagged_arms.push_str(&format!(
                        "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::from_value(val)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                             let arr = val.as_array().ok_or_else(|| ::serde::DeError::custom(\
                             ::std::format!(\"expected array for {name}::{vn}\")))?;\n\
                             if arr.len() != {n} {{ return Err(::serde::DeError::custom(\
                             ::std::format!(\"expected {n} elements for {name}::{vn}\"))); }}\n\
                             Ok({name}::{vn}({}))\n}},\n",
                            elems.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&named_field_expr(&format!("{name}::{vn}"), f));
                        }
                        tagged_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                             let fields = val.as_object().ok_or_else(|| ::serde::DeError::custom(\
                             ::std::format!(\"expected object for {name}::{vn}\")))?;\n\
                             Ok({name}::{vn} {{\n{inits}}})\n}},\n"
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => Err(::serde::DeError::custom(::std::format!(\
                 \"unknown variant `{{other}}` for {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (tag, val) = &entries[0];\n\
                 let _ = val;\n\
                 match tag.as_str() {{\n{tagged_arms}\
                 other => Err(::serde::DeError::custom(::std::format!(\
                 \"unknown variant `{{other}}` for {name}\"))),\n\
                 }}\n}},\n\
                 _ => Err(::serde::DeError::custom(::std::format!(\
                 \"expected string or single-key object for enum {name}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         #[allow(unused_variables)]\n\
         fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}"
    )
}
