//! Offline stand-in for `serde_json`, paired with the local `serde` shim.
//!
//! Provides the subset of the real crate's surface this workspace uses:
//! [`to_string`] / [`to_string_pretty`] / [`from_str`] / [`to_value`] /
//! [`from_value`], the [`Value`] type (re-exported from `serde`), and a
//! [`json!`] macro covering object/array literals with expression values.
//!
//! The emitted text is RFC 8259 JSON with the same shapes real serde
//! would produce (derive shim notes in `serde_derive`), so specs and
//! metadata files written by one build remain readable by a build against
//! the real crates.

pub use serde::{DeError, Value};

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from parsing or value conversion.
#[derive(Clone, Debug)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize into a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(x: &T) -> Value {
    x.to_value()
}

/// Deserialize out of a [`Value`].
pub fn from_value<T: Deserialize>(v: Value) -> Result<T, Error> {
    Ok(T::from_value(&v)?)
}

/// Serialize to compact JSON text. Infallible for tree-shaped data; the
/// `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(x: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &x.to_value(), None, 0);
    Ok(out)
}

/// Serialize to 2-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(x: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &x.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    Ok(T::from_value(&v)?)
}

/// Parse JSON bytes into any [`Deserialize`] type.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    from_str(s)
}

/// Build a [`Value`] from a JSON-ish literal. Object and array literals
/// take arbitrary Rust expressions as values (serialized via the local
/// serde shim); nested `json!` calls cover deeper literal nesting.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( ($key.to_string(), $crate::to_value(&$value)) ),*
        ])
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::to_value(&$value) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Match serde_json: floats always carry a decimal point.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject them loudly.
                            let c = char::from_u32(cp)
                                .ok_or_else(|| self.err("unsupported \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\\nthere\""] {
            let v: Value = from_str(text).unwrap();
            let back = to_string(&v).unwrap();
            let v2: Value = from_str(&back).unwrap();
            assert_eq!(v, v2, "{text}");
        }
    }

    #[test]
    fn roundtrip_nested() {
        let text = r#"{"a": [1, 2, {"b": null}], "c": "x -> y", "d": {"e": -4}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"][2]["b"], Value::Null);
        assert_eq!(v["c"].as_str(), Some("x -> y"));
        assert_eq!(v["d"]["e"].as_i64(), Some(-4));
        let pretty = to_string_pretty(&v).unwrap();
        let v2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn json_macro_shapes() {
        let passed = true;
        let v = json!({
            "name": "p1",
            "passed": passed,
            "count": 3usize,
            "missing": Option::<String>::None,
            "items": vec![json!(1), json!(2)],
        });
        assert_eq!(v["passed"], Value::Bool(true));
        assert_eq!(v["count"].as_u64(), Some(3));
        assert!(v["missing"].is_null());
        assert_eq!(v["items"][1].as_u64(), Some(2));
    }
}
