//! Offline stand-in for `rand` (0.9-era API).
//!
//! Implements the slice of the crate this workspace uses: a seedable
//! [`rngs::StdRng`] plus the [`Rng`] methods `random`, `random_range`,
//! `random_bool` and `shuffle` support via [`seq::SliceRandom`]. The
//! generator is xoshiro256** seeded through splitmix64 — deterministic
//! across platforms, which the fingerprint/dedup tests rely on.

use std::ops::{Range, RangeInclusive};

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Build from OS entropy. This offline shim derives entropy from the
    /// system clock; use [`SeedableRng::seed_from_u64`] for repeatability.
    fn from_os_rng() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(t)
    }
}

/// Sampling of uniform values; implemented via raw 64-bit output.
pub trait Rng {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value of a supported primitive type.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// A uniform value in the range.
    fn random_range<T: UniformInt, R: IntoUniformRange<T>>(&mut self, range: R) -> T {
        let (lo, hi_incl) = range.bounds();
        let span = hi_incl.wrapping_sub_to_u64(lo).wrapping_add(1);
        if span == 0 {
            // Full domain.
            return T::from_u64_lossy(self.next_u64());
        }
        // Multiply-shift rejection-free mapping; bias is negligible for
        // the test-sized ranges used here.
        let x = self.next_u64();
        let offset = ((x as u128 * span as u128) >> 64) as u64;
        lo.add_u64(offset)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

/// Types `random()` can produce.
pub trait Standard {
    /// Map raw bits to a uniform value.
    fn sample(bits: u64) -> Self;
}

impl Standard for bool {
    fn sample(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for u8 {
    fn sample(bits: u64) -> Self {
        bits as u8
    }
}

impl Standard for u16 {
    fn sample(bits: u64) -> Self {
        bits as u16
    }
}

impl Standard for u32 {
    fn sample(bits: u64) -> Self {
        bits as u32
    }
}

impl Standard for u64 {
    fn sample(bits: u64) -> Self {
        bits
    }
}

impl Standard for usize {
    fn sample(bits: u64) -> Self {
        bits as usize
    }
}

impl Standard for f64 {
    fn sample(bits: u64) -> Self {
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Integer types usable with `random_range`.
pub trait UniformInt: Copy {
    /// `self - lo` widened to u64 (assumes `self >= lo`).
    fn wrapping_sub_to_u64(self, lo: Self) -> u64;
    /// `self + offset` (offset fits by construction).
    fn add_u64(self, offset: u64) -> Self;
    /// Truncating conversion for full-domain sampling.
    fn from_u64_lossy(x: u64) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn wrapping_sub_to_u64(self, lo: Self) -> u64 {
                (self as i128).wrapping_sub(lo as i128) as u64
            }
            fn add_u64(self, offset: u64) -> Self {
                ((self as i128) + offset as i128) as $t
            }
            fn from_u64_lossy(x: u64) -> Self {
                x as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range forms accepted by `random_range`.
pub trait IntoUniformRange<T: UniformInt> {
    /// Inclusive `(low, high)` bounds; panics on an empty range.
    fn bounds(self) -> (T, T);
}

impl<T: UniformInt + PartialOrd + std::fmt::Debug> IntoUniformRange<T> for Range<T> {
    fn bounds(self) -> (T, T) {
        assert!(
            self.start < self.end,
            "empty range {:?}..{:?}",
            self.start,
            self.end
        );
        // end - 1 via add_u64 of span-1 over start.
        let span = self.end.wrapping_sub_to_u64(self.start);
        (self.start, self.start.add_u64(span - 1))
    }
}

impl<T: UniformInt + PartialOrd + std::fmt::Debug> IntoUniformRange<T> for RangeInclusive<T> {
    fn bounds(self) -> (T, T) {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty inclusive range");
        (lo, hi)
    }
}

/// Random sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling/choosing.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly chosen element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** seeded via splitmix64; the standard offline RNG.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = StdRng::seed_from_u64(1);
        let mut seen_hi = false;
        for _ in 0..1000 {
            let x: u32 = r.random_range(10..20);
            assert!((10..20).contains(&x));
            if x >= 18 {
                seen_hi = true;
            }
            let y = r.random_range(0..=3usize);
            assert!(y <= 3);
        }
        assert!(seen_hi, "range sampling never reached upper values");
    }

    #[test]
    fn random_bool_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.random_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "p=0.3 produced {hits}/10000");
    }
}
