//! Offline stand-in for `proptest`.
//!
//! Provides the strategy surface this workspace's property tests use —
//! ranges, tuples, [`Just`], `any`, `prop_map`, `prop_recursive`,
//! [`prop_oneof!`], `prop::collection::{vec, btree_set}` — and the
//! [`proptest!`] macro. Differences from the real crate, deliberately
//! accepted for an offline shim:
//!
//! * no shrinking: a failing case panics with the case number and seed
//!   (inputs are regenerable from those);
//! * deterministic seeding derived from the test name, so failures
//!   reproduce exactly;
//! * `prop_recursive` bounds depth structurally rather than by expected
//!   size.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// Everything a test module needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Mirror of the real crate's `prop` path alias.
pub mod prop {
    pub use crate::collection;
}

/// Test-run configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps debug-mode SAT workloads
        // fast while staying statistically useful.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test RNG: seeded from the test name so reruns and
/// cross-machine runs generate identical cases.
pub fn rng_for_test(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

// ---------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------

/// A generator of values. Unlike real proptest there is no shrink tree;
/// `generate` is the whole contract.
pub trait Strategy: Clone {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Apply a function to generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Type-erase (and make cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Send + Sync + 'static,
        Self::Value: 'static,
    {
        let inner = self;
        BoxedStrategy(Arc::new(move |rng| inner.generate(rng)))
    }

    /// Recursive strategies: `recurse` receives the previous depth level
    /// and builds the next; leaves terminate the recursion within
    /// `depth` levels. `_desired_size` and `_expected_branch_size` are
    /// accepted for API compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Send + Sync + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + Send + Sync + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            // Mix the leaf back in at every level so generated sizes
            // vary instead of always reaching full depth.
            let deeper = recurse(level).boxed();
            let l = leaf.clone();
            level = BoxedStrategy(Arc::new(move |rng: &mut StdRng| {
                if rng.random_bool(0.25) {
                    l.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            }));
        }
        level
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut StdRng) -> T + Send + Sync>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// Always the same value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy application of a function.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U + Clone> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: rand::UniformInt + PartialOrd + std::fmt::Debug + Clone> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T: rand::UniformInt + PartialOrd + std::fmt::Debug + Clone> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arb_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random()
            }
        }
    )*};
}

arb_via_standard!(bool, u8, u16, u32, u64, usize, f64);

/// The canonical strategy for `T`.
#[derive(Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Any<T> {}

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategies {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J)
}

/// Uniform choice between boxed alternatives (built by [`prop_oneof!`]).
pub struct OneOf<T> {
    alts: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf {
            alts: self.alts.clone(),
        }
    }
}

impl<T> OneOf<T> {
    /// A union of the given alternatives.
    pub fn new(alts: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !alts.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        OneOf { alts }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.alts.len());
        self.alts[i].generate(rng)
    }
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($alt:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($alt)),+])
    };
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Sizes accepted by collection strategies.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            SizeRange { lo, hi_incl: hi }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    /// A vector of values from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.random_range(self.size.lo..=self.size.hi_incl);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A b-tree set of values from `element` (at most `size` elements;
    /// duplicates collapse, as in the real crate).
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `btree_set(element, size)`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let n = rng.random_range(self.size.lo..=self.size.hi_incl);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each function's `arg in strategy` parameters
/// are generated `config.cases` times and the body re-run.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            let __replay = $crate::replay_case(
                concat!(module_path!(), "::", stringify!($name)),
                stringify!($name),
            );
            if let Some(c) = __replay {
                // An out-of-range target would silently skip every case
                // and report a vacuous pass.
                assert!(
                    c < config.cases,
                    "{}={}:{} selects case {} but `{}` only runs {} cases",
                    $crate::REPLAY_ENV,
                    stringify!($name),
                    c,
                    c,
                    stringify!($name),
                    config.cases,
                );
            }
            for __case in 0..config.cases {
                // Always generate, so a replayed case sees exactly the
                // RNG state of the full run.
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                if __replay.is_some_and(|c| c != __case) {
                    continue;
                }
                let __guard = $crate::CaseReporter {
                    test: stringify!($name),
                    case: __case,
                };
                $body
                ::std::mem::forget(__guard);
            }
        }
        $crate::__proptest_each!{ ($cfg) $($rest)* }
    };
    (($cfg:expr)) => {};
}

/// The environment variable selecting a single proptest case to replay:
/// `PROPTEST_REPLAY=<test>:<case>`, where `<test>` is the test function
/// name (or its full `module::path::name`) printed by a failure.
pub const REPLAY_ENV: &str = "PROPTEST_REPLAY";

/// Parse a `PROPTEST_REPLAY` value against one test's names. Pure
/// helper behind [`replay_case`]; accepts the bare function name, the
/// full module path, or any `::`-suffix of it.
pub fn replay_filter(value: &str, full: &str, name: &str) -> Option<u32> {
    let (target, case) = value.rsplit_once(':')?;
    let case: u32 = case.trim().parse().ok()?;
    let target = target.trim().trim_end_matches(':');
    let matches = target == name
        || target == full
        || (full.ends_with(target) && full[..full.len() - target.len()].ends_with("::"));
    matches.then_some(case)
}

/// The case the current environment asks this test to replay, if any
/// (see [`REPLAY_ENV`]). Non-matching or malformed values select
/// nothing, so an exported variable never silently skips other tests'
/// cases.
pub fn replay_case(full: &str, name: &str) -> Option<u32> {
    replay_filter(&std::env::var(REPLAY_ENV).ok()?, full, name)
}

/// Prints the failing case number and a copy-pasteable replay command
/// when a proptest body panics (the shim has no shrinking; the
/// deterministic name-derived seed plus the case number regenerate the
/// inputs exactly).
#[doc(hidden)]
pub struct CaseReporter {
    /// Test name.
    pub test: &'static str,
    /// Zero-based case index.
    pub case: u32,
}

impl Drop for CaseReporter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest shim: test `{}` failed at case {} (deterministic name-derived seed).\n\
                 replay just this case with:\n  {}={}:{} cargo test -q {}",
                self.test, self.case, REPLAY_ENV, self.test, self.case, self.test
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::rng_for_test;

    #[test]
    fn strategies_generate_expected_shapes() {
        let mut rng = rng_for_test("shapes");
        let s = prop::collection::vec((0u32..5, any::<bool>()), 1..=3);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
            assert!(v.iter().all(|(x, _)| *x < 5));
        }
        let m = (0u32..3).prop_map(|x| x * 2);
        for _ in 0..50 {
            assert!(m.generate(&mut rng) % 2 == 0);
        }
        let o = prop_oneof![Just(1u8), Just(2u8)];
        for _ in 0..50 {
            assert!((1..=2).contains(&o.generate(&mut rng)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_roundtrip(x in 0u32..100, ys in prop::collection::vec(0u8..=4, 0..6)) {
            prop_assert!(x < 100);
            prop_assert!(ys.iter().all(|&y| y <= 4));
        }
    }

    #[test]
    fn replay_filter_matches_names_and_suffixes() {
        use super::replay_filter;
        let full = "my_crate::tests::my_test";
        assert_eq!(replay_filter("my_test:7", full, "my_test"), Some(7));
        assert_eq!(
            replay_filter(&format!("{full}:3"), full, "my_test"),
            Some(3)
        );
        assert_eq!(replay_filter("tests::my_test:0", full, "my_test"), Some(0));
        // A different test, a partial-word suffix, or junk select nothing.
        assert_eq!(replay_filter("other_test:7", full, "my_test"), None);
        assert_eq!(replay_filter("y_test:7", full, "my_test"), None);
        assert_eq!(replay_filter("my_test", full, "my_test"), None);
        assert_eq!(replay_filter("my_test:x", full, "my_test"), None);
    }

    #[test]
    fn replayed_case_sees_the_full_runs_rng_state() {
        // Simulate what the macro does: generating all cases vs
        // fast-forwarding to case N must produce the same inputs.
        let strat = prop::collection::vec(0u32..1000, 1..5);
        let mut all = Vec::new();
        let mut rng = rng_for_test("replay_determinism");
        for _ in 0..10 {
            all.push(strat.generate(&mut rng));
        }
        let mut rng = rng_for_test("replay_determinism");
        let mut at_7 = None;
        for case in 0..10 {
            let v = strat.generate(&mut rng);
            if case == 7 {
                at_7 = Some(v);
            }
        }
        assert_eq!(at_7.unwrap(), all[7]);
    }
}
