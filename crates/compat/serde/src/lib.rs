//! Offline stand-in for `serde`.
//!
//! The build environment has no network access and no vendored registry,
//! so the workspace carries this shim instead of the real crate. The only
//! serde consumer in the tree is the local `serde_json` shim, which lets
//! the data model collapse from the Serializer/Deserializer visitor
//! architecture to a pair of value-based traits:
//!
//! * [`Serialize::to_value`] renders a type into a JSON-shaped [`Value`];
//! * [`Deserialize::from_value`] reads it back.
//!
//! The derive macros (re-exported from the local `serde_derive`) produce
//! the same external JSON shapes real serde would: named structs as
//! objects, newtype structs transparently, enums externally tagged. Code
//! written against this shim therefore reads and writes the same JSON it
//! would with real serde, and swapping the real crates back in (by
//! pointing the workspace dependencies at crates.io) only requires
//! re-deriving — no call-site changes.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

/// A JSON-shaped value: the interchange point between `Serialize`,
/// `Deserialize` and the `serde_json` shim.
#[derive(Clone, Debug)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (all integers that fit are normalized here).
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// Numeric-aware equality: `Int(5) == UInt(5) == Float(5.0)`.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Array(a), Array(b)) => a == b,
            (Object(a), Object(b)) => a == b,
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! value_num_eq {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
    )*};
}

value_num_eq!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// The canonical `null` value, used for out-of-bounds indexing.
pub const NULL: Value = Value::Null;

impl Value {
    /// The value as an object's entries, if it is one.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a u64, if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The value as an i64, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// The value as an f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup (None on missing key or non-object).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| obj_get(o, key))
    }
}

/// Look up a key in object entries.
pub fn obj_get<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

/// Deserialization error.
#[derive(Clone, Debug)]
pub struct DeError(pub String);

impl DeError {
    /// An error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Render into a [`Value`].
pub trait Serialize {
    /// The value form of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuild from a [`Value`].
pub trait Deserialize: Sized {
    /// Parse from the value form.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Implementations for primitives and std containers
// ---------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::custom("expected bool"))
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as i128;
                if wide >= i64::MIN as i128 && wide <= i64::MAX as i128 {
                    Value::Int(wide as i64)
                } else {
                    Value::UInt(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let err = || DeError::custom(concat!("expected ", stringify!($t)));
                match v {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| err()),
                    Value::UInt(u) => <$t>::try_from(*u).map_err(|_| err()),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    _ => Err(err()),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64().map(|f| f as $t).ok_or_else(|| DeError::custom("expected number"))
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::custom("expected single-char string"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

/// A map key: serialized as a JSON object key string. Integer-like keys
/// (e.g. id newtypes) serialize as their decimal form, the same behavior
/// real `serde_json` has for integer-keyed maps.
fn key_to_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key {other:?}"),
    }
}

/// Reverse of [`key_to_string`]: offer the key to `K` first as a string
/// and, when that fails and the key parses numerically, as an integer.
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, DeError> {
    if let Ok(k) = K::from_value(&Value::Str(s.to_string())) {
        return Ok(k);
    }
    if let Ok(i) = s.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Int(i)) {
            return Ok(k);
        }
    }
    if let Ok(u) = s.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::UInt(u)) {
            return Ok(k);
        }
    }
    Err(DeError::custom(format!(
        "cannot deserialize map key from {s:?}"
    )))
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::custom("expected object"))?
            .iter()
            .map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
            .collect();
        // Hash iteration order is nondeterministic; sort for stable text.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::custom("expected object"))?
            .iter()
            .map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<T: Serialize + Eq + std::hash::Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| DeError::custom("expected array"))?;
                let expected = [$($n),+].len();
                if arr.len() != expected {
                    return Err(DeError::custom("tuple length mismatch"));
                }
                Ok(($($t::from_value(&arr[$n])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            ("nanos".to_string(), Value::Int(self.subsec_nanos() as i64)),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom("expected duration object"))?;
        let secs = obj_get(obj, "secs")
            .and_then(Value::as_u64)
            .ok_or_else(|| DeError::custom("expected duration secs"))?;
        let nanos = obj_get(obj, "nanos")
            .and_then(Value::as_u64)
            .ok_or_else(|| DeError::custom("expected duration nanos"))?;
        Ok(std::time::Duration::new(secs, nanos as u32))
    }
}
