//! The live-telemetry endpoint: a dependency-free blocking HTTP server
//! (std `TcpListener`, thread-per-connection, graceful shutdown flag)
//! that lets anyone ask a *running* daemon what it is doing.
//!
//! Three endpoints:
//!
//! * `GET /metrics` — the shared status document ([`status_body`]):
//!   round count, verdict, last-round delta metrics, and the full
//!   registry snapshot as JSON. `?format=prom` renders the same
//!   snapshot as Prometheus text exposition instead.
//! * `GET /healthz` — process uptime, last-round age, and an ok/fail
//!   verdict; stale or failing state answers `503` so a probe needs no
//!   body parsing.
//! * `GET /trace?last=N` — the most recent `N` flight-recorder spans
//!   as loadable Chrome trace JSON.
//!
//! Handlers only *read* (snapshot merges, ring copies) — a scrape
//! never records into the registry, which is what makes the final
//! scrape byte-for-value equal to the `--metrics-json` file written
//! through the same renderer.
//!
//! [`Status`] is deliberately the **single** round-increment site:
//! the totals line, the metrics file, and `/metrics` all read the same
//! counter, so they cannot disagree across rejected rounds.

use crate::metrics::{MetricsSnapshot, Registry, BUCKET_BOUNDS_US};
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Shared round/verdict state between the observed loop (writer) and
/// the endpoint (reader). One instance per daemon; rounds are counted
/// *here and nowhere else* so every surface agrees.
pub struct Status {
    start: Instant,
    stale_after: Option<Duration>,
    inner: Mutex<StatusInner>,
}

struct StatusInner {
    rounds: u64,
    ok: bool,
    last_round: Option<Instant>,
    last_round_secs: f64,
    delta: Option<MetricsSnapshot>,
}

impl Status {
    /// A fresh status: zero rounds, ok, no staleness threshold unless
    /// given one.
    pub fn new(stale_after: Option<Duration>) -> Arc<Status> {
        Arc::new(Status {
            start: Instant::now(),
            stale_after,
            inner: Mutex::new(StatusInner {
                rounds: 0,
                ok: true,
                last_round: None,
                last_round_secs: 0.0,
                delta: None,
            }),
        })
    }

    /// Record one completed round — verified, violated, or rejected —
    /// and return the new round count. This is the single increment
    /// site shared by the totals line, the metrics file and the
    /// `/metrics` endpoint.
    pub fn note_round(&self, ok: bool, elapsed: Duration, delta: Option<MetricsSnapshot>) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        inner.rounds += 1;
        inner.ok = ok;
        inner.last_round = Some(Instant::now());
        inner.last_round_secs = elapsed.as_secs_f64();
        inner.delta = delta;
        inner.rounds
    }

    /// Record the baseline (round zero) without burning a round
    /// number: it refreshes the verdict and the staleness clock only.
    pub fn note_baseline(&self, ok: bool, elapsed: Duration, delta: Option<MetricsSnapshot>) {
        let mut inner = self.inner.lock().unwrap();
        inner.ok = ok;
        inner.last_round = Some(Instant::now());
        inner.last_round_secs = elapsed.as_secs_f64();
        inner.delta = delta;
    }

    /// Rounds completed so far (baseline excluded).
    pub fn rounds(&self) -> u64 {
        self.inner.lock().unwrap().rounds
    }

    /// The most recent round's verdict (`true` before any round).
    pub fn ok(&self) -> bool {
        self.inner.lock().unwrap().ok
    }

    /// Seconds since the last completed round (baseline counts), or
    /// since process start when no round has run yet.
    fn age(&self) -> Duration {
        self.inner
            .lock()
            .unwrap()
            .last_round
            .unwrap_or(self.start)
            .elapsed()
    }

    /// Whether the staleness threshold (if any) has been exceeded.
    fn stale(&self) -> bool {
        self.stale_after.is_some_and(|t| self.age() > t)
    }
}

/// The status document shared by the `--metrics-json` file and the
/// `/metrics` endpoint: round count, verdict, the last round's *delta*
/// metrics (rates, not totals), and the full cumulative snapshot.
/// Deliberately contains no wall-clock-dependent field, so a scrape
/// and a file written after the same round are byte-for-value equal.
pub fn status_json(status: &Status, reg: &Registry) -> Value {
    let inner = status.inner.lock().unwrap();
    let last_round = match &inner.delta {
        None => Value::Null,
        Some(d) => Value::Object(vec![
            ("seconds".to_string(), Value::Float(inner.last_round_secs)),
            ("metrics".to_string(), d.to_json()),
        ]),
    };
    Value::Object(vec![
        ("rounds".to_string(), Value::UInt(inner.rounds)),
        ("ok".to_string(), Value::Bool(inner.ok)),
        ("last_round".to_string(), last_round),
        ("metrics".to_string(), reg.snapshot().to_json()),
    ])
}

/// [`status_json`] rendered as pretty JSON — the exact bytes both the
/// metrics file and `/metrics` serve.
pub fn status_body(status: &Status, reg: &Registry) -> String {
    serde_json::to_string_pretty(&status_json(status, reg)).unwrap_or_default()
}

/// Atomically (tmp + rename) write [`status_body`] to `path`, so a
/// polling reader never observes a half-written JSON.
pub fn write_status_file(path: &Path, status: &Status, reg: &Registry) -> std::io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, status_body(status, reg))?;
    std::fs::rename(&tmp, path)
}

/// The `/healthz` answer: `(http_status, body)`. `503` when the last
/// round failed or the staleness threshold is exceeded.
fn healthz(status: &Status) -> (u16, Value) {
    let ok = status.ok();
    let stale = status.stale();
    let verdict = if !ok {
        "failing"
    } else if stale {
        "stale"
    } else {
        "ok"
    };
    let body = Value::Object(vec![
        ("status".to_string(), Value::Str(verdict.to_string())),
        (
            "uptime_seconds".to_string(),
            Value::Float(status.start.elapsed().as_secs_f64()),
        ),
        ("rounds".to_string(), Value::UInt(status.rounds())),
        ("ok".to_string(), Value::Bool(ok)),
        (
            "last_round_age_seconds".to_string(),
            Value::Float(status.age().as_secs_f64()),
        ),
        (
            "stale_after_seconds".to_string(),
            match status.stale_after {
                Some(t) => Value::Float(t.as_secs_f64()),
                None => Value::Null,
            },
        ),
    ]);
    (if ok && !stale { 200 } else { 503 }, body)
}

/// A metric name as a Prometheus metric name: `lightyear_` prefix,
/// non-`[a-zA-Z0-9_]` characters mapped to `_`.
fn prom_name(name: &str) -> String {
    let mut s = String::with_capacity(name.len() + 10);
    s.push_str("lightyear_");
    for c in name.chars() {
        s.push(if c.is_ascii_alphanumeric() || c == '_' {
            c
        } else {
            '_'
        });
    }
    s
}

/// The registry snapshot plus round status as Prometheus text
/// exposition (version 0.0.4). Histograms are exported in seconds with
/// cumulative `le` buckets plus `_sum` / `_count` and pre-computed
/// p50/p95/p99 quantile samples.
pub fn prometheus_text(status: &Status, reg: &Registry) -> String {
    let snap = reg.snapshot();
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }
    for (name, h) in &snap.histograms {
        let n = format!("{}_seconds", prom_name(name));
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let mut cum = 0u64;
        for (i, &b) in h.buckets.iter().enumerate() {
            cum += b;
            match BUCKET_BOUNDS_US.get(i) {
                Some(&us) => out.push_str(&format!(
                    "{n}_bucket{{le=\"{le}\"}} {cum}\n",
                    le = us as f64 / 1_000_000.0
                )),
                None => out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {cum}\n")),
            }
        }
        out.push_str(&format!("{n}_sum {}\n", h.sum_ns as f64 / 1e9));
        out.push_str(&format!("{n}_count {}\n", h.count));
        for (q, label) in [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
            out.push_str(&format!(
                "{n}{{quantile=\"{label}\"}} {}\n",
                h.quantile_ns(q) as f64 / 1e9
            ));
        }
    }
    out.push_str(&format!(
        "# TYPE lightyear_rounds_total counter\nlightyear_rounds_total {}\n",
        status.rounds()
    ));
    out.push_str(&format!(
        "# TYPE lightyear_ok gauge\nlightyear_ok {}\n",
        if status.ok() { 1 } else { 0 }
    ));
    out.push_str(&format!(
        "# TYPE lightyear_uptime_seconds gauge\nlightyear_uptime_seconds {}\n",
        status.start.elapsed().as_secs_f64()
    ));
    out
}

/// One parsed HTTP request as seen by a mounted [`Handler`]: method,
/// split target, and the (possibly empty) body.
pub struct Request {
    pub method: String,
    pub path: String,
    pub query: String,
    pub body: Vec<u8>,
}

impl Request {
    /// The value of query parameter `key`, if present.
    pub fn param(&self, key: &str) -> Option<String> {
        self.query
            .split('&')
            .filter_map(|kv| kv.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.to_string())
    }
}

/// A handler's answer: status code, content type, body.
pub struct Response {
    pub code: u16,
    pub content_type: &'static str,
    pub body: String,
}

impl Response {
    /// A JSON response (pretty-printed, like every built-in endpoint).
    pub fn json(code: u16, v: &Value) -> Response {
        Response {
            code,
            content_type: "application/json",
            body: serde_json::to_string_pretty(v).unwrap_or_default(),
        }
    }

    /// A plain-text response.
    pub fn text(code: u16, body: impl Into<String>) -> Response {
        Response {
            code,
            content_type: "text/plain",
            body: body.into(),
        }
    }
}

/// An application handler mounted beside the built-in telemetry
/// endpoints. It sees every request the built-ins did not claim
/// (any method); returning `None` falls through to `404` (GET) or
/// `405` (anything else).
pub type Handler = Arc<dyn Fn(&Request) -> Option<Response> + Send + Sync>;

/// Default bound on concurrently-served connections. Handlers are
/// short-lived, so this is generous; what it prevents is an unbounded
/// thread pile-up when clients open connections faster than the 5 s
/// read timeout reaps them.
pub const DEFAULT_MAX_CONNS: usize = 64;

/// A running telemetry server. Dropping it stops the accept loop
/// (graceful: the flag is set, the blocking `accept` is unblocked by a
/// self-connection, and the thread is joined).
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryServer {
    /// The actually-bound address (resolves `:0` to the chosen port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Bind `addr` (e.g. `127.0.0.1:0`) and serve `/metrics`, `/healthz`
/// and `/trace` from `reg` + `status` until the returned handle drops.
pub fn serve(
    addr: &str,
    reg: Arc<Registry>,
    status: Arc<Status>,
) -> std::io::Result<TelemetryServer> {
    serve_with(addr, reg, status, None, DEFAULT_MAX_CONNS)
}

/// [`serve`] plus an application [`Handler`] mounted beside the
/// built-in endpoints and an explicit concurrent-connection cap.
/// Connection `max_conns + 1` is answered `503` and closed instead of
/// spawning a thread, so a client flood cannot pile up blocked threads
/// behind the read timeout.
pub fn serve_with(
    addr: &str,
    reg: Arc<Registry>,
    status: Arc<Status>,
    handler: Option<Handler>,
    max_conns: usize,
) -> std::io::Result<TelemetryServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let live = Arc::new(AtomicUsize::new(0));
    let handle = std::thread::Builder::new()
        .name("obs-http".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::Acquire) {
                    break;
                }
                let Ok(mut stream) = conn else { continue };
                // Admission first: past the cap we answer 503 inline
                // and never spawn, bounding live threads at max_conns.
                if live.load(Ordering::Acquire) >= max_conns {
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                    respond(&mut stream, 503, "text/plain", "connection limit reached\n");
                    continue;
                }
                live.fetch_add(1, Ordering::AcqRel);
                let (reg, status) = (reg.clone(), status.clone());
                let (handler, live2) = (handler.clone(), live.clone());
                // Thread-per-connection: handlers are read-only and
                // short-lived; a slow client cannot stall the next
                // scrape.
                let spawned = std::thread::Builder::new()
                    .name("obs-http-conn".to_string())
                    .spawn(move || {
                        handle_conn(stream, &reg, &status, handler.as_ref());
                        live2.fetch_sub(1, Ordering::AcqRel);
                    });
                if spawned.is_err() {
                    live.fetch_sub(1, Ordering::AcqRel);
                }
            }
        })?;
    Ok(TelemetryServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

/// Cap on the request head we are willing to buffer.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Cap on a request body (submitted configs can be sizeable; anything
/// past this is answered `413`).
const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

fn handle_conn(mut stream: TcpStream, reg: &Registry, status: &Status, handler: Option<&Handler>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    // Read until the end of the request head.
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return respond(&mut stream, 400, "text/plain", "request too large\n");
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut parts = head.lines().next().unwrap_or_default().split_whitespace();
    let (method, target) = (
        parts.next().unwrap_or("").to_string(),
        parts.next().unwrap_or(""),
    );
    let content_length = head
        .lines()
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return respond(&mut stream, 413, "text/plain", "body too large\n");
    }
    // The head read may have pulled in part of the body already.
    let mut body = buf[head_end..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
        }
    }
    body.truncate(content_length);
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let req = Request {
        method,
        path: path.to_string(),
        query: query.to_string(),
        body,
    };
    let param = |key: &str| req.param(key);
    if req.method == "GET" {
        match req.path.as_str() {
            "/metrics" => {
                return if param("format").as_deref() == Some("prom") {
                    let body = prometheus_text(status, reg);
                    respond(&mut stream, 200, "text/plain; version=0.0.4", &body)
                } else {
                    let body = status_body(status, reg);
                    respond(&mut stream, 200, "application/json", &body)
                };
            }
            "/healthz" => {
                let (code, v) = healthz(status);
                let body = serde_json::to_string_pretty(&v).unwrap_or_default();
                return respond(&mut stream, code, "application/json", &body);
            }
            "/trace" => {
                let last = param("last")
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or(256);
                let body =
                    serde_json::to_string_pretty(&reg.chrome_trace_last(last)).unwrap_or_default();
                return respond(&mut stream, 200, "application/json", &body);
            }
            _ => {}
        }
    }
    // Everything the built-ins did not claim goes to the mounted
    // handler; without one (or when it declines) we keep the historic
    // answers: 404 for unknown GETs, 405 for other methods.
    if let Some(resp) = handler.and_then(|h| h(&req)) {
        return respond(&mut stream, resp.code, resp.content_type, &resp.body);
    }
    if req.method == "GET" {
        respond(&mut stream, 404, "text/plain", "not found\n")
    } else {
        respond(&mut stream, 405, "text/plain", "method not allowed\n")
    }
}

fn respond(stream: &mut TcpStream, code: u16, content_type: &str, body: &str) {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {len}\r\nConnection: close\r\n\r\n",
        len = body.len()
    );
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .and_then(|()| stream.flush());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Raw one-shot HTTP GET against a served address; returns
    /// `(status_code, body)`.
    pub(crate) fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        let code = text
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .unwrap_or(0);
        let body = text
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (code, body)
    }

    #[test]
    fn status_has_a_single_increment_site() {
        let status = Status::new(None);
        status.note_baseline(true, Duration::from_millis(3), None);
        assert_eq!(status.rounds(), 0, "baseline must not burn a round");
        assert_eq!(status.note_round(true, Duration::from_millis(1), None), 1);
        assert_eq!(status.note_round(false, Duration::from_millis(1), None), 2);
        assert_eq!(status.rounds(), 2);
        assert!(!status.ok());
    }

    #[test]
    fn status_body_matches_file_bytes_and_has_delta() {
        let reg = Registry::new();
        reg.counter("smt.solves").add(5);
        let before = reg.snapshot();
        reg.counter("smt.solves").add(3);
        let status = Status::new(None);
        status.note_round(
            true,
            Duration::from_millis(10),
            Some(reg.snapshot().delta_since(&before)),
        );
        let body = status_body(&status, &reg);
        let path = std::env::temp_dir().join(format!("obs-status-{}.json", std::process::id()));
        write_status_file(&path, &status, &reg).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), body);
        let _ = std::fs::remove_file(&path);
        let v: Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v.get("rounds").and_then(Value::as_u64), Some(1));
        let delta = v
            .get("last_round")
            .and_then(|lr| lr.get("metrics"))
            .and_then(|m| m.get("counters"))
            .and_then(|c| c.get("smt.solves"))
            .and_then(Value::as_u64);
        assert_eq!(delta, Some(3), "last_round carries the delta, not totals");
        let total = v
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .and_then(|c| c.get("smt.solves"))
            .and_then(Value::as_u64);
        assert_eq!(total, Some(8));
    }

    #[test]
    fn healthz_flags_failures_and_staleness() {
        let status = Status::new(Some(Duration::from_millis(20)));
        let (code, v) = healthz(&status);
        assert_eq!(code, 200);
        assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
        status.note_round(false, Duration::from_millis(1), None);
        let (code, v) = healthz(&status);
        assert_eq!(code, 503);
        assert_eq!(v.get("status").and_then(Value::as_str), Some("failing"));
        status.note_round(true, Duration::from_millis(1), None);
        assert_eq!(healthz(&status).0, 200);
        std::thread::sleep(Duration::from_millis(40));
        let (code, v) = healthz(&status);
        assert_eq!(code, 503, "quiet past the threshold must go stale");
        assert_eq!(v.get("status").and_then(Value::as_str), Some("stale"));
    }

    #[test]
    fn prometheus_text_renders_all_metric_kinds() {
        let reg = Registry::new();
        reg.counter("smt.solves").add(7);
        reg.gauge("orchestrator.queue_depth").set(3);
        for _ in 0..10 {
            reg.histogram("round.wall").record_ns(2_000_000); // 2ms
        }
        let status = Status::new(None);
        status.note_round(true, Duration::from_millis(1), None);
        let text = prometheus_text(&status, &reg);
        assert!(text.contains("# TYPE lightyear_smt_solves counter\nlightyear_smt_solves 7\n"));
        assert!(text.contains("lightyear_orchestrator_queue_depth 3\n"));
        assert!(text.contains("# TYPE lightyear_round_wall_seconds histogram\n"));
        assert!(text.contains("lightyear_round_wall_seconds_bucket{le=\"+Inf\"} 10\n"));
        assert!(text.contains("lightyear_round_wall_seconds_count 10\n"));
        assert!(text.contains("lightyear_round_wall_seconds{quantile=\"0.99\"}"));
        assert!(text.contains("lightyear_rounds_total 1\n"));
        assert!(text.contains("lightyear_ok 1\n"));
        // Cumulative le buckets: the 2ms observations appear from the
        // 2.5ms bound on.
        assert!(text.contains("lightyear_round_wall_seconds_bucket{le=\"0.0025\"} 10\n"));
        assert!(text.contains("lightyear_round_wall_seconds_bucket{le=\"0.001\"} 0\n"));
    }

    #[test]
    fn server_serves_metrics_healthz_trace_and_404s() {
        let reg = Registry::new();
        reg.counter("c").add(1);
        {
            let _s = crate::Span::start(reg.clone(), "unit", Vec::new());
        }
        let status = Status::new(None);
        let server = serve("127.0.0.1:0", reg.clone(), status.clone()).unwrap();
        let addr = server.addr();

        let (code, body) = get(addr, "/metrics");
        assert_eq!(code, 200);
        assert_eq!(body, status_body(&status, &reg), "scrape == renderer bytes");

        let (code, body) = get(addr, "/metrics?format=prom");
        assert_eq!(code, 200);
        assert!(body.contains("lightyear_c 1\n"));

        let (code, body) = get(addr, "/healthz");
        assert_eq!(code, 200);
        let v: Value = serde_json::from_str(&body).unwrap();
        assert!(v.get("uptime_seconds").and_then(Value::as_f64).is_some());

        let (code, body) = get(addr, "/trace?last=1");
        assert_eq!(code, 200);
        let v: Value = serde_json::from_str(&body).unwrap();
        assert_eq!(
            v.get("traceEvents").and_then(Value::as_array).map(Vec::len),
            Some(1)
        );

        assert_eq!(get(addr, "/nope").0, 404);

        // Non-GET is rejected.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut text = String::new();
        s.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 405"));

        drop(server); // graceful shutdown must not hang or panic
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may still accept briefly; a request must fail.
                std::thread::sleep(Duration::from_millis(50));
                TcpStream::connect(addr).is_err()
            }
        );
    }

    #[test]
    fn connection_cap_rejects_with_503() {
        let reg = Registry::new();
        let status = Status::new(None);
        let server = serve_with("127.0.0.1:0", reg, status, None, 2).unwrap();
        let addr = server.addr();

        // Two idle connections occupy both slots (their handler
        // threads block reading a request head that never comes).
        // Admission is asynchronous, so probe until the cap bites.
        let hold_a = TcpStream::connect(addr).unwrap();
        let hold_b = TcpStream::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(4);
        let mut saw_503 = false;
        while Instant::now() < deadline {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            let mut text = String::new();
            let _ = s.read_to_string(&mut text);
            if text.starts_with("HTTP/1.1 503") {
                saw_503 = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(saw_503, "over-cap connections must be rejected with 503");

        // Freeing the slots restores service.
        drop(hold_a);
        drop(hold_b);
        let deadline = Instant::now() + Duration::from_secs(4);
        let mut recovered = false;
        while Instant::now() < deadline {
            // While the cap is still draining, a probe can be reset
            // mid-read — treat any I/O error as "retry", not a failure.
            let ok = TcpStream::connect(addr).ok().and_then(|mut s| {
                s.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
                    .ok()?;
                let mut text = String::new();
                s.read_to_string(&mut text).ok()?;
                Some(text.starts_with("HTTP/1.1 200"))
            });
            if ok == Some(true) {
                recovered = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(recovered, "capacity must recover once connections close");
    }

    #[test]
    fn mounted_handler_sees_post_bodies_and_falls_through() {
        let reg = Registry::new();
        let status = Status::new(None);
        let handler: Handler = Arc::new(|req: &Request| {
            if req.path == "/echo" {
                Some(Response::text(
                    200,
                    format!("{}:{}", req.method, String::from_utf8_lossy(&req.body)),
                ))
            } else {
                None
            }
        });
        let server = serve_with(
            "127.0.0.1:0",
            reg.clone(),
            status.clone(),
            Some(handler),
            DEFAULT_MAX_CONNS,
        )
        .unwrap();
        let addr = server.addr();

        // POST body reaches the handler intact.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap();
        let mut text = String::new();
        s.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 200"), "got: {text:?}");
        assert!(text.ends_with("POST:hello"), "got: {text:?}");

        // Built-ins still win for their paths.
        let (code, body) = get(addr, "/metrics");
        assert_eq!(code, 200);
        assert_eq!(body, status_body(&status, &reg));

        // Handler declining keeps the historic answers.
        assert_eq!(get(addr, "/nope").0, 404);
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n")
            .unwrap();
        let mut text = String::new();
        s.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 405"), "got: {text:?}");

        // Oversized declared bodies are refused outright.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 999999999\r\n\r\n")
            .unwrap();
        let mut text = String::new();
        s.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 413"), "got: {text:?}");
    }
}
