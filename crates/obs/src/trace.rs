//! Span tracing: RAII guards record `(name, args, thread, start, dur)`
//! into a bounded ring on drop; the ring exports as Chrome
//! `trace_event` JSON (complete `"ph": "X"` events) that loads directly
//! in `chrome://tracing` and Perfetto.

use crate::metrics::{thread_index, Registry};
use serde_json::Value;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One completed span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Span name (a static call-site label, e.g. `"solve_group"`).
    pub name: &'static str,
    /// Rendered arguments, call-site order.
    pub args: Vec<(&'static str, String)>,
    /// Process-wide small thread index (see
    /// [`crate::metrics::thread_index`]).
    pub tid: u32,
    /// Start, nanoseconds since the registry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Bounded span storage: oldest spans are dropped once `cap` is
/// reached, and the drop count is surfaced in the export.
pub struct TraceRing {
    cap: usize,
    inner: Mutex<RingInner>,
}

struct RingInner {
    spans: VecDeque<SpanRecord>,
    dropped: u64,
}

impl TraceRing {
    pub(crate) fn new(cap: usize) -> TraceRing {
        TraceRing {
            cap: cap.max(1),
            inner: Mutex::new(RingInner {
                spans: VecDeque::new(),
                dropped: 0,
            }),
        }
    }

    pub(crate) fn push(&self, rec: SpanRecord) {
        let mut inner = self.inner.lock().unwrap();
        if inner.spans.len() == self.cap {
            inner.spans.pop_front();
            inner.dropped += 1;
        }
        inner.spans.push_back(rec);
    }

    pub(crate) fn drain_copy(&self) -> Vec<SpanRecord> {
        self.inner.lock().unwrap().spans.iter().cloned().collect()
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }
}

/// RAII span guard: records on drop. A disabled span is a `None` and
/// costs nothing beyond its construction branch.
pub struct Span {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    reg: Arc<Registry>,
    name: &'static str,
    args: Vec<(&'static str, String)>,
    start: Instant,
}

impl Span {
    /// The no-op span handed out when no sink is installed.
    pub fn disabled() -> Span {
        Span { active: None }
    }

    pub(crate) fn start(
        reg: Arc<Registry>,
        name: &'static str,
        args: Vec<(&'static str, String)>,
    ) -> Span {
        reg.note_call();
        Span {
            active: Some(ActiveSpan {
                reg,
                name,
                args,
                start: Instant::now(),
            }),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            let dur_ns = a.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            let start_ns = a
                .start
                .duration_since(a.reg.epoch())
                .as_nanos()
                .min(u64::MAX as u128) as u64;
            let rec = SpanRecord {
                name: a.name,
                args: a.args,
                tid: thread_index(),
                start_ns,
                dur_ns,
            };
            if let Some(sink) = a.reg.export() {
                sink.append(&crate::export::span_line(&rec));
            }
            a.reg.trace_ring().push(rec);
        }
    }
}

/// Render one span as a Chrome complete event (`"ph": "X"`).
fn event_json(s: &SpanRecord) -> Value {
    let args: Vec<(String, Value)> = s
        .args
        .iter()
        .map(|(k, v)| (k.to_string(), Value::Str(v.clone())))
        .collect();
    Value::Object(vec![
        ("name".to_string(), Value::Str(s.name.to_string())),
        ("cat".to_string(), Value::Str("lightyear".to_string())),
        ("ph".to_string(), Value::Str("X".to_string())),
        ("pid".to_string(), Value::UInt(1)),
        ("tid".to_string(), Value::UInt(s.tid as u64)),
        // trace_event timestamps are microseconds; keep sub-us
        // precision as a fraction so short solver spans stay visible.
        ("ts".to_string(), Value::Float(s.start_ns as f64 / 1_000.0)),
        (
            "dur".to_string(),
            Value::Float((s.dur_ns as f64 / 1_000.0).max(0.001)),
        ),
        ("args".to_string(), Value::Object(args)),
    ])
}

impl Registry {
    /// The ring's spans as a Chrome `trace_event` array, sorted by
    /// start time.
    pub fn chrome_trace_events(&self) -> Value {
        let mut spans = self.spans();
        spans.sort_by_key(|s| (s.start_ns, std::cmp::Reverse(s.dur_ns)));
        Value::Array(spans.iter().map(event_json).collect())
    }

    /// The JSON-object trace format Perfetto and `chrome://tracing`
    /// load directly: `{"traceEvents": [...], ...}`. Extra top-level
    /// keys are ignored by viewers, which is what makes the profile
    /// report self-contained (metrics ride alongside the trace).
    pub fn chrome_trace(&self) -> Value {
        Value::Object(vec![
            ("traceEvents".to_string(), self.chrome_trace_events()),
            ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
            (
                "spans_dropped".to_string(),
                Value::UInt(self.trace_ring().dropped()),
            ),
        ])
    }

    /// Like [`Registry::chrome_trace`] but keeping only the `n` most
    /// recently *completed* spans (the `/trace?last=N` view — a bounded
    /// answer no matter how long the daemon has run).
    pub fn chrome_trace_last(&self, n: usize) -> Value {
        let mut spans = self.spans();
        let skipped = spans.len().saturating_sub(n);
        spans.drain(..skipped);
        spans.sort_by_key(|s| (s.start_ns, std::cmp::Reverse(s.dur_ns)));
        Value::Object(vec![
            (
                "traceEvents".to_string(),
                Value::Array(spans.iter().map(event_json).collect()),
            ),
            ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
            (
                "spans_dropped".to_string(),
                Value::UInt(self.trace_ring().dropped() + skipped as u64),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let reg = Registry::with_span_capacity(4);
        for i in 0..10u64 {
            reg.trace_ring().push(SpanRecord {
                name: "s",
                args: vec![("i", i.to_string())],
                tid: 0,
                start_ns: i,
                dur_ns: 1,
            });
        }
        let spans = reg.spans();
        assert_eq!(spans.len(), 4);
        assert_eq!(reg.trace_ring().dropped(), 6);
        assert_eq!(spans[0].args[0].1, "6"); // oldest surviving
    }

    #[test]
    fn guard_records_nested_spans_on_one_thread() {
        let reg = Registry::new();
        {
            let _outer = Span::start(reg.clone(), "outer", Vec::new());
            std::thread::sleep(std::time::Duration::from_millis(1));
            {
                let _inner = Span::start(reg.clone(), "inner", Vec::new());
            }
        }
        let spans = reg.spans();
        assert_eq!(spans.len(), 2);
        // Inner completes (and records) first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        let (inner, outer) = (&spans[0], &spans[1]);
        assert_eq!(inner.tid, outer.tid);
        // Strict nesting: inner starts after outer and ends before it.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
    }

    #[test]
    fn chrome_export_is_valid_trace_event_json() {
        let reg = Registry::new();
        {
            let _s = Span::start(reg.clone(), "solve_group", vec![("group", "e1".into())]);
        }
        let v = reg.chrome_trace();
        let text = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        let events = back
            .as_object()
            .unwrap()
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v.as_array().unwrap())
            .unwrap();
        assert_eq!(events.len(), 1);
        let ev = events[0].as_object().unwrap();
        let get = |key: &str| ev.iter().find(|(k, _)| k == key).map(|(_, v)| v).unwrap();
        assert_eq!(get("ph").as_str(), Some("X"));
        assert_eq!(get("name").as_str(), Some("solve_group"));
        assert!(get("ts").as_f64().is_some());
        assert!(get("dur").as_f64().unwrap() > 0.0);
    }
}
