//! The metrics registry: named counters, gauges and histograms behind
//! lock-sharded storage. Writers touch a per-thread shard (one relaxed
//! `fetch_add`), readers merge all shards, so concurrent increments
//! from the work-stealing pool are exact without a hot lock.

use crate::trace::{SpanRecord, TraceRing};
use serde_json::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Number of write shards per metric. Threads hash onto shards by a
/// process-wide thread index, so two executor workers rarely share a
/// cache line even under heavy steal traffic.
pub const SHARDS: usize = 16;

/// Histogram bucket upper bounds in microseconds. The last implicit
/// bucket is overflow. These are part of the exported format and
/// pinned by a test — do not reorder or edit without bumping consumers.
pub const BUCKET_BOUNDS_US: [u64; 19] = [
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
    250_000, 500_000, 1_000_000,
];

/// Bucket count including the overflow bucket.
pub const NUM_BUCKETS: usize = BUCKET_BOUNDS_US.len() + 1;

#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A process-wide small integer id for the current thread, used to
/// pick metric shards and to label trace events.
pub fn thread_index() -> u32 {
    use std::cell::Cell;
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TID: Cell<u32> = const { Cell::new(u32::MAX) };
    }
    TID.with(|t| {
        let mut id = t.get();
        if id == u32::MAX {
            id = NEXT.fetch_add(1, Ordering::Relaxed) as u32;
            t.set(id);
        }
        id
    })
}

#[inline]
fn shard() -> usize {
    thread_index() as usize % SHARDS
}

/// A monotone counter, sharded per thread.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// Add `n`. One uncontended atomic on the caller's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Merged total across shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A last-write / high-water gauge (single atomic: gauges are not on
/// the per-event hot path).
#[derive(Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Set the gauge (last write wins).
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if larger (high-water mark).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct HistShard {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum_ns: AtomicU64,
}

/// A duration histogram with fixed exponential buckets
/// ([`BUCKET_BOUNDS_US`]), sharded per thread like [`Counter`].
#[derive(Default)]
pub struct Histogram {
    shards: [HistShard; SHARDS],
}

impl Histogram {
    /// Index of the bucket a value in microseconds falls into.
    pub fn bucket_index(us: u64) -> usize {
        BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(BUCKET_BOUNDS_US.len())
    }

    /// Record one observation of `ns` nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        let sh = &self.shards[shard()];
        sh.buckets[Self::bucket_index(ns / 1_000)].fetch_add(1, Ordering::Relaxed);
        sh.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Merged snapshot across shards.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; NUM_BUCKETS];
        let mut sum_ns = 0u64;
        for sh in &self.shards {
            for (b, src) in buckets.iter_mut().zip(sh.buckets.iter()) {
                *b += src.load(Ordering::Relaxed);
            }
            sum_ns += sh.sum_ns.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: buckets.iter().sum(),
            sum_ns,
            buckets,
        }
    }
}

/// Point-in-time merged view of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed durations in nanoseconds.
    pub sum_ns: u64,
    /// Per-bucket counts, `BUCKET_BOUNDS_US` order plus overflow.
    pub buckets: Vec<u64>,
}

/// The sink: named metrics plus the span ring. Created once per
/// profiled run and installed globally via [`crate::install_registry`].
pub struct Registry {
    epoch: Instant,
    counters: RwLock<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
    calls: Counter,
    trace: TraceRing,
}

impl Registry {
    /// A registry with the default span-ring capacity (65 536 spans).
    pub fn new() -> Arc<Registry> {
        Self::with_span_capacity(65_536)
    }

    /// A registry whose span ring keeps at most `cap` spans (oldest
    /// dropped first; the drop count is reported in the trace export).
    pub fn with_span_capacity(cap: usize) -> Arc<Registry> {
        Arc::new(Registry {
            epoch: Instant::now(),
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            calls: Counter::default(),
            trace: TraceRing::new(cap),
        })
    }

    /// Count one instrumentation call. The disabled-overhead bench
    /// multiplies this by the measured cost of the disabled fast path
    /// to bound what the instrumentation costs a run with no sink.
    #[inline]
    pub(crate) fn note_call(&self) {
        self.calls.add(1);
    }

    /// Total instrumentation calls routed to this registry.
    pub fn calls(&self) -> u64 {
        self.calls.value()
    }

    /// The instant all span timestamps are relative to.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    pub(crate) fn trace_ring(&self) -> &TraceRing {
        &self.trace
    }

    fn named<T: Default>(
        map: &RwLock<BTreeMap<&'static str, Arc<T>>>,
        name: &'static str,
    ) -> Arc<T> {
        if let Some(m) = map.read().unwrap().get(name) {
            return m.clone();
        }
        map.write().unwrap().entry(name).or_default().clone()
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Self::named(&self.counters, name)
    }

    /// The gauge registered under `name`.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Self::named(&self.gauges, name)
    }

    /// The histogram registered under `name`.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Self::named(&self.histograms, name)
    }

    /// All spans currently in the ring, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.trace.drain_copy()
    }

    /// Total span durations aggregated by `(span name, first arg)` —
    /// the source for "hottest check groups" in the profile report.
    pub fn span_totals(&self) -> BTreeMap<(String, String), (u64, u64)> {
        let mut totals: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
        for s in self.spans() {
            let label = s.args.first().map(|(_, v)| v.clone()).unwrap_or_default();
            let e = totals.entry((s.name.to_string(), label)).or_insert((0, 0));
            e.0 += 1;
            e.1 += s.dur_ns;
        }
        totals
    }

    /// Merged point-in-time view of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.to_string(), v.value()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.to_string(), v.value()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.to_string(), v.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time merged view of a [`Registry`].
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A counter's total (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value (0 when never set).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// JSON rendering: `{"counters": {...}, "gauges": {...},
    /// "histograms": {name: {count, sum_ns, buckets}}}`.
    pub fn to_json(&self) -> Value {
        let counters: Vec<(String, Value)> = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Value::UInt(*v)))
            .collect();
        let gauges: Vec<(String, Value)> = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), Value::UInt(*v)))
            .collect();
        let hists: Vec<(String, Value)> = self
            .histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    Value::Object(vec![
                        ("count".to_string(), Value::UInt(h.count)),
                        ("sum_ns".to_string(), Value::UInt(h.sum_ns)),
                        (
                            "buckets".to_string(),
                            Value::Array(h.buckets.iter().map(|&b| Value::UInt(b)).collect()),
                        ),
                    ]),
                )
            })
            .collect();
        Value::Object(vec![
            ("counters".to_string(), Value::Object(counters)),
            ("gauges".to_string(), Value::Object(gauges)),
            ("histograms".to_string(), Value::Object(hists)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_merges_across_threads_exactly() {
        let c = Arc::new(Counter::default());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.value(), 80_000);
    }

    #[test]
    fn histogram_bucket_boundaries_are_stable() {
        // Pinned: these indices are part of the exported format.
        assert_eq!(NUM_BUCKETS, 20);
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(10), 3);
        assert_eq!(Histogram::bucket_index(11), 4);
        assert_eq!(Histogram::bucket_index(1_000), 9);
        assert_eq!(Histogram::bucket_index(999_999), 18);
        assert_eq!(Histogram::bucket_index(1_000_000), 18);
        assert_eq!(Histogram::bucket_index(1_000_001), 19);
        assert_eq!(Histogram::bucket_index(u64::MAX), 19);
        // Boundary values land exactly on their own bucket edge.
        for (i, &b) in BUCKET_BOUNDS_US.iter().enumerate() {
            assert_eq!(Histogram::bucket_index(b), i, "bound {b}us moved");
        }
    }

    #[test]
    fn histogram_records_into_expected_buckets() {
        let h = Histogram::default();
        h.record_ns(500); // 0us -> bucket 0
        h.record_ns(1_000); // 1us -> bucket 0
        h.record_ns(7_000); // 7us -> bucket 3 (<=10)
        h.record_ns(3_000_000_000); // 3s -> overflow
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum_ns, 3_000_008_500);
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[3], 1);
        assert_eq!(s.buckets[NUM_BUCKETS - 1], 1);
    }

    #[test]
    fn registry_names_are_interned_once() {
        let reg = Registry::new();
        let a = reg.counter("same");
        let b = reg.counter("same");
        a.add(1);
        b.add(2);
        assert_eq!(reg.snapshot().counter("same"), 3);
    }

    #[test]
    fn snapshot_json_shape() {
        let reg = Registry::new();
        reg.counter("c").add(4);
        reg.gauge("g").set(2);
        reg.histogram("h").record_ns(10_000);
        let v = reg.snapshot().to_json();
        let text = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        let obj = back.as_object().unwrap();
        let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["counters", "gauges", "histograms"]);
    }
}
