//! The metrics registry: named counters, gauges and histograms behind
//! lock-sharded storage. Writers touch a per-thread shard (one relaxed
//! `fetch_add`), readers merge all shards, so concurrent increments
//! from the work-stealing pool are exact without a hot lock.

use crate::export::{EventRecord, EventRing, ExportSink, Level, EVENT_RING_CAP};
use crate::trace::{SpanRecord, TraceRing};
use serde_json::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Number of write shards per metric. Threads hash onto shards by a
/// process-wide thread index, so two executor workers rarely share a
/// cache line even under heavy steal traffic.
pub const SHARDS: usize = 16;

/// Histogram bucket upper bounds in microseconds. The last implicit
/// bucket is overflow. These are part of the exported format and
/// pinned by a test — do not reorder or edit without bumping consumers.
pub const BUCKET_BOUNDS_US: [u64; 19] = [
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
    250_000, 500_000, 1_000_000,
];

/// Bucket count including the overflow bucket.
pub const NUM_BUCKETS: usize = BUCKET_BOUNDS_US.len() + 1;

#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A process-wide small integer id for the current thread, used to
/// pick metric shards and to label trace events.
pub fn thread_index() -> u32 {
    use std::cell::Cell;
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TID: Cell<u32> = const { Cell::new(u32::MAX) };
    }
    TID.with(|t| {
        let mut id = t.get();
        if id == u32::MAX {
            id = NEXT.fetch_add(1, Ordering::Relaxed) as u32;
            t.set(id);
        }
        id
    })
}

#[inline]
fn shard() -> usize {
    thread_index() as usize % SHARDS
}

/// A monotone counter, sharded per thread.
///
/// Overflow **clamps and flags** instead of wrapping: a wrapped
/// `u64` reads as a plausible small total, which is the worst failure
/// mode a metric can have; a clamped `u64::MAX` with
/// [`Counter::saturated`] set cannot be mistaken for a real value.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
    saturated: AtomicBool,
}

impl Counter {
    /// Add `n`. One uncontended atomic on the caller's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        let sh = &self.shards[shard()].0;
        let prev = sh.fetch_add(n, Ordering::Relaxed);
        if prev.checked_add(n).is_none() {
            sh.store(u64::MAX, Ordering::Relaxed);
            self.saturated.store(true, Ordering::Relaxed);
        }
    }

    /// Merged total across shards; `u64::MAX` once saturated (any
    /// shard wrapped, or the cross-shard sum itself overflows).
    pub fn value(&self) -> u64 {
        let mut total = 0u64;
        for s in &self.shards {
            match total.checked_add(s.0.load(Ordering::Relaxed)) {
                Some(t) => total = t,
                None => {
                    self.saturated.store(true, Ordering::Relaxed);
                    return u64::MAX;
                }
            }
        }
        if self.saturated.load(Ordering::Relaxed) {
            u64::MAX
        } else {
            total
        }
    }

    /// True once the counter has overflowed and been clamped.
    pub fn saturated(&self) -> bool {
        self.saturated.load(Ordering::Relaxed)
    }
}

/// A last-write / high-water gauge (single atomic: gauges are not on
/// the per-event hot path).
#[derive(Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Set the gauge (last write wins).
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if larger (high-water mark).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct HistShard {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum_ns: AtomicU64,
}

/// A duration histogram with fixed exponential buckets
/// ([`BUCKET_BOUNDS_US`]), sharded per thread like [`Counter`].
/// Overflow of the duration sum (or a bucket count) clamps and flags
/// rather than wrapping, same contract as [`Counter`].
#[derive(Default)]
pub struct Histogram {
    shards: [HistShard; SHARDS],
    saturated: AtomicBool,
}

impl Histogram {
    /// Index of the bucket a value in microseconds falls into.
    pub fn bucket_index(us: u64) -> usize {
        BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(BUCKET_BOUNDS_US.len())
    }

    /// Record one observation of `ns` nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        let sh = &self.shards[shard()];
        let bucket = &sh.buckets[Self::bucket_index(ns / 1_000)];
        if bucket.fetch_add(1, Ordering::Relaxed) == u64::MAX {
            bucket.store(u64::MAX, Ordering::Relaxed);
            self.saturated.store(true, Ordering::Relaxed);
        }
        let prev = sh.sum_ns.fetch_add(ns, Ordering::Relaxed);
        if prev.checked_add(ns).is_none() {
            sh.sum_ns.store(u64::MAX, Ordering::Relaxed);
            self.saturated.store(true, Ordering::Relaxed);
        }
    }

    /// Merged snapshot across shards. Saturated totals are clamped to
    /// `u64::MAX` (see [`Histogram::saturated`]).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; NUM_BUCKETS];
        let mut sum_ns = 0u64;
        for sh in &self.shards {
            for (b, src) in buckets.iter_mut().zip(sh.buckets.iter()) {
                *b = b.saturating_add(src.load(Ordering::Relaxed));
            }
            match sum_ns.checked_add(sh.sum_ns.load(Ordering::Relaxed)) {
                Some(t) => sum_ns = t,
                None => {
                    sum_ns = u64::MAX;
                    self.saturated.store(true, Ordering::Relaxed);
                }
            }
        }
        if self.saturated.load(Ordering::Relaxed) {
            sum_ns = u64::MAX;
        }
        HistogramSnapshot {
            count: buckets.iter().fold(0u64, |a, &b| a.saturating_add(b)),
            sum_ns,
            buckets,
        }
    }

    /// True once any bucket count or the duration sum has overflowed
    /// and been clamped.
    pub fn saturated(&self) -> bool {
        self.saturated.load(Ordering::Relaxed)
    }
}

/// Point-in-time merged view of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed durations in nanoseconds.
    pub sum_ns: u64,
    /// Per-bucket counts, `BUCKET_BOUNDS_US` order plus overflow.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// The estimated `q`-quantile (0 < q <= 1) in nanoseconds, by
    /// linear interpolation inside the bucket the quantile rank lands
    /// in (the same estimator as Prometheus' `histogram_quantile`).
    /// Ranks that land in the overflow bucket are clamped to the last
    /// finite bound — the estimate is then a lower bound. 0 when the
    /// histogram is empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).ceil().clamp(1.0, self.count as f64) as u64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if n == 0 || cum < rank {
                continue;
            }
            let last = BUCKET_BOUNDS_US.len() - 1;
            if i > last {
                return BUCKET_BOUNDS_US[last] * 1_000;
            }
            let lo_us = if i == 0 { 0 } else { BUCKET_BOUNDS_US[i - 1] };
            let hi_us = BUCKET_BOUNDS_US[i];
            let frac = (rank - (cum - n)) as f64 / n as f64;
            return ((lo_us as f64 + frac * (hi_us - lo_us) as f64) * 1_000.0) as u64;
        }
        0
    }

    /// This snapshot minus `prev` (per-bucket, count and sum), i.e. the
    /// observations recorded between the two snapshots.
    fn delta_since(&self, prev: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.saturating_sub(prev.count),
            sum_ns: self.sum_ns.saturating_sub(prev.sum_ns),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .map(|(i, &b)| b.saturating_sub(prev.buckets.get(i).copied().unwrap_or(0)))
                .collect(),
        }
    }
}

/// The sink: named metrics plus the span ring. Created once per
/// profiled run and installed globally via [`crate::install_registry`].
pub struct Registry {
    epoch: Instant,
    counters: RwLock<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
    calls: Counter,
    trace: TraceRing,
    events: EventRing,
    last_error: Mutex<Option<String>>,
    export: RwLock<Option<Arc<ExportSink>>>,
}

impl Registry {
    /// A registry with the default span-ring capacity (65 536 spans).
    pub fn new() -> Arc<Registry> {
        Self::with_span_capacity(65_536)
    }

    /// A registry whose span ring keeps at most `cap` spans (oldest
    /// dropped first; the drop count is reported in the trace export).
    pub fn with_span_capacity(cap: usize) -> Arc<Registry> {
        Arc::new(Registry {
            epoch: Instant::now(),
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            calls: Counter::default(),
            trace: TraceRing::new(cap),
            events: EventRing::new(EVENT_RING_CAP),
            last_error: Mutex::new(None),
            export: RwLock::new(None),
        })
    }

    /// Count one instrumentation call. The disabled-overhead bench
    /// multiplies this by the measured cost of the disabled fast path
    /// to bound what the instrumentation costs a run with no sink.
    #[inline]
    pub(crate) fn note_call(&self) {
        self.calls.add(1);
    }

    /// Total instrumentation calls routed to this registry.
    pub fn calls(&self) -> u64 {
        self.calls.value()
    }

    /// The instant all span timestamps are relative to.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    pub(crate) fn trace_ring(&self) -> &TraceRing {
        &self.trace
    }

    fn named<T: Default>(
        map: &RwLock<BTreeMap<&'static str, Arc<T>>>,
        name: &'static str,
    ) -> Arc<T> {
        if let Some(m) = map.read().unwrap().get(name) {
            return m.clone();
        }
        map.write().unwrap().entry(name).or_default().clone()
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Self::named(&self.counters, name)
    }

    /// The counter registered under a runtime-built name, e.g. a
    /// per-tenant label like `serve.requests{tenant=a}`. The name is
    /// leaked once on first registration (the registry stores
    /// `&'static str` keys); lookups never allocate, so the leak is
    /// bounded by the number of distinct labels ever used.
    pub fn counter_labeled(&self, name: &str) -> Arc<Counter> {
        if let Some(m) = self.counters.read().unwrap().get(name) {
            return m.clone();
        }
        let mut map = self.counters.write().unwrap();
        if let Some(m) = map.get(name) {
            return m.clone();
        }
        let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
        map.entry(leaked).or_default().clone()
    }

    /// The gauge registered under `name`.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Self::named(&self.gauges, name)
    }

    /// The histogram registered under `name`.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Self::named(&self.histograms, name)
    }

    /// All spans currently in the ring, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.trace.drain_copy()
    }

    /// All events currently in the ring, in emission order.
    pub fn events(&self) -> Vec<EventRecord> {
        self.events.drain_copy()
    }

    /// Route one event: ring it, latch error-level events as the last
    /// error, and stream it to the export sink if one is attached.
    pub fn record_event(&self, rec: EventRecord) {
        self.note_call();
        if rec.level == Level::Error {
            *self.last_error.lock().unwrap() = Some(rec.render());
        }
        if let Some(sink) = self.export() {
            sink.append(&rec.to_json());
        }
        self.events.push(rec);
    }

    /// Latch a free-form last error (the flight dump's headline) and
    /// ring it as an error event.
    pub fn record_error(&self, msg: &str) {
        self.record_event(EventRecord::new(
            Level::Error,
            "error",
            vec![("message", msg.to_string())],
            self.now_ns(),
        ));
    }

    /// The most recent error-level event, rendered.
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().unwrap().clone()
    }

    /// Nanoseconds since the registry epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Attach (or with `None` detach) a streaming JSONL sink: every
    /// event and completed span from now on is appended and flushed as
    /// one line.
    pub fn set_export(&self, sink: Option<Arc<ExportSink>>) {
        *self.export.write().unwrap() = sink;
    }

    /// The attached export sink, if any.
    pub fn export(&self) -> Option<Arc<ExportSink>> {
        self.export.read().unwrap().clone()
    }

    /// The flight-recorder dump: one self-contained post-mortem JSON —
    /// the recent-span ring as a loadable Chrome trace, the recent
    /// event ring, the last error, and the full metrics snapshot.
    pub fn flight_json(&self) -> Value {
        let mut v = self.chrome_trace();
        if let Value::Object(map) = &mut v {
            map.push((
                "events".to_string(),
                Value::Array(self.events().iter().map(EventRecord::to_json).collect()),
            ));
            map.push((
                "events_dropped".to_string(),
                Value::UInt(self.events.dropped()),
            ));
            map.push((
                "last_error".to_string(),
                match self.last_error() {
                    Some(e) => Value::Str(e),
                    None => Value::Null,
                },
            ));
            map.push(("metrics".to_string(), self.snapshot().to_json()));
        }
        v
    }

    /// Total span durations aggregated by `(span name, first arg)` —
    /// the source for "hottest check groups" in the profile report.
    pub fn span_totals(&self) -> BTreeMap<(String, String), (u64, u64)> {
        let mut totals: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
        for s in self.spans() {
            let label = s.args.first().map(|(_, v)| v.clone()).unwrap_or_default();
            let e = totals.entry((s.name.to_string(), label)).or_insert((0, 0));
            e.0 += 1;
            e.1 += s.dur_ns;
        }
        totals
    }

    /// Merged point-in-time view of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.to_string(), v.value()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.to_string(), v.value()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.to_string(), v.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time merged view of a [`Registry`].
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A counter's total (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value (0 when never set).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// This snapshot minus `prev`: per-name counter and histogram
    /// differences (what happened *between* the two snapshots — the
    /// source of per-round rates), with gauges passed through as their
    /// current level (a gauge delta is meaningless).
    pub fn delta_since(&self, prev: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, &v)| (k.clone(), v.saturating_sub(prev.counter(k))))
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| {
                    let d = match prev.histograms.get(k) {
                        Some(p) => h.delta_since(p),
                        None => h.clone(),
                    };
                    (k.clone(), d)
                })
                .collect(),
        }
    }

    /// JSON rendering: `{"counters": {...}, "gauges": {...},
    /// "histograms": {name: {count, sum_ns, p50_ns, p95_ns, p99_ns,
    /// buckets}}}`.
    pub fn to_json(&self) -> Value {
        let counters: Vec<(String, Value)> = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Value::UInt(*v)))
            .collect();
        let gauges: Vec<(String, Value)> = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), Value::UInt(*v)))
            .collect();
        let hists: Vec<(String, Value)> = self
            .histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    Value::Object(vec![
                        ("count".to_string(), Value::UInt(h.count)),
                        ("sum_ns".to_string(), Value::UInt(h.sum_ns)),
                        ("p50_ns".to_string(), Value::UInt(h.quantile_ns(0.50))),
                        ("p95_ns".to_string(), Value::UInt(h.quantile_ns(0.95))),
                        ("p99_ns".to_string(), Value::UInt(h.quantile_ns(0.99))),
                        (
                            "buckets".to_string(),
                            Value::Array(h.buckets.iter().map(|&b| Value::UInt(b)).collect()),
                        ),
                    ]),
                )
            })
            .collect();
        Value::Object(vec![
            ("counters".to_string(), Value::Object(counters)),
            ("gauges".to_string(), Value::Object(gauges)),
            ("histograms".to_string(), Value::Object(hists)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_merges_across_threads_exactly() {
        let c = Arc::new(Counter::default());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.value(), 80_000);
    }

    #[test]
    fn histogram_bucket_boundaries_are_stable() {
        // Pinned: these indices are part of the exported format.
        assert_eq!(NUM_BUCKETS, 20);
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(10), 3);
        assert_eq!(Histogram::bucket_index(11), 4);
        assert_eq!(Histogram::bucket_index(1_000), 9);
        assert_eq!(Histogram::bucket_index(999_999), 18);
        assert_eq!(Histogram::bucket_index(1_000_000), 18);
        assert_eq!(Histogram::bucket_index(1_000_001), 19);
        assert_eq!(Histogram::bucket_index(u64::MAX), 19);
        // Boundary values land exactly on their own bucket edge.
        for (i, &b) in BUCKET_BOUNDS_US.iter().enumerate() {
            assert_eq!(Histogram::bucket_index(b), i, "bound {b}us moved");
        }
    }

    #[test]
    fn histogram_records_into_expected_buckets() {
        let h = Histogram::default();
        h.record_ns(500); // 0us -> bucket 0
        h.record_ns(1_000); // 1us -> bucket 0
        h.record_ns(7_000); // 7us -> bucket 3 (<=10)
        h.record_ns(3_000_000_000); // 3s -> overflow
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum_ns, 3_000_008_500);
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[3], 1);
        assert_eq!(s.buckets[NUM_BUCKETS - 1], 1);
    }

    #[test]
    fn counter_overflow_clamps_and_flags() {
        // Regression for zoo-scale wrap-around: totals sized during
        // 50-router runs wrapped silently past u64::MAX. Overflow must
        // clamp to u64::MAX and flag, never wrap to a small value.
        let c = Counter::default();
        c.add(u64::MAX - 1);
        assert_eq!(c.value(), u64::MAX - 1);
        assert!(!c.saturated());
        c.add(5); // wraps the shard
        assert_eq!(c.value(), u64::MAX);
        assert!(c.saturated());
        // Saturation is sticky: further adds cannot shrink the value.
        c.add(1);
        assert_eq!(c.value(), u64::MAX);
    }

    #[test]
    fn histogram_sum_overflow_clamps_and_flags() {
        let h = Histogram::default();
        h.record_ns(u64::MAX - 10);
        assert!(!h.saturated());
        h.record_ns(u64::MAX - 10); // sum wraps
        let s = h.snapshot();
        assert!(h.saturated());
        assert_eq!(s.sum_ns, u64::MAX);
        assert_eq!(s.count, 2); // counts stay honest
        assert_eq!(s.buckets[NUM_BUCKETS - 1], 2);
    }

    #[test]
    fn registry_names_are_interned_once() {
        let reg = Registry::new();
        let a = reg.counter("same");
        let b = reg.counter("same");
        a.add(1);
        b.add(2);
        assert_eq!(reg.snapshot().counter("same"), 3);
    }

    #[test]
    fn quantiles_match_known_distributions() {
        // Uniform over [0, 100ms): 1000 observations, one per 100us.
        // Every rank interpolates close to its true value (bucket edges
        // bound the error by the bucket width).
        let h = Histogram::default();
        for i in 0..1_000u64 {
            h.record_ns(i * 100_000);
        }
        let s = h.snapshot();
        let p50 = s.quantile_ns(0.50);
        let p95 = s.quantile_ns(0.95);
        let p99 = s.quantile_ns(0.99);
        // True p50 = 50ms, inside the (25ms, 50ms] bucket.
        assert!((25_000_000..=50_000_000).contains(&p50), "p50={p50}");
        // True p95 = 95ms, inside the (50ms, 100ms] bucket.
        assert!((50_000_000..=100_000_000).contains(&p95), "p95={p95}");
        assert!(p99 >= p95 && p95 >= p50, "quantiles must be monotone");
        // Interpolation should land within one bucket-width of truth.
        assert!((p50 as i64 - 50_000_000).unsigned_abs() <= 25_000_000);
        assert!((p95 as i64 - 95_000_000).unsigned_abs() <= 50_000_000);

        // A point mass: every observation in one bucket — all quantiles
        // land inside that bucket's bounds.
        let h = Histogram::default();
        for _ in 0..100 {
            h.record_ns(7_000); // 7us -> (5us, 10us]
        }
        let s = h.snapshot();
        for q in [0.5, 0.95, 0.99] {
            let v = s.quantile_ns(q);
            assert!((5_000..=10_000).contains(&v), "q={q} v={v}");
        }

        // Bimodal: 90 fast (≈1us) + 10 slow (≈900ms). p50 sits in the
        // fast mode, p95/p99 in the slow mode.
        let h = Histogram::default();
        for _ in 0..90 {
            h.record_ns(1_000);
        }
        for _ in 0..10 {
            h.record_ns(900_000_000);
        }
        let s = h.snapshot();
        assert!(s.quantile_ns(0.50) <= 1_000);
        assert!(s.quantile_ns(0.95) >= 500_000_000);
        assert!(s.quantile_ns(0.99) >= 500_000_000);

        // Overflow clamps to the last finite bound, empty returns 0.
        let h = Histogram::default();
        h.record_ns(10_000_000_000);
        assert_eq!(h.snapshot().quantile_ns(0.99), 1_000_000 * 1_000);
        let empty = HistogramSnapshot {
            count: 0,
            sum_ns: 0,
            buckets: vec![0; NUM_BUCKETS],
        };
        assert_eq!(empty.quantile_ns(0.5), 0);
    }

    #[test]
    fn snapshot_delta_isolates_a_round() {
        let reg = Registry::new();
        reg.counter("solves").add(10);
        reg.gauge("depth").set(3);
        reg.histogram("lat").record_ns(5_000);
        let before = reg.snapshot();
        reg.counter("solves").add(7);
        reg.counter("fresh").add(2); // appears only after `before`
        reg.gauge("depth").set(9);
        reg.histogram("lat").record_ns(50_000);
        let after = reg.snapshot();
        let d = after.delta_since(&before);
        assert_eq!(d.counter("solves"), 7);
        assert_eq!(d.counter("fresh"), 2);
        // Gauges pass through as current levels.
        assert_eq!(d.gauge("depth"), 9);
        let lat = &d.histograms["lat"];
        assert_eq!(lat.count, 1);
        assert_eq!(lat.sum_ns, 50_000);
    }

    #[test]
    fn snapshot_json_shape() {
        let reg = Registry::new();
        reg.counter("c").add(4);
        reg.gauge("g").set(2);
        reg.histogram("h").record_ns(10_000);
        let v = reg.snapshot().to_json();
        let text = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        let obj = back.as_object().unwrap();
        let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["counters", "gauges", "histograms"]);
    }
}
