//! Observability for the verifier pipeline: a lock-sharded metrics
//! registry (counters / gauges / histograms), a lightweight span API
//! with a bounded in-memory ring, and a Chrome `trace_event` exporter
//! so a verify run opens directly in `chrome://tracing` / Perfetto.
//!
//! The design constraint is that instrumentation must be *near-free
//! when no sink is installed*: every event entry point loads one
//! relaxed atomic and returns. Hot-path shards are per-thread, merged
//! only on read, so the work-stealing executor pays a single
//! uncontended `fetch_add` per event when a sink IS installed.
//!
//! ```
//! let reg = obs::install();
//! {
//!     let _s = obs::span!("encode_group", group = "R1 -> R2");
//!     obs::add("engine.checks_posed", 3);
//! }
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("engine.checks_posed"), 3);
//! obs::uninstall();
//! ```

pub mod export;
pub mod http;
pub mod metrics;
pub mod trace;

pub use export::{EventRecord, ExportSink, Level};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use trace::{Span, SpanRecord};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<Registry>>> = RwLock::new(None);

/// Whether a sink is installed. One relaxed load — this is the whole
/// cost of every instrumentation point in a run without observability.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Install a fresh registry as the process-wide sink and return it.
/// Replaces any previously installed sink.
pub fn install() -> Arc<Registry> {
    let reg = Registry::new();
    install_registry(reg.clone());
    reg
}

/// Install an existing registry as the process-wide sink.
pub fn install_registry(reg: Arc<Registry>) {
    let mut sink = SINK.write().unwrap();
    *sink = Some(reg);
    ENABLED.store(true, Ordering::Release);
}

/// Remove the sink (instrumentation reverts to the near-free path)
/// and hand back the registry so its contents can still be read.
pub fn uninstall() -> Option<Arc<Registry>> {
    let mut sink = SINK.write().unwrap();
    ENABLED.store(false, Ordering::Release);
    sink.take()
}

/// The currently installed registry, if any.
pub fn sink() -> Option<Arc<Registry>> {
    if !enabled() {
        return None;
    }
    SINK.read().unwrap().clone()
}

/// Run `f` against the installed registry; `None` when disabled.
#[inline]
pub fn with<R>(f: impl FnOnce(&Registry) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    let guard = SINK.read().unwrap();
    guard.as_ref().map(|reg| f(reg))
}

/// Bump a named counter. No-op (one atomic load) when disabled.
#[inline]
pub fn add(name: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    with(|reg| {
        reg.note_call();
        reg.counter(name).add(n);
    });
}

/// Set a named gauge to `v`. No-op when disabled.
#[inline]
pub fn gauge_set(name: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    with(|reg| {
        reg.note_call();
        reg.gauge(name).set(v);
    });
}

/// Raise a named gauge to `v` if `v` is larger (high-water mark).
#[inline]
pub fn gauge_max(name: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    with(|reg| {
        reg.note_call();
        reg.gauge(name).set_max(v);
    });
}

/// Record a duration (nanoseconds) into a named histogram.
#[inline]
pub fn observe_ns(name: &'static str, ns: u64) {
    if !enabled() {
        return;
    }
    with(|reg| {
        reg.note_call();
        reg.histogram(name).record_ns(ns);
    });
}

/// Record a [`std::time::Duration`] into a named histogram.
#[inline]
pub fn observe(name: &'static str, d: std::time::Duration) {
    if !enabled() {
        return;
    }
    observe_ns(name, d.as_nanos().min(u64::MAX as u128) as u64);
}

/// Peak resident-set size (`VmHWM`) of the current process in
/// kilobytes, read from `/proc/self/status`. `0` when the field is
/// unavailable (non-Linux, restricted procfs) — callers treat that as
/// "unknown", never as an actual zero footprint.
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse().ok())
        })
        .unwrap_or(0)
}

/// Sample [`peak_rss_kb`] into the `proc.vm_hwm_kb` high-water gauge
/// (when a sink is installed) and return the sampled value. The zoo
/// bench sweep calls this after each verify so `BENCH_zoo.json` can
/// report the true peak footprint per corpus entry.
pub fn record_peak_rss() -> u64 {
    let kb = peak_rss_kb();
    if kb > 0 {
        gauge_max("proc.vm_hwm_kb", kb);
    }
    kb
}

/// Open a span with no arguments. Prefer the [`span!`] macro, which
/// also skips argument formatting when disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span::disabled();
    }
    match sink() {
        Some(reg) => Span::start(reg, name, Vec::new()),
        None => Span::disabled(),
    }
}

/// Open a span with pre-rendered arguments (used by [`span!`]).
pub fn span_with(name: &'static str, args: Vec<(&'static str, String)>) -> Span {
    match sink() {
        Some(reg) => Span::start(reg, name, args),
        None => Span::disabled(),
    }
}

/// Emit a structured event with pre-rendered fields (used by
/// [`event!`]). Routed to the in-memory event ring, the last-error
/// latch (error level), and the export sink if one is attached.
pub fn event_with(level: Level, target: &'static str, fields: Vec<(&'static str, String)>) {
    with(|reg| {
        let ts = reg.now_ns();
        reg.record_event(EventRecord::new(level, target, fields, ts));
    });
}

/// Latch `msg` as the registry's last error (the flight-recorder dump
/// headline) and emit it as an error-level event. No-op when disabled.
pub fn record_error(msg: &str) {
    with(|reg| reg.record_error(msg));
}

/// Write the flight-recorder dump (recent spans as a Chrome trace,
/// recent events, last error, metrics snapshot) to `path`. Returns
/// `false` when disabled or the write fails — a post-mortem dump must
/// never take down the exiting process.
pub fn dump_flight(path: &std::path::Path) -> bool {
    with(|reg| {
        let body = serde_json::to_string_pretty(&reg.flight_json()).unwrap_or_default();
        std::fs::write(path, body).is_ok()
    })
    .unwrap_or(false)
}

/// Chain a panic hook that dumps the flight recorder to `path` before
/// the default hook prints the panic — the "post-mortems need no
/// re-run" half of the flight recorder.
pub fn install_panic_flight(path: &std::path::Path) {
    let path = path.to_path_buf();
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        with(|reg| reg.record_error(&format!("panic: {info}")));
        dump_flight(&path);
        prev(info);
    }));
}

/// Emit a structured event:
/// `obs::event!(info, "watch.round", round = n, verdict = "pass")`.
/// Level is one of the `info` / `warn` / `error` idents. Field
/// expressions are not evaluated when no sink is installed.
#[macro_export]
macro_rules! event {
    (info, $target:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $crate::event!(@emit $crate::Level::Info, $target $(, $k = $v)*)
    };
    (warn, $target:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $crate::event!(@emit $crate::Level::Warn, $target $(, $k = $v)*)
    };
    (error, $target:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $crate::event!(@emit $crate::Level::Error, $target $(, $k = $v)*)
    };
    (@emit $level:expr, $target:expr $(, $k:ident = $v:expr)*) => {
        if $crate::enabled() {
            $crate::event_with(
                $level,
                $target,
                ::std::vec![$((stringify!($k), ::std::string::ToString::to_string(&$v))),*],
            );
        }
    };
}

/// Open a named span: `obs::span!("encode_group", group = key)`.
/// Argument expressions are not evaluated when no sink is installed,
/// so call sites stay near-free in the disabled case.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::span_with(
                $name,
                ::std::vec![$((stringify!($k), ::std::string::ToString::to_string(&$v))),+],
            )
        } else {
            $crate::Span::disabled()
        }
    };
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    // The sink is process-global; tests that install one must not
    // interleave. Poisoning (a failed test) must not cascade.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_events_are_noops() {
        let _l = test_lock();
        uninstall();
        add("x", 1);
        gauge_set("g", 7);
        observe_ns("h", 100);
        let s = span!("nothing", arg = 1);
        drop(s);
        assert!(!enabled());
        let reg = install();
        assert_eq!(reg.snapshot().counter("x"), 0);
        uninstall();
    }

    #[test]
    fn install_routes_events_and_uninstall_stops_them() {
        let _l = test_lock();
        let reg = install();
        add("a", 2);
        add("a", 3);
        gauge_set("g", 9);
        gauge_max("g", 4); // lower: must not clobber
        observe_ns("h", 1_500);
        {
            let _s = span!("unit", k = "v");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a"), 5);
        assert_eq!(snap.gauge("g"), 9);
        assert_eq!(snap.histograms["h"].count, 1);
        assert_eq!(reg.spans().len(), 1);
        uninstall();
        add("a", 100);
        assert_eq!(reg.snapshot().counter("a"), 5);
    }

    #[test]
    fn events_ring_latch_errors_and_reach_the_flight_dump() {
        let _l = test_lock();
        let reg = install();
        event!(info, "watch.round", round = 1, verdict = "pass");
        event!(error, "watch.round", round = 2, err = "bad cfg");
        let events = reg.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].level, Level::Info);
        assert_eq!(
            reg.last_error().as_deref(),
            Some("watch.round: round=2 err=bad cfg")
        );
        let flight = reg.flight_json();
        let text = serde_json::to_string(&flight).unwrap();
        let back: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert!(back.get("traceEvents").is_some());
        assert_eq!(
            back.get("events")
                .and_then(serde_json::Value::as_array)
                .map(Vec::len),
            Some(2)
        );
        assert!(back
            .get("last_error")
            .and_then(serde_json::Value::as_str)
            .unwrap()
            .contains("bad cfg"));
        assert!(back.get("metrics").is_some());
        uninstall();
        // Disabled: field expressions must not even evaluate.
        let mut hit = false;
        event!(
            info,
            "gone",
            x = {
                hit = true;
                1
            }
        );
        assert!(!hit);
    }
}
