//! Observability for the verifier pipeline: a lock-sharded metrics
//! registry (counters / gauges / histograms), a lightweight span API
//! with a bounded in-memory ring, and a Chrome `trace_event` exporter
//! so a verify run opens directly in `chrome://tracing` / Perfetto.
//!
//! The design constraint is that instrumentation must be *near-free
//! when no sink is installed*: every event entry point loads one
//! relaxed atomic and returns. Hot-path shards are per-thread, merged
//! only on read, so the work-stealing executor pays a single
//! uncontended `fetch_add` per event when a sink IS installed.
//!
//! ```
//! let reg = obs::install();
//! {
//!     let _s = obs::span!("encode_group", group = "R1 -> R2");
//!     obs::add("engine.checks_posed", 3);
//! }
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("engine.checks_posed"), 3);
//! obs::uninstall();
//! ```

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use trace::{Span, SpanRecord};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<Registry>>> = RwLock::new(None);

/// Whether a sink is installed. One relaxed load — this is the whole
/// cost of every instrumentation point in a run without observability.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Install a fresh registry as the process-wide sink and return it.
/// Replaces any previously installed sink.
pub fn install() -> Arc<Registry> {
    let reg = Registry::new();
    install_registry(reg.clone());
    reg
}

/// Install an existing registry as the process-wide sink.
pub fn install_registry(reg: Arc<Registry>) {
    let mut sink = SINK.write().unwrap();
    *sink = Some(reg);
    ENABLED.store(true, Ordering::Release);
}

/// Remove the sink (instrumentation reverts to the near-free path)
/// and hand back the registry so its contents can still be read.
pub fn uninstall() -> Option<Arc<Registry>> {
    let mut sink = SINK.write().unwrap();
    ENABLED.store(false, Ordering::Release);
    sink.take()
}

/// The currently installed registry, if any.
pub fn sink() -> Option<Arc<Registry>> {
    if !enabled() {
        return None;
    }
    SINK.read().unwrap().clone()
}

/// Run `f` against the installed registry; `None` when disabled.
#[inline]
pub fn with<R>(f: impl FnOnce(&Registry) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    let guard = SINK.read().unwrap();
    guard.as_ref().map(|reg| f(reg))
}

/// Bump a named counter. No-op (one atomic load) when disabled.
#[inline]
pub fn add(name: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    with(|reg| {
        reg.note_call();
        reg.counter(name).add(n);
    });
}

/// Set a named gauge to `v`. No-op when disabled.
#[inline]
pub fn gauge_set(name: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    with(|reg| {
        reg.note_call();
        reg.gauge(name).set(v);
    });
}

/// Raise a named gauge to `v` if `v` is larger (high-water mark).
#[inline]
pub fn gauge_max(name: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    with(|reg| {
        reg.note_call();
        reg.gauge(name).set_max(v);
    });
}

/// Record a duration (nanoseconds) into a named histogram.
#[inline]
pub fn observe_ns(name: &'static str, ns: u64) {
    if !enabled() {
        return;
    }
    with(|reg| {
        reg.note_call();
        reg.histogram(name).record_ns(ns);
    });
}

/// Record a [`std::time::Duration`] into a named histogram.
#[inline]
pub fn observe(name: &'static str, d: std::time::Duration) {
    if !enabled() {
        return;
    }
    observe_ns(name, d.as_nanos().min(u64::MAX as u128) as u64);
}

/// Open a span with no arguments. Prefer the [`span!`] macro, which
/// also skips argument formatting when disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span::disabled();
    }
    match sink() {
        Some(reg) => Span::start(reg, name, Vec::new()),
        None => Span::disabled(),
    }
}

/// Open a span with pre-rendered arguments (used by [`span!`]).
pub fn span_with(name: &'static str, args: Vec<(&'static str, String)>) -> Span {
    match sink() {
        Some(reg) => Span::start(reg, name, args),
        None => Span::disabled(),
    }
}

/// Open a named span: `obs::span!("encode_group", group = key)`.
/// Argument expressions are not evaluated when no sink is installed,
/// so call sites stay near-free in the disabled case.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::span_with(
                $name,
                ::std::vec![$((stringify!($k), ::std::string::ToString::to_string(&$v))),+],
            )
        } else {
            $crate::Span::disabled()
        }
    };
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    // The sink is process-global; tests that install one must not
    // interleave. Poisoning (a failed test) must not cascade.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_events_are_noops() {
        let _l = test_lock();
        uninstall();
        add("x", 1);
        gauge_set("g", 7);
        observe_ns("h", 100);
        let s = span!("nothing", arg = 1);
        drop(s);
        assert!(!enabled());
        let reg = install();
        assert_eq!(reg.snapshot().counter("x"), 0);
        uninstall();
    }

    #[test]
    fn install_routes_events_and_uninstall_stops_them() {
        let _l = test_lock();
        let reg = install();
        add("a", 2);
        add("a", 3);
        gauge_set("g", 9);
        gauge_max("g", 4); // lower: must not clobber
        observe_ns("h", 1_500);
        {
            let _s = span!("unit", k = "v");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a"), 5);
        assert_eq!(snap.gauge("g"), 9);
        assert_eq!(snap.histograms["h"].count, 1);
        assert_eq!(reg.spans().len(), 1);
        uninstall();
        add("a", 100);
        assert_eq!(reg.snapshot().counter("a"), 5);
    }
}
