//! Streaming export and the flight recorder.
//!
//! Two pieces live here:
//!
//! * **Structured log events** ([`EventRecord`], the [`crate::event!`]
//!   macro): leveled `(target, key=value...)` records kept in a bounded
//!   in-memory ring on the registry — the "recent events" half of the
//!   flight recorder — with error-level events additionally latched as
//!   the registry's *last error*.
//! * **The JSONL export sink** ([`ExportSink`]): an incremental
//!   line-per-record stream of every event and every completed span,
//!   flushed as it happens with size-capped rotation (`<path>` rolls to
//!   `<path>.1`), so a long-running daemon's trace survives a crash —
//!   the in-memory ring alone only surfaces what a clean exit dumps.
//!
//! The flight-recorder dump ([`crate::metrics::Registry::flight_json`])
//! combines both rings with the metrics snapshot and the last error
//! into one post-mortem file that is also a loadable Chrome trace.

use crate::metrics::thread_index;
use crate::trace::SpanRecord;
use serde_json::Value;
use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Default bound on the in-memory event ring.
pub const EVENT_RING_CAP: usize = 4_096;

/// Event severity. `Error` events additionally latch the registry's
/// last-error slot (surfaced in the flight-recorder dump).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// Routine progress (round completed, case finished).
    Info,
    /// Something degraded but the run continues.
    Warn,
    /// A failure worth a post-mortem (also sets the last error).
    Error,
}

impl Level {
    /// The lowercase wire name (`"info"` / `"warn"` / `"error"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// One structured log event.
#[derive(Clone, Debug)]
pub struct EventRecord {
    /// Severity.
    pub level: Level,
    /// Event name, dotted like metric names (e.g. `"watch.round"`).
    pub target: &'static str,
    /// Rendered `key = value` fields, call-site order.
    pub fields: Vec<(&'static str, String)>,
    /// Process-wide small thread index.
    pub tid: u32,
    /// Nanoseconds since the registry epoch.
    pub ts_ns: u64,
}

impl EventRecord {
    pub(crate) fn new(
        level: Level,
        target: &'static str,
        fields: Vec<(&'static str, String)>,
        ts_ns: u64,
    ) -> EventRecord {
        EventRecord {
            level,
            target,
            fields,
            tid: thread_index(),
            ts_ns,
        }
    }

    /// One-line rendering, used for the last-error latch:
    /// `target: k=v k=v`.
    pub fn render(&self) -> String {
        let mut s = self.target.to_string();
        for (i, (k, v)) in self.fields.iter().enumerate() {
            s.push_str(if i == 0 { ": " } else { " " });
            s.push_str(k);
            s.push('=');
            s.push_str(v);
        }
        s
    }

    /// The JSON value of one event (an object, exported both in the
    /// flight dump's `events` array and as one JSONL line).
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("type".to_string(), Value::Str("event".to_string())),
            (
                "level".to_string(),
                Value::Str(self.level.as_str().to_string()),
            ),
            ("target".to_string(), Value::Str(self.target.to_string())),
            ("tid".to_string(), Value::UInt(self.tid as u64)),
            ("ts_ns".to_string(), Value::UInt(self.ts_ns)),
            (
                "fields".to_string(),
                Value::Object(
                    self.fields
                        .iter()
                        .map(|(k, v)| (k.to_string(), Value::Str(v.clone())))
                        .collect(),
                ),
            ),
        ])
    }
}

/// The JSONL line of one completed span (the streaming counterpart of
/// the Chrome trace export).
pub(crate) fn span_line(s: &SpanRecord) -> Value {
    Value::Object(vec![
        ("type".to_string(), Value::Str("span".to_string())),
        ("name".to_string(), Value::Str(s.name.to_string())),
        ("tid".to_string(), Value::UInt(s.tid as u64)),
        ("ts_ns".to_string(), Value::UInt(s.start_ns)),
        ("dur_ns".to_string(), Value::UInt(s.dur_ns)),
        (
            "args".to_string(),
            Value::Object(
                s.args
                    .iter()
                    .map(|(k, v)| (k.to_string(), Value::Str(v.clone())))
                    .collect(),
            ),
        ),
    ])
}

/// Bounded event storage, mirroring the span ring: oldest events are
/// dropped once `cap` is reached.
pub(crate) struct EventRing {
    cap: usize,
    inner: Mutex<EventRingInner>,
}

struct EventRingInner {
    events: VecDeque<EventRecord>,
    dropped: u64,
}

impl EventRing {
    pub(crate) fn new(cap: usize) -> EventRing {
        EventRing {
            cap: cap.max(1),
            inner: Mutex::new(EventRingInner {
                events: VecDeque::new(),
                dropped: 0,
            }),
        }
    }

    pub(crate) fn push(&self, rec: EventRecord) {
        let mut inner = self.inner.lock().unwrap();
        if inner.events.len() == self.cap {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(rec);
    }

    pub(crate) fn drain_copy(&self) -> Vec<EventRecord> {
        self.inner.lock().unwrap().events.iter().cloned().collect()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }
}

/// An incremental JSONL writer with size-capped rotation.
///
/// Every appended record is written and flushed immediately — the
/// stream is the durable trace path, so a crashed daemon's log ends at
/// the last completed record, not at the last clean exit. When the
/// current file would exceed `max_bytes` it is rotated to `<path>.1`
/// (replacing a previous rotation) and a fresh file is started, so the
/// pair is bounded at ~`2 * max_bytes` on disk.
pub struct ExportSink {
    path: PathBuf,
    max_bytes: u64,
    inner: Mutex<SinkInner>,
}

struct SinkInner {
    file: std::fs::File,
    written: u64,
    rotations: u64,
    io_errors: u64,
}

impl ExportSink {
    /// Default rotation cap: 64 MiB per file.
    pub const DEFAULT_MAX_BYTES: u64 = 64 * 1024 * 1024;

    /// Create (truncating) the sink file at `path`.
    pub fn create(path: &Path, max_bytes: u64) -> std::io::Result<ExportSink> {
        let file = std::fs::File::create(path)?;
        Ok(ExportSink {
            path: path.to_path_buf(),
            max_bytes: max_bytes.max(1),
            inner: Mutex::new(SinkInner {
                file,
                written: 0,
                rotations: 0,
                io_errors: 0,
            }),
        })
    }

    /// The rotation target: `<path>.1`.
    fn rotated_path(&self) -> PathBuf {
        let mut name = self.path.as_os_str().to_os_string();
        name.push(".1");
        PathBuf::from(name)
    }

    /// Append one record as a JSONL line (write + flush). IO errors are
    /// counted, not propagated: telemetry must never take down the run
    /// it is observing.
    pub fn append(&self, v: &Value) {
        let mut line = serde_json::to_string(v).unwrap_or_default();
        line.push('\n');
        let mut inner = self.inner.lock().unwrap();
        if inner.written > 0 && inner.written + line.len() as u64 > self.max_bytes {
            // Rotate: current file becomes `<path>.1`, a fresh file
            // takes its place. Failure to rotate falls through to
            // appending (unbounded is better than lost).
            let rotate = std::fs::rename(&self.path, self.rotated_path())
                .and_then(|()| std::fs::File::create(&self.path));
            match rotate {
                Ok(f) => {
                    inner.file = f;
                    inner.written = 0;
                    inner.rotations += 1;
                }
                Err(_) => inner.io_errors += 1,
            }
        }
        let write = inner
            .file
            .write_all(line.as_bytes())
            .and_then(|()| inner.file.flush());
        match write {
            Ok(()) => inner.written += line.len() as u64,
            Err(_) => inner.io_errors += 1,
        }
    }

    /// Completed rotations.
    pub fn rotations(&self) -> u64 {
        self.inner.lock().unwrap().rotations
    }

    /// Swallowed IO errors (writes or rotations that failed).
    pub fn io_errors(&self) -> u64 {
        self.inner.lock().unwrap().io_errors
    }

    /// Bytes written to the *current* file.
    pub fn written(&self) -> u64 {
        self.inner.lock().unwrap().written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("obs-export-{name}-{}", std::process::id()))
    }

    #[test]
    fn event_ring_is_bounded_and_renders() {
        let ring = EventRing::new(3);
        for i in 0..5u64 {
            ring.push(EventRecord::new(
                Level::Info,
                "t.event",
                vec![("i", i.to_string())],
                i,
            ));
        }
        let events = ring.drain_copy();
        assert_eq!(events.len(), 3);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(events[0].fields[0].1, "2");
        assert_eq!(events[0].render(), "t.event: i=2");
    }

    #[test]
    fn sink_appends_parseable_jsonl() {
        let path = tmp("jsonl");
        let sink = ExportSink::create(&path, ExportSink::DEFAULT_MAX_BYTES).unwrap();
        sink.append(&EventRecord::new(Level::Warn, "a.b", vec![("k", "v".into())], 7).to_json());
        sink.append(&span_line(&SpanRecord {
            name: "s",
            args: vec![("g", "x".into())],
            tid: 1,
            start_ns: 10,
            dur_ns: 5,
        }));
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let ev: Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(ev.get("type").and_then(Value::as_str), Some("event"));
        assert_eq!(ev.get("level").and_then(Value::as_str), Some("warn"));
        let sp: Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(sp.get("type").and_then(Value::as_str), Some("span"));
        assert_eq!(sp.get("dur_ns").and_then(Value::as_u64), Some(5));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sink_rotates_at_the_size_cap() {
        let path = tmp("rotate");
        let _ = std::fs::remove_file(&path);
        // A cap small enough that every few records force a rotation.
        let sink = ExportSink::create(&path, 256).unwrap();
        for i in 0..50u64 {
            sink.append(
                &EventRecord::new(Level::Info, "rot.fill", vec![("i", i.to_string())], i).to_json(),
            );
        }
        assert!(sink.rotations() > 0, "cap must trigger rotation");
        assert_eq!(sink.io_errors(), 0);
        // Both generations exist; each is valid line-per-record JSONL
        // and the current file respects the cap.
        let rotated = {
            let mut n = path.as_os_str().to_os_string();
            n.push(".1");
            PathBuf::from(n)
        };
        for p in [&path, &rotated] {
            let text = std::fs::read_to_string(p).unwrap();
            assert!(!text.is_empty());
            for line in text.lines() {
                let v: Value = serde_json::from_str(line).unwrap();
                assert_eq!(v.get("target").and_then(Value::as_str), Some("rot.fill"));
            }
        }
        assert!(std::fs::metadata(&path).unwrap().len() <= 256);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rotated);
    }
}
