//! Semantic configuration diff for Lightyear's delta verification.
//!
//! Re-verifying a network after an edit starts with one question: *what
//! actually changed?* Textual diffs over-approximate wildly — renaming a
//! route map touches every line that references it yet changes nothing
//! the verifier can observe. This crate answers the question
//! semantically: [`diff_configs`] compares two sets of parsed router
//! configurations by their **resolved** meaning (route maps with all
//! referenced prefix/community/AS-path lists inlined, peerings by peer
//! name, originations) and classifies every difference into a typed
//! [`DeltaKind`]:
//!
//! | classification | example edit | dirty set |
//! |---|---|---|
//! | `Cosmetic` | route-map rename, unused object edit, reformatting | empty |
//! | `RouteMapChanged` | a `set`/`match`/action term edited | edited router + neighbors |
//! | `PrefixListEdited` / `CommunityListEdited` / `AsPathAclEdited` | a referenced list edited (map text unchanged) | edited router + neighbors |
//! | `PeeringAdded` / `PeeringRemoved` / `PeeringChanged` | neighbor block added/removed/retargeted | edited router + the peer |
//! | `OriginationChanged` | `network` statement added/removed | edited router + neighbors |
//! | `AsnChanged` | `router bgp` ASN edited | edited router + neighbors |
//! | `RouterAdded` / `RouterRemoved` | configuration file added/removed | the router + neighbors |
//!
//! The dirty-set mapping is performed downstream by
//! `lightyear::reverify` (fingerprint-diff scoped by the
//! `lightyear::impact` adjacency index); this crate's contract is only
//! that a [`ConfigDelta`] with no semantic edits really is a no-op —
//! the engine then proves it by producing an empty dirty set.

pub mod diff;

pub use diff::{diff_configs, ConfigDelta, DeltaEdit, DeltaKind};
