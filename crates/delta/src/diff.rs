//! The semantic diff: resolved-meaning comparison and edit
//! classification (see the crate docs for the classification table).

use bgp_config::ast::{ConfigAst, MatchAst, NeighborAst};
use bgp_config::lower::resolve_route_map;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One classified edit on one router.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DeltaEdit {
    /// The router whose configuration differs.
    pub router: String,
    /// What kind of difference.
    pub kind: DeltaKind,
}

/// The semantic classification of a configuration difference.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DeltaKind {
    /// A configuration file appeared.
    RouterAdded,
    /// A configuration file disappeared.
    RouterRemoved,
    /// The `router bgp` ASN changed.
    AsnChanged,
    /// A neighbor block appeared.
    PeeringAdded {
        /// The peer the new session names.
        peer: String,
    },
    /// A neighbor block disappeared.
    PeeringRemoved {
        /// The peer the removed session named.
        peer: String,
    },
    /// A neighbor block changed its remote AS.
    PeeringChanged {
        /// The peer whose session changed.
        peer: String,
    },
    /// A route map's resolved terms changed (matches, sets, actions, or
    /// which map a session attaches).
    RouteMapChanged {
        /// The affected map (the new attachment's name).
        map: String,
    },
    /// A referenced prefix list changed while the route-map text did not.
    PrefixListEdited {
        /// The edited list.
        list: String,
    },
    /// A referenced community list changed while the route-map text did
    /// not.
    CommunityListEdited {
        /// The edited list.
        list: String,
    },
    /// A referenced AS-path access list changed while the route-map text
    /// did not.
    AsPathAclEdited {
        /// The edited list.
        list: String,
    },
    /// The originated prefixes (`network` statements) changed.
    OriginationChanged,
    /// The text differs but the resolved semantics are identical: a
    /// rename, a seq renumbering, an edit to an unused object. Produces
    /// an empty dirty set downstream.
    Cosmetic,
}

impl fmt::Display for DeltaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaKind::RouterAdded => write!(f, "router added"),
            DeltaKind::RouterRemoved => write!(f, "router removed"),
            DeltaKind::AsnChanged => write!(f, "ASN changed"),
            DeltaKind::PeeringAdded { peer } => write!(f, "peering to {peer} added"),
            DeltaKind::PeeringRemoved { peer } => write!(f, "peering to {peer} removed"),
            DeltaKind::PeeringChanged { peer } => write!(f, "peering to {peer} changed"),
            DeltaKind::RouteMapChanged { map } => write!(f, "route-map {map} changed"),
            DeltaKind::PrefixListEdited { list } => write!(f, "prefix-list {list} edited"),
            DeltaKind::CommunityListEdited { list } => write!(f, "community-list {list} edited"),
            DeltaKind::AsPathAclEdited { list } => write!(f, "as-path list {list} edited"),
            DeltaKind::OriginationChanged => write!(f, "originations changed"),
            DeltaKind::Cosmetic => write!(f, "cosmetic edit"),
        }
    }
}

impl DeltaKind {
    /// True for edits the verifier can observe (everything but
    /// [`DeltaKind::Cosmetic`]).
    pub fn is_semantic(&self) -> bool {
        !matches!(self, DeltaKind::Cosmetic)
    }
}

/// The classified difference between two configuration sets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConfigDelta {
    /// All classified edits, sorted by router then kind.
    pub edits: Vec<DeltaEdit>,
}

impl ConfigDelta {
    /// True when the configurations are textually identical.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// True when every edit is cosmetic (and there is at least one):
    /// the verifier must observe nothing.
    pub fn is_cosmetic(&self) -> bool {
        !self.edits.is_empty() && self.edits.iter().all(|e| !e.kind.is_semantic())
    }

    /// Routers with at least one semantic edit — the set the impact
    /// analysis expands into a dirty-check neighborhood.
    pub fn changed_routers(&self) -> Vec<String> {
        let mut out: BTreeSet<&str> = BTreeSet::new();
        for e in &self.edits {
            if e.kind.is_semantic() {
                out.insert(&e.router);
            }
        }
        out.into_iter().map(str::to_string).collect()
    }

    /// A compact human rendering, e.g.
    /// `[R0-1: route-map FROM-DC changed; EDGE1: peering to PEER1-0 removed]`.
    pub fn summary(&self) -> String {
        if self.edits.is_empty() {
            return "[no change]".to_string();
        }
        let parts: Vec<String> = self
            .edits
            .iter()
            .map(|e| format!("{}: {}", e.router, e.kind))
            .collect();
        format!("[{}]", parts.join("; "))
    }
}

impl fmt::Display for ConfigDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.summary())
    }
}

use bgp_model::canonical_json as canon;

/// A route-map attachment resolved to its full meaning, or a marker for
/// dangling references (conservatively treated as a change whenever the
/// marker text differs).
fn resolve_attachment(cfg: &ConfigAst, name: Option<&String>) -> String {
    match name {
        None => "-".to_string(),
        Some(n) => match resolve_route_map(cfg, n) {
            Ok(map) => canon(&map.entries),
            Err(e) => format!("!unresolvable:{n}:{e}"),
        },
    }
}

/// The semantic projection of one neighbor block.
#[derive(PartialEq, Eq)]
struct NeighborSem {
    remote_as: Option<u32>,
    import: String,
    export: String,
}

/// The semantic projection of one router configuration: everything the
/// lowering pipeline (and therefore the verifier) can observe.
struct RouterSem {
    asn: u32,
    /// Keyed by peer name (the `description`, which is how lowering
    /// matches sessions); unnamed neighbors keyed by address.
    neighbors: BTreeMap<String, NeighborSem>,
    networks: Vec<String>,
}

fn project(cfg: &ConfigAst) -> RouterSem {
    let mut neighbors = BTreeMap::new();
    let mut networks = Vec::new();
    let mut asn = 0;
    if let Some(bgp) = &cfg.router_bgp {
        asn = bgp.asn;
        // Duplicate descriptions must not collapse blocks (each block
        // contributes its own attachments during lowering): disambiguate
        // colliding keys with the session address.
        let mut desc_count: BTreeMap<&str, usize> = BTreeMap::new();
        for nbr in bgp.neighbors.values() {
            if let Some(d) = nbr.description.as_deref() {
                *desc_count.entry(d).or_default() += 1;
            }
        }
        for nbr in bgp.neighbors.values() {
            let key = match nbr.description.as_deref() {
                Some(d) if desc_count[d] == 1 => d.to_string(),
                Some(d) => format!("{d}@{}", nbr.addr),
                None => format!("@{}", nbr.addr),
            };
            neighbors.insert(
                key,
                NeighborSem {
                    remote_as: nbr.remote_as,
                    import: resolve_attachment(cfg, nbr.route_map_in.as_ref()),
                    export: resolve_attachment(cfg, nbr.route_map_out.as_ref()),
                },
            );
        }
        networks = bgp.networks.iter().map(canon).collect();
        networks.sort();
    }
    RouterSem {
        asn,
        neighbors,
        networks,
    }
}

/// The neighbor block behind a projection key: a unique `description`,
/// a `desc@addr` disambiguation for duplicate descriptions, or `@addr`
/// for description-less blocks (lowering rejects the latter two
/// shapes, but the differ must still classify them).
fn find_neighbor<'a>(cfg: &'a ConfigAst, key: &str) -> Option<&'a NeighborAst> {
    let bgp = cfg.router_bgp.as_ref()?;
    if let Some((_, addr)) = key.rsplit_once('@') {
        if let Some(n) = bgp.neighbors.get(addr) {
            return Some(n);
        }
    }
    bgp.neighbors
        .values()
        .find(|n| n.description.as_deref() == Some(key))
}

/// Blame a changed attachment on the artifact that caused it: the map's
/// own text, or — when the map text is unchanged — a referenced list.
fn blame_map(old: &ConfigAst, new: &ConfigAst, name: &str, kinds: &mut BTreeSet<DeltaKind>) {
    let (old_ast, new_ast) = (old.route_maps.get(name), new.route_maps.get(name));
    if old_ast != new_ast || old_ast.is_none() {
        kinds.insert(DeltaKind::RouteMapChanged {
            map: name.to_string(),
        });
        return;
    }
    // Map text unchanged: the resolution changed through a referenced
    // list. Find which.
    let mut blamed = false;
    for entry in new_ast.expect("present on both sides") {
        for m in &entry.matches {
            match m {
                MatchAst::PrefixList(lists) => {
                    for l in lists {
                        if old.prefix_lists.get(l) != new.prefix_lists.get(l) {
                            kinds.insert(DeltaKind::PrefixListEdited { list: l.clone() });
                            blamed = true;
                        }
                    }
                }
                MatchAst::Community { lists, .. } => {
                    for l in lists {
                        if old.community_lists.get(l) != new.community_lists.get(l) {
                            kinds.insert(DeltaKind::CommunityListEdited { list: l.clone() });
                            blamed = true;
                        }
                    }
                }
                MatchAst::AsPath(lists) => {
                    for l in lists {
                        if old.aspath_acls.get(l) != new.aspath_acls.get(l) {
                            kinds.insert(DeltaKind::AsPathAclEdited { list: l.clone() });
                            blamed = true;
                        }
                    }
                }
                _ => {}
            }
        }
        for s in &entry.sets {
            if let bgp_config::ast::SetAst::CommListDelete(l) = s {
                if old.community_lists.get(l) != new.community_lists.get(l) {
                    kinds.insert(DeltaKind::CommunityListEdited { list: l.clone() });
                    blamed = true;
                }
            }
        }
    }
    if !blamed {
        // Same text, same lists, different resolution cannot happen; be
        // conservative if it somehow does.
        kinds.insert(DeltaKind::RouteMapChanged {
            map: name.to_string(),
        });
    }
}

/// Classify the difference between two configurations of one router.
fn classify_router(old: &ConfigAst, new: &ConfigAst) -> Vec<DeltaKind> {
    debug_assert_eq!(old.hostname, new.hostname);
    if old == new {
        return Vec::new();
    }
    let (po, pn) = (project(old), project(new));
    let mut kinds: BTreeSet<DeltaKind> = BTreeSet::new();
    if po.asn != pn.asn {
        kinds.insert(DeltaKind::AsnChanged);
    }
    if po.networks != pn.networks {
        kinds.insert(DeltaKind::OriginationChanged);
    }
    for (peer, old_sem) in &po.neighbors {
        match pn.neighbors.get(peer) {
            None => {
                kinds.insert(DeltaKind::PeeringRemoved { peer: peer.clone() });
            }
            Some(new_sem) => {
                if old_sem.remote_as != new_sem.remote_as {
                    kinds.insert(DeltaKind::PeeringChanged { peer: peer.clone() });
                }
                if old_sem.import != new_sem.import || old_sem.export != new_sem.export {
                    // Blame by the attached map name (prefer the new
                    // attachment; a pure re-attachment still names the
                    // map the verifier now sees).
                    let nbr_new = find_neighbor(new, peer).cloned().unwrap_or_default();
                    let nbr_old = find_neighbor(old, peer).cloned().unwrap_or_default();
                    for (o, n, changed) in [
                        (
                            &nbr_old.route_map_in,
                            &nbr_new.route_map_in,
                            old_sem.import != new_sem.import,
                        ),
                        (
                            &nbr_old.route_map_out,
                            &nbr_new.route_map_out,
                            old_sem.export != new_sem.export,
                        ),
                    ] {
                        if !changed {
                            continue;
                        }
                        match (o, n) {
                            (Some(a), Some(b)) if a == b => blame_map(old, new, a, &mut kinds),
                            (_, Some(b)) => {
                                kinds.insert(DeltaKind::RouteMapChanged { map: b.clone() });
                            }
                            (Some(a), None) => {
                                kinds.insert(DeltaKind::RouteMapChanged { map: a.clone() });
                            }
                            // A resolution change with no attachment on
                            // either side can only mean the neighbor
                            // lookup failed; never let a semantic change
                            // degrade to "nothing" (classification must
                            // stay at least as sensitive as the
                            // fingerprints).
                            (None, None) => {
                                kinds.insert(DeltaKind::PeeringChanged { peer: peer.clone() });
                            }
                        }
                    }
                }
            }
        }
    }
    for peer in pn.neighbors.keys() {
        if !po.neighbors.contains_key(peer) {
            kinds.insert(DeltaKind::PeeringAdded { peer: peer.clone() });
        }
    }
    if kinds.is_empty() {
        // Text differs, semantics do not.
        return vec![DeltaKind::Cosmetic];
    }
    kinds.into_iter().collect()
}

/// Diff two configuration sets (keyed by hostname) into a classified
/// [`ConfigDelta`]. Order of the input slices is irrelevant.
pub fn diff_configs(old: &[ConfigAst], new: &[ConfigAst]) -> ConfigDelta {
    let by_name = |set: &'_ [ConfigAst]| -> BTreeMap<String, usize> {
        set.iter()
            .enumerate()
            .map(|(i, c)| (c.hostname.clone(), i))
            .collect()
    };
    let (om, nm) = (by_name(old), by_name(new));
    let mut edits = Vec::new();
    for (name, &oi) in &om {
        match nm.get(name) {
            None => edits.push(DeltaEdit {
                router: name.clone(),
                kind: DeltaKind::RouterRemoved,
            }),
            Some(&ni) => {
                for kind in classify_router(&old[oi], &new[ni]) {
                    edits.push(DeltaEdit {
                        router: name.clone(),
                        kind,
                    });
                }
            }
        }
    }
    for name in nm.keys() {
        if !om.contains_key(name) {
            edits.push(DeltaEdit {
                router: name.clone(),
                kind: DeltaKind::RouterAdded,
            });
        }
    }
    edits.sort();
    ConfigDelta { edits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_config::parse_config;

    fn r1() -> ConfigAst {
        parse_config(
            "\
hostname R1
ip prefix-list CUST seq 5 permit 203.0.113.0/24 le 32
route-map FROM-ISP permit 10
 match ip address prefix-list CUST
 set community 100:1 additive
router bgp 65000
 neighbor 10.0.0.1 remote-as 100
 neighbor 10.0.0.1 description ISP1
 neighbor 10.0.0.1 route-map FROM-ISP in
 network 198.51.100.0/24
",
        )
        .unwrap()
    }

    #[test]
    fn identical_configs_are_an_empty_delta() {
        let d = diff_configs(&[r1()], &[r1()]);
        assert!(d.is_empty());
        assert!(!d.is_cosmetic());
        assert_eq!(d.summary(), "[no change]");
    }

    #[test]
    fn rename_is_cosmetic() {
        let mut new = r1();
        let entries = new.route_maps.remove("FROM-ISP").unwrap();
        new.route_maps.insert("FROM-ISP-V2".into(), entries);
        new.router_bgp
            .as_mut()
            .unwrap()
            .neighbors
            .get_mut("10.0.0.1")
            .unwrap()
            .route_map_in = Some("FROM-ISP-V2".into());
        let d = diff_configs(&[r1()], &[new]);
        assert!(d.is_cosmetic(), "{d}");
        assert!(d.changed_routers().is_empty());
        assert_eq!(
            d.edits,
            vec![DeltaEdit {
                router: "R1".into(),
                kind: DeltaKind::Cosmetic
            }]
        );
    }

    #[test]
    fn seq_renumbering_is_conservatively_semantic() {
        // Sequence numbers are part of a route map's resolved identity
        // (`continue N` targets them, and the engine's fingerprints hash
        // them), so renumbering is classified as a map change — the
        // classification must never be *less* sensitive than the
        // fingerprints, or "cosmetic ⇒ empty dirty set" would break.
        let mut new = r1();
        for e in new.route_maps.get_mut("FROM-ISP").unwrap() {
            e.seq *= 10;
        }
        let d = diff_configs(&[r1()], &[new]);
        assert!(!d.is_cosmetic(), "{d}");
        assert_eq!(d.changed_routers(), vec!["R1".to_string()]);
    }

    #[test]
    fn unused_object_edit_is_cosmetic() {
        let mut new = r1();
        new.prefix_lists.insert("DANGLING".into(), vec![]);
        let d = diff_configs(&[r1()], &[new]);
        assert!(d.is_cosmetic(), "{d}");
    }

    #[test]
    fn route_map_term_edit_is_semantic() {
        let mut new = r1();
        new.route_maps.get_mut("FROM-ISP").unwrap()[0]
            .sets
            .push(bgp_config::ast::SetAst::LocalPref(120));
        let d = diff_configs(&[r1()], &[new]);
        assert_eq!(d.changed_routers(), vec!["R1".to_string()]);
        assert!(d.edits.iter().any(|e| matches!(
            &e.kind,
            DeltaKind::RouteMapChanged { map } if map == "FROM-ISP"
        )));
    }

    #[test]
    fn referenced_list_edit_blames_the_list() {
        let mut new = r1();
        new.prefix_lists.get_mut("CUST").unwrap()[0].le = Some(28);
        let d = diff_configs(&[r1()], &[new]);
        assert_eq!(d.changed_routers(), vec!["R1".to_string()]);
        assert_eq!(
            d.edits,
            vec![DeltaEdit {
                router: "R1".into(),
                kind: DeltaKind::PrefixListEdited {
                    list: "CUST".into()
                }
            }],
            "{d}"
        );
    }

    #[test]
    fn peering_add_remove_and_origination() {
        let mut new = r1();
        {
            let bgp = new.router_bgp.as_mut().unwrap();
            bgp.neighbors.remove("10.0.0.1");
            bgp.neighbors.insert(
                "10.0.0.9".into(),
                bgp_config::ast::NeighborAst {
                    addr: "10.0.0.9".into(),
                    remote_as: Some(900),
                    description: Some("ISP9".into()),
                    route_map_in: None,
                    route_map_out: None,
                },
            );
            bgp.networks.clear();
        }
        let d = diff_configs(&[r1()], &[new]);
        assert!(d.edits.iter().any(|e| matches!(
            &e.kind,
            DeltaKind::PeeringRemoved { peer } if peer == "ISP1"
        )));
        assert!(d.edits.iter().any(|e| matches!(
            &e.kind,
            DeltaKind::PeeringAdded { peer } if peer == "ISP9"
        )));
        assert!(d
            .edits
            .iter()
            .any(|e| e.kind == DeltaKind::OriginationChanged));
    }

    #[test]
    fn router_add_and_remove() {
        let r2 = parse_config("hostname R2\nrouter bgp 65000\n").unwrap();
        let d = diff_configs(&[r1()], &[r1(), r2.clone()]);
        assert_eq!(
            d.edits,
            vec![DeltaEdit {
                router: "R2".into(),
                kind: DeltaKind::RouterAdded
            }]
        );
        assert_eq!(d.changed_routers(), vec!["R2".to_string()]);
        let d = diff_configs(&[r1(), r2], &[r1()]);
        assert_eq!(d.edits[0].kind, DeltaKind::RouterRemoved);
    }

    #[test]
    fn description_less_neighbor_edits_are_still_semantic() {
        // Lowering rejects description-less neighbors, but the differ is
        // a public API and must never classify a semantic change on one
        // as cosmetic.
        let base = parse_config(
            "\
hostname R1
route-map M permit 10
 set community 100:1 additive
router bgp 65000
 neighbor 10.0.0.1 remote-as 100
 neighbor 10.0.0.1 route-map M in
",
        )
        .unwrap();
        let mut new = base.clone();
        new.route_maps.get_mut("M").unwrap()[0]
            .sets
            .push(bgp_config::ast::SetAst::LocalPref(50));
        let d = diff_configs(&[base], &[new]);
        assert!(!d.is_cosmetic(), "{d}");
        assert_eq!(d.changed_routers(), vec!["R1".to_string()]);
    }

    /// A route map whose entries sit in a different *vector* order but
    /// keep their sequence numbers resolves to the same meaning (the
    /// lowering sorts by seq), so the reorder must diff to Cosmetic.
    #[test]
    fn reordered_entries_with_identical_resolved_meaning_are_cosmetic() {
        let base = parse_config(
            "\
hostname R1
ip prefix-list CUST seq 5 permit 203.0.113.0/24 le 32
route-map FROM-ISP deny 5
 match ip address prefix-list CUST
route-map FROM-ISP permit 10
 set community 100:1 additive
router bgp 65000
 neighbor 10.0.0.1 remote-as 100
 neighbor 10.0.0.1 description ISP1
 neighbor 10.0.0.1 route-map FROM-ISP in
",
        )
        .unwrap();
        let mut new = base.clone();
        new.route_maps.get_mut("FROM-ISP").unwrap().reverse();
        assert_ne!(base, new, "the AST order really differs");
        let d = diff_configs(std::slice::from_ref(&base), &[new]);
        assert!(d.is_cosmetic(), "{d}");
        assert!(d.changed_routers().is_empty());

        // The same reorder with *renumbered* seqs changes the resolved
        // order — that one is semantic.
        let mut swapped = base.clone();
        {
            let m = swapped.route_maps.get_mut("FROM-ISP").unwrap();
            m[0].seq = 10;
            m[1].seq = 5;
        }
        let d = diff_configs(&[base], &[swapped]);
        assert!(!d.is_cosmetic(), "{d}");
    }

    /// Editing a community list no route map references must be
    /// cosmetic — the verifier cannot observe it.
    #[test]
    fn community_list_edit_referenced_by_zero_maps_is_cosmetic() {
        let mut base = r1();
        base.community_lists.insert(
            "UNREFERENCED".into(),
            vec![bgp_config::ast::CommunityListEntry {
                permit: true,
                communities: vec!["100:1".parse().unwrap()],
            }],
        );
        let mut new = base.clone();
        new.community_lists.get_mut("UNREFERENCED").unwrap()[0].permit = false;
        let d = diff_configs(std::slice::from_ref(&base), std::slice::from_ref(&new));
        assert!(d.is_cosmetic(), "{d}");
        assert!(d.changed_routers().is_empty());

        // Deleting the unreferenced list entirely is cosmetic too.
        let mut gone = base.clone();
        gone.community_lists.remove("UNREFERENCED");
        let d = diff_configs(&[base], &[gone]);
        assert!(d.is_cosmetic(), "{d}");
    }

    /// A remote-as change on a session with route maps attached is a
    /// peering change only — the maps did not change — and stays
    /// semantic even when bundled with a cosmetic rename.
    #[test]
    fn remote_as_change_with_attached_maps_classifies_precisely() {
        let mut new = r1();
        {
            let bgp = new.router_bgp.as_mut().unwrap();
            bgp.neighbors.get_mut("10.0.0.1").unwrap().remote_as = Some(101);
        }
        // Bundle a rename of the attached map (cosmetic on its own).
        let entries = new.route_maps.remove("FROM-ISP").unwrap();
        new.route_maps.insert("FROM-ISP-V2".into(), entries);
        new.router_bgp
            .as_mut()
            .unwrap()
            .neighbors
            .get_mut("10.0.0.1")
            .unwrap()
            .route_map_in = Some("FROM-ISP-V2".into());
        let d = diff_configs(&[r1()], &[new]);
        assert!(!d.is_cosmetic(), "{d}");
        assert_eq!(d.changed_routers(), vec!["R1".to_string()]);
        assert!(
            d.edits.iter().any(|e| matches!(
                &e.kind,
                DeltaKind::PeeringChanged { peer } if peer == "ISP1"
            )),
            "{d}"
        );
        assert!(
            !d.edits
                .iter()
                .any(|e| matches!(&e.kind, DeltaKind::RouteMapChanged { .. })),
            "the rename must not be blamed on the map: {d}"
        );
    }

    #[test]
    fn remote_as_change_is_a_peering_change() {
        let mut new = r1();
        new.router_bgp
            .as_mut()
            .unwrap()
            .neighbors
            .get_mut("10.0.0.1")
            .unwrap()
            .remote_as = Some(101);
        let d = diff_configs(&[r1()], &[new]);
        assert_eq!(
            d.edits,
            vec![DeltaEdit {
                router: "R1".into(),
                kind: DeltaKind::PeeringChanged {
                    peer: "ISP1".into()
                }
            }]
        );
    }
}
