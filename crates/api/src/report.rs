//! The report document schema: one serializer for every surface that
//! renders verification results — `verify --json`, the reverify round
//! reports of `watch`/`plan`/`serve`, and the on-disk result-cache
//! spill. Field names, order, and value types are part of the wire
//! contract; the `verify --json` rendering is pinned byte-for-byte by
//! the golden test in `crates/cli/tests/golden.rs`.

use serde_json::Value;

/// One failing check, as rendered in a report's `failures` array.
#[derive(Clone, Debug, PartialEq)]
pub struct FailureDoc {
    /// Check kind (`import` / `export` / `originate` / `subsumption` /
    /// `propagation` / `no-interference`).
    pub kind: String,
    /// Human-readable location (`"A -> B"` or a router name).
    pub location: String,
    /// The route-map involved, when the check has one.
    pub route_map: Option<String>,
    /// The check's one-line description.
    pub description: String,
}

impl FailureDoc {
    /// Render in the pinned field order.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("kind".to_string(), Value::Str(self.kind.clone())),
            ("location".to_string(), Value::Str(self.location.clone())),
            (
                "route_map".to_string(),
                match &self.route_map {
                    Some(m) => Value::Str(m.clone()),
                    None => Value::Null,
                },
            ),
            (
                "description".to_string(),
                Value::Str(self.description.clone()),
            ),
        ])
    }

    /// Decode the [`FailureDoc::to_value`] form.
    pub fn from_value(v: &Value) -> Option<FailureDoc> {
        Some(FailureDoc {
            kind: v["kind"].as_str()?.to_string(),
            location: v["location"].as_str()?.to_string(),
            route_map: v["route_map"].as_str().map(str::to_string),
            description: v["description"].as_str()?.to_string(),
        })
    }
}

/// Core-based blame for one passing check: which invariant conjuncts
/// its UNSAT proof actually needed.
#[derive(Clone, Debug, PartialEq)]
pub struct CoreDoc {
    /// Check id within its property's report.
    pub check: u64,
    /// Check kind.
    pub kind: String,
    /// Human-readable location.
    pub location: String,
    /// Indices of the load-bearing conjuncts.
    pub core: Vec<u64>,
    /// The load-bearing conjuncts, rendered.
    pub load_bearing: Vec<String>,
    /// Total conjuncts the invariant at this location has.
    pub conjuncts: u64,
}

impl CoreDoc {
    /// Render in the pinned field order.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("check".to_string(), Value::UInt(self.check)),
            ("kind".to_string(), Value::Str(self.kind.clone())),
            ("location".to_string(), Value::Str(self.location.clone())),
            (
                "core".to_string(),
                Value::Array(self.core.iter().map(|&i| Value::UInt(i)).collect()),
            ),
            (
                "load_bearing".to_string(),
                Value::Array(
                    self.load_bearing
                        .iter()
                        .map(|s| Value::Str(s.clone()))
                        .collect(),
                ),
            ),
            ("conjuncts".to_string(), Value::UInt(self.conjuncts)),
        ])
    }

    /// Decode the [`CoreDoc::to_value`] form.
    pub fn from_value(v: &Value) -> Option<CoreDoc> {
        Some(CoreDoc {
            check: v["check"].as_u64()?,
            kind: v["kind"].as_str()?.to_string(),
            location: v["location"].as_str()?.to_string(),
            core: v["core"]
                .as_array()?
                .iter()
                .map(|x| x.as_u64())
                .collect::<Option<_>>()?,
            load_bearing: v["load_bearing"]
                .as_array()?
                .iter()
                .map(|x| x.as_str().map(str::to_string))
                .collect::<Option<_>>()?,
            conjuncts: v["conjuncts"].as_u64()?,
        })
    }
}

/// Wall-clock/solver statistics of a one-shot run. Carried by `verify
/// --json` safety entries; omitted (`None` on [`PropertyReport`]) by
/// liveness entries and by the daemon's stored reports, which must be
/// byte-stable across runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimingDoc {
    /// Real solver invocations.
    pub solver_calls: u64,
    /// Wall-clock seconds of the whole run.
    pub total_seconds: f64,
    /// Seconds spent inside the solver.
    pub solve_seconds: f64,
}

/// One property's verification report — safety or liveness, one-shot
/// (`verify`) or re-verified (`watch`/`plan`/`serve`). The single
/// rendering of results every surface shares.
#[derive(Clone, Debug, PartialEq)]
pub struct PropertyReport {
    /// Property display name.
    pub property: String,
    /// Liveness properties carry a `"kind": "liveness"` marker field.
    pub liveness: bool,
    /// Whether every check passed.
    pub passed: bool,
    /// Total checks generated.
    pub checks: u64,
    /// Solver statistics, when the surface reports them.
    pub timing: Option<TimingDoc>,
    /// Failing checks.
    pub failures: Vec<FailureDoc>,
    /// Core-based blame of passing checks.
    pub cores: Vec<CoreDoc>,
}

impl PropertyReport {
    /// Render in the pinned field order: `property`, [`"kind"`],
    /// `passed`, `checks`, [`solver_calls`, `total_seconds`,
    /// `solve_seconds`], `failures`, `cores`.
    pub fn to_value(&self) -> Value {
        let mut fields = vec![("property".to_string(), Value::Str(self.property.clone()))];
        if self.liveness {
            fields.push(("kind".to_string(), Value::Str("liveness".to_string())));
        }
        fields.push(("passed".to_string(), Value::Bool(self.passed)));
        fields.push(("checks".to_string(), Value::UInt(self.checks)));
        if let Some(t) = &self.timing {
            fields.push(("solver_calls".to_string(), Value::UInt(t.solver_calls)));
            fields.push(("total_seconds".to_string(), Value::Float(t.total_seconds)));
            fields.push(("solve_seconds".to_string(), Value::Float(t.solve_seconds)));
        }
        fields.push((
            "failures".to_string(),
            Value::Array(self.failures.iter().map(FailureDoc::to_value).collect()),
        ));
        fields.push((
            "cores".to_string(),
            Value::Array(self.cores.iter().map(CoreDoc::to_value).collect()),
        ));
        Value::Object(fields)
    }

    /// Decode the [`PropertyReport::to_value`] form.
    pub fn from_value(v: &Value) -> Option<PropertyReport> {
        let timing = match (
            v.get("solver_calls"),
            v.get("total_seconds"),
            v.get("solve_seconds"),
        ) {
            (Some(c), Some(t), Some(s)) => Some(TimingDoc {
                solver_calls: c.as_u64()?,
                total_seconds: t.as_f64()?,
                solve_seconds: s.as_f64()?,
            }),
            _ => None,
        };
        Some(PropertyReport {
            property: v["property"].as_str()?.to_string(),
            liveness: v.get("kind").and_then(Value::as_str) == Some("liveness"),
            passed: v["passed"].as_bool()?,
            checks: v["checks"].as_u64()?,
            timing,
            failures: v["failures"]
                .as_array()?
                .iter()
                .map(FailureDoc::from_value)
                .collect::<Option<_>>()?,
            cores: v["cores"]
                .as_array()?
                .iter()
                .map(CoreDoc::from_value)
                .collect::<Option<_>>()?,
        })
    }
}

/// The orchestrator-statistics entry appended to `verify --json`
/// output when the run was parallel.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecDoc {
    /// The human-readable one-line summary.
    pub summary: String,
    /// Checks generated.
    pub generated: u64,
    /// Real solver invocations.
    pub solver_calls: u64,
    /// Checks answered by structural dedup.
    pub dedup_hits: u64,
    /// Checks answered from the cross-run cache.
    pub cache_hits: u64,
    /// Cached entries invalidated by re-validation.
    pub stale_cache_entries: u64,
    /// Incremental session groups.
    pub groups: u64,
    /// Warm assumption solves on those sessions.
    pub warm_assumption_solves: u64,
    /// solver_calls / generated.
    pub dedup_ratio: f64,
    /// Worker threads.
    pub threads: u64,
}

impl ExecDoc {
    /// Render in the pinned field order.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("orchestrator".to_string(), Value::Str(self.summary.clone())),
            ("generated".to_string(), Value::UInt(self.generated)),
            ("solver_calls".to_string(), Value::UInt(self.solver_calls)),
            ("dedup_hits".to_string(), Value::UInt(self.dedup_hits)),
            ("cache_hits".to_string(), Value::UInt(self.cache_hits)),
            (
                "stale_cache_entries".to_string(),
                Value::UInt(self.stale_cache_entries),
            ),
            ("groups".to_string(), Value::UInt(self.groups)),
            (
                "warm_assumption_solves".to_string(),
                Value::UInt(self.warm_assumption_solves),
            ),
            ("dedup_ratio".to_string(), Value::Float(self.dedup_ratio)),
            ("threads".to_string(), Value::UInt(self.threads)),
        ])
    }
}

/// The on-disk spill encoding of one solved check — the schema behind
/// `crates/core`'s result-cache files (`cache.json`). Passes carry
/// their optional unsat core; failures carry the counterexample routes
/// as opaque values (the route encoding belongs to `crates/core`).
#[derive(Clone, Debug, PartialEq)]
pub enum SpilledCheck {
    /// A passing check.
    Pass {
        /// Solver variable count of the one real invocation.
        vars: u64,
        /// Solver clause count.
        clauses: u64,
        /// Conjunct-index unsat core, for session-solved passes.
        core: Option<Vec<usize>>,
    },
    /// A failing check with its counterexample.
    Fail {
        /// Solver variable count.
        vars: u64,
        /// Solver clause count.
        clauses: u64,
        /// Whether the counterexample output was a rejection.
        rejected: bool,
        /// The counterexample input route (opaque to this crate).
        input: Value,
        /// The counterexample output route, or `Null`.
        output: Value,
    },
}

impl SpilledCheck {
    /// Render in the pinned spill field order: `pass`, `vars`,
    /// `clauses`, then `core` (passes) or `rejected`, `input`,
    /// `output` (failures).
    pub fn to_value(&self) -> Value {
        let base = |pass: bool, vars: u64, clauses: u64| {
            vec![
                ("pass".to_string(), Value::Bool(pass)),
                ("vars".to_string(), Value::Int(vars as i64)),
                ("clauses".to_string(), Value::Int(clauses as i64)),
            ]
        };
        match self {
            SpilledCheck::Pass {
                vars,
                clauses,
                core,
            } => {
                let mut fields = base(true, *vars, *clauses);
                if let Some(core) = core {
                    fields.push((
                        "core".to_string(),
                        Value::Array(core.iter().map(|&i| Value::Int(i as i64)).collect()),
                    ));
                }
                Value::Object(fields)
            }
            SpilledCheck::Fail {
                vars,
                clauses,
                rejected,
                input,
                output,
            } => {
                let mut fields = base(false, *vars, *clauses);
                fields.push(("rejected".to_string(), Value::Bool(*rejected)));
                fields.push(("input".to_string(), input.clone()));
                fields.push(("output".to_string(), output.clone()));
                Value::Object(fields)
            }
        }
    }

    /// Decode the [`SpilledCheck::to_value`] form. Missing `vars` /
    /// `clauses` decode as zero (older spills); a missing or malformed
    /// `pass` field is a schema error (`None`).
    pub fn from_value(v: &Value) -> Option<SpilledCheck> {
        let vars = v["vars"].as_u64().unwrap_or(0);
        let clauses = v["clauses"].as_u64().unwrap_or(0);
        match v["pass"].as_bool()? {
            true => Some(SpilledCheck::Pass {
                vars,
                clauses,
                core: v["core"].as_array().map(|xs| {
                    xs.iter()
                        .filter_map(|x| x.as_u64().map(|n| n as usize))
                        .collect()
                }),
            }),
            false => Some(SpilledCheck::Fail {
                vars,
                clauses,
                rejected: v["rejected"].as_bool()?,
                input: v["input"].clone(),
                output: v["output"].clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safety_report_field_order_is_pinned() {
        let r = PropertyReport {
            property: "p".into(),
            liveness: false,
            passed: true,
            checks: 3,
            timing: Some(TimingDoc {
                solver_calls: 3,
                total_seconds: 0.0,
                solve_seconds: 0.0,
            }),
            failures: vec![],
            cores: vec![CoreDoc {
                check: 0,
                kind: "import".into(),
                location: "A -> B".into(),
                core: vec![1],
                load_bearing: vec!["x".into()],
                conjuncts: 2,
            }],
        };
        let text = serde_json::to_string(&r.to_value()).unwrap();
        assert_eq!(
            text,
            r#"{"property":"p","passed":true,"checks":3,"solver_calls":3,"total_seconds":0.0,"solve_seconds":0.0,"failures":[],"cores":[{"check":0,"kind":"import","location":"A -> B","core":[1],"load_bearing":["x"],"conjuncts":2}]}"#
        );
        let back = PropertyReport::from_value(&r.to_value()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn liveness_report_carries_kind_and_no_timing() {
        let r = PropertyReport {
            property: "l".into(),
            liveness: true,
            passed: false,
            checks: 1,
            timing: None,
            failures: vec![FailureDoc {
                kind: "subsumption".into(),
                location: "A".into(),
                route_map: None,
                description: "d".into(),
            }],
            cores: vec![],
        };
        let text = serde_json::to_string(&r.to_value()).unwrap();
        assert_eq!(
            text,
            r#"{"property":"l","kind":"liveness","passed":false,"checks":1,"failures":[{"kind":"subsumption","location":"A","route_map":null,"description":"d"}],"cores":[]}"#
        );
        let back = PropertyReport::from_value(&r.to_value()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn spill_roundtrips_both_verdicts() {
        let pass = SpilledCheck::Pass {
            vars: 10,
            clauses: 20,
            core: Some(vec![0, 2]),
        };
        assert_eq!(
            serde_json::to_string(&pass.to_value()).unwrap(),
            r#"{"pass":true,"vars":10,"clauses":20,"core":[0,2]}"#
        );
        assert_eq!(SpilledCheck::from_value(&pass.to_value()), Some(pass));

        let fail = SpilledCheck::Fail {
            vars: 1,
            clauses: 2,
            rejected: true,
            input: Value::Str("route".into()),
            output: Value::Null,
        };
        assert_eq!(
            serde_json::to_string(&fail.to_value()).unwrap(),
            r#"{"pass":false,"vars":1,"clauses":2,"rejected":true,"input":"route","output":null}"#
        );
        assert_eq!(SpilledCheck::from_value(&fail.to_value()), Some(fail));
        assert_eq!(SpilledCheck::from_value(&Value::Null), None);
    }
}
