//! The `lightyear serve` wire protocol: a versioned request/response
//! envelope around the typed calls in [`ApiCall`].
//!
//! Every request is `POST /api/v1` with an [`ApiRequest`] JSON body;
//! every answer is an [`ApiResponse`]. Both carry `api_version`
//! explicitly: a request with a version this build does not speak is
//! rejected whole with a typed error — never half-interpreted.

use serde_json::Value;

/// The protocol version this build speaks. Bumped on any breaking
/// change to the envelope, the calls, or the report schema.
pub const API_VERSION: u64 = 1;

/// One named configuration file, shipped inline.
#[derive(Clone, Debug, PartialEq)]
pub struct ConfigFile {
    /// File name (router hostname by convention; no path separators).
    pub name: String,
    /// The configuration text.
    pub text: String,
}

impl ConfigFile {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("text".to_string(), Value::Str(self.text.clone())),
        ])
    }

    fn from_value(v: &Value) -> Option<ConfigFile> {
        Some(ConfigFile {
            name: v["name"].as_str()?.to_string(),
            text: v["text"].as_str()?.to_string(),
        })
    }
}

/// The typed calls of the daemon API.
#[derive(Clone, Debug, PartialEq)]
pub enum ApiCall {
    /// Establish (or replace) a tenant's configuration set and spec,
    /// and verify it as the tenant's baseline round.
    SubmitConfigs {
        /// The full configuration set.
        configs: Vec<ConfigFile>,
        /// The verification spec (the `spec.json` document, inline).
        spec: Value,
    },
    /// Replace the tenant's configuration set and re-verify only what
    /// the semantic diff dirtied.
    SubmitDelta {
        /// The full (edited) configuration set.
        configs: Vec<ConfigFile>,
    },
    /// Re-verify the current configuration set without a delta — a
    /// full round over warm engines.
    Verify,
    /// The `cores` arrays of the tenant's last round, optionally
    /// filtered to one property by name.
    QueryCores {
        /// Property-name filter.
        property: Option<String>,
    },
    /// The tenant's last round's full report.
    GetReport,
    /// Daemon health and per-tenant round counts. Tenant-independent.
    Health,
}

impl ApiCall {
    /// The call name used on the wire (and in per-tenant metrics).
    pub fn name(&self) -> &'static str {
        match self {
            ApiCall::SubmitConfigs { .. } => "SubmitConfigs",
            ApiCall::SubmitDelta { .. } => "SubmitDelta",
            ApiCall::Verify => "Verify",
            ApiCall::QueryCores { .. } => "QueryCores",
            ApiCall::GetReport => "GetReport",
            ApiCall::Health => "Health",
        }
    }

    fn to_value(&self) -> Value {
        match self {
            ApiCall::SubmitConfigs { configs, spec } => Value::Object(vec![(
                "SubmitConfigs".to_string(),
                Value::Object(vec![
                    (
                        "configs".to_string(),
                        Value::Array(configs.iter().map(ConfigFile::to_value).collect()),
                    ),
                    ("spec".to_string(), spec.clone()),
                ]),
            )]),
            ApiCall::SubmitDelta { configs } => Value::Object(vec![(
                "SubmitDelta".to_string(),
                Value::Object(vec![(
                    "configs".to_string(),
                    Value::Array(configs.iter().map(ConfigFile::to_value).collect()),
                )]),
            )]),
            ApiCall::Verify => Value::Str("Verify".to_string()),
            ApiCall::QueryCores { property } => Value::Object(vec![(
                "QueryCores".to_string(),
                Value::Object(vec![(
                    "property".to_string(),
                    match property {
                        Some(p) => Value::Str(p.clone()),
                        None => Value::Null,
                    },
                )]),
            )]),
            ApiCall::GetReport => Value::Str("GetReport".to_string()),
            ApiCall::Health => Value::Str("Health".to_string()),
        }
    }

    fn from_value(v: &Value) -> Result<ApiCall, String> {
        if let Some(name) = v.as_str() {
            return match name {
                "Verify" => Ok(ApiCall::Verify),
                "GetReport" => Ok(ApiCall::GetReport),
                "Health" => Ok(ApiCall::Health),
                other => Err(format!("unknown call {other:?}")),
            };
        }
        let Value::Object(fields) = v else {
            return Err("call must be a string or a single-key object".to_string());
        };
        let [(name, body)] = fields.as_slice() else {
            return Err("call object must have exactly one key".to_string());
        };
        let configs = |body: &Value| -> Result<Vec<ConfigFile>, String> {
            body["configs"]
                .as_array()
                .ok_or_else(|| format!("{name}: configs must be an array"))?
                .iter()
                .map(|c| {
                    ConfigFile::from_value(c)
                        .ok_or_else(|| format!("{name}: each config needs name and text"))
                })
                .collect()
        };
        match name.as_str() {
            "SubmitConfigs" => {
                let spec = body.get("spec").cloned().unwrap_or(Value::Null);
                if spec.is_null() {
                    return Err("SubmitConfigs: spec is required".to_string());
                }
                Ok(ApiCall::SubmitConfigs {
                    configs: configs(body)?,
                    spec,
                })
            }
            "SubmitDelta" => Ok(ApiCall::SubmitDelta {
                configs: configs(body)?,
            }),
            "QueryCores" => Ok(ApiCall::QueryCores {
                property: body["property"].as_str().map(str::to_string),
            }),
            other => Err(format!("unknown call {other:?}")),
        }
    }
}

/// The request envelope: explicit version, tenant, typed call.
#[derive(Clone, Debug, PartialEq)]
pub struct ApiRequest {
    /// Must equal [`API_VERSION`].
    pub api_version: u64,
    /// Tenant name. Required for every call except `Health`.
    pub tenant: String,
    /// The typed call.
    pub call: ApiCall,
}

impl ApiRequest {
    /// A v1 request.
    pub fn new(tenant: impl Into<String>, call: ApiCall) -> ApiRequest {
        ApiRequest {
            api_version: API_VERSION,
            tenant: tenant.into(),
            call,
        }
    }

    /// Render the envelope.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("api_version".to_string(), Value::UInt(self.api_version)),
            ("tenant".to_string(), Value::Str(self.tenant.clone())),
            ("call".to_string(), self.call.to_value()),
        ])
    }

    /// Parse and validate an envelope. Version mismatches and malformed
    /// calls are typed errors — the daemon turns them into `ok: false`
    /// responses, never a half-interpreted request.
    pub fn from_value(v: &Value) -> Result<ApiRequest, String> {
        let version = v["api_version"].as_u64().ok_or("api_version is required")?;
        if version != API_VERSION {
            return Err(format!(
                "unsupported api_version {version} (this daemon speaks {API_VERSION})"
            ));
        }
        let call = ApiCall::from_value(v.get("call").ok_or("call is required")?)?;
        let tenant = v["tenant"].as_str().unwrap_or("").to_string();
        if tenant.is_empty() && call != ApiCall::Health {
            return Err(format!("{}: tenant is required", call.name()));
        }
        if tenant.contains(['/', '\\', '.']) {
            // Tenant names become cache-directory names.
            return Err(format!("invalid tenant name {tenant:?}"));
        }
        Ok(ApiRequest {
            api_version: version,
            tenant,
            call,
        })
    }

    /// Parse an envelope from JSON text.
    pub fn from_json(text: &str) -> Result<ApiRequest, String> {
        let v: Value = serde_json::from_str(text).map_err(|e| format!("bad JSON: {e}"))?;
        ApiRequest::from_value(&v)
    }
}

/// The response envelope.
#[derive(Clone, Debug, PartialEq)]
pub struct ApiResponse {
    /// Always [`API_VERSION`] for this build.
    pub api_version: u64,
    /// Whether the call succeeded.
    pub ok: bool,
    /// The error message when `ok` is false.
    pub error: Option<String>,
    /// The call's result document (`Null` on error).
    pub result: Value,
}

impl ApiResponse {
    /// A successful response.
    pub fn success(result: Value) -> ApiResponse {
        ApiResponse {
            api_version: API_VERSION,
            ok: true,
            error: None,
            result,
        }
    }

    /// A failed response.
    pub fn failure(error: impl Into<String>) -> ApiResponse {
        ApiResponse {
            api_version: API_VERSION,
            ok: false,
            error: Some(error.into()),
            result: Value::Null,
        }
    }

    /// Render the envelope.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("api_version".to_string(), Value::UInt(self.api_version)),
            ("ok".to_string(), Value::Bool(self.ok)),
            (
                "error".to_string(),
                match &self.error {
                    Some(e) => Value::Str(e.clone()),
                    None => Value::Null,
                },
            ),
            ("result".to_string(), self.result.clone()),
        ])
    }

    /// Decode the [`ApiResponse::to_value`] form.
    pub fn from_value(v: &Value) -> Option<ApiResponse> {
        Some(ApiResponse {
            api_version: v["api_version"].as_u64()?,
            ok: v["ok"].as_bool()?,
            error: v["error"].as_str().map(str::to_string),
            result: v.get("result").cloned().unwrap_or(Value::Null),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_every_call() {
        let calls = vec![
            ApiCall::SubmitConfigs {
                configs: vec![ConfigFile {
                    name: "R1".into(),
                    text: "hostname R1\n".into(),
                }],
                spec: Value::Object(vec![("safety".to_string(), Value::Array(vec![]))]),
            },
            ApiCall::SubmitDelta {
                configs: vec![ConfigFile {
                    name: "R1".into(),
                    text: "hostname R1\n".into(),
                }],
            },
            ApiCall::Verify,
            ApiCall::QueryCores {
                property: Some("p".into()),
            },
            ApiCall::QueryCores { property: None },
            ApiCall::GetReport,
        ];
        for call in calls {
            let req = ApiRequest::new("acme", call);
            let text = serde_json::to_string(&req.to_value()).unwrap();
            assert_eq!(ApiRequest::from_json(&text).unwrap(), req);
        }
        // Health needs no tenant.
        let req = ApiRequest::new("", ApiCall::Health);
        let text = serde_json::to_string(&req.to_value()).unwrap();
        assert_eq!(ApiRequest::from_json(&text).unwrap(), req);
    }

    #[test]
    fn version_mismatch_is_a_typed_error() {
        let mut v = ApiRequest::new("t", ApiCall::Verify).to_value();
        if let Value::Object(fields) = &mut v {
            fields[0].1 = Value::UInt(99);
        }
        let err = ApiRequest::from_value(&v).unwrap_err();
        assert!(err.contains("unsupported api_version 99"), "{err}");
        assert!(err.contains("speaks 1"), "{err}");
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for (body, needle) in [
            (r#"{}"#, "api_version"),
            (r#"{"api_version":1}"#, "call is required"),
            (r#"{"api_version":1,"call":"Nope"}"#, "unknown call"),
            (r#"{"api_version":1,"call":"Verify"}"#, "tenant is required"),
            (
                r#"{"api_version":1,"tenant":"a/b","call":"Verify"}"#,
                "invalid tenant",
            ),
            (
                r#"{"api_version":1,"tenant":"t","call":{"SubmitConfigs":{"configs":[]}}}"#,
                "spec is required",
            ),
            (not_json(), "bad JSON"),
        ] {
            let err = ApiRequest::from_json(body).unwrap_err();
            assert!(err.contains(needle), "{body} -> {err}");
        }
    }

    fn not_json() -> &'static str {
        "{nope"
    }

    #[test]
    fn response_roundtrips() {
        let ok = ApiResponse::success(Value::Str("r".into()));
        assert_eq!(ApiResponse::from_value(&ok.to_value()), Some(ok));
        let err = ApiResponse::failure("boom");
        let text = serde_json::to_string(&err.to_value()).unwrap();
        assert_eq!(
            text,
            r#"{"api_version":1,"ok":false,"error":"boom","result":null}"#
        );
        assert_eq!(ApiResponse::from_value(&err.to_value()), Some(err));
    }
}
