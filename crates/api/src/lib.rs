//! The versioned engine-facing API shared by every lightyear surface.
//!
//! This crate is deliberately a **leaf**: it depends on nothing but the
//! serde shims, so `crates/core` (the spill format), `crates/cli` (the
//! `verify --json` renderer) and the `lightyear serve` daemon can all
//! depend on it — one schema, one serializer, no drift.
//!
//! Two halves:
//!
//! * [`report`] — the report document types ([`report::PropertyReport`],
//!   [`report::FailureDoc`], [`report::CoreDoc`], [`report::ExecDoc`])
//!   and the cached-result spill schema ([`report::SpilledCheck`]).
//!   `verify --json`, the daemon's `GetReport`, and the on-disk result
//!   cache all render through these types; the `verify --json` bytes
//!   are pinned by a golden test in `crates/cli`.
//! * [`wire`] — the request/response envelope of the `serve` daemon
//!   ([`wire::ApiRequest`] / [`wire::ApiResponse`] with an explicit
//!   `api_version` field, and the typed calls in [`wire::ApiCall`]).
//!
//! Versioning policy: [`wire::API_VERSION`] is bumped on any breaking
//! change to the envelope, the calls, or the report schema. A request
//! carrying a different version is rejected up front with a typed
//! error, never half-interpreted.

pub mod report;
pub mod wire;

pub use report::{CoreDoc, ExecDoc, FailureDoc, PropertyReport, SpilledCheck};
pub use wire::{ApiCall, ApiRequest, ApiResponse, ConfigFile, API_VERSION};
