//! The one place the daemon-grade telemetry flags are parsed and
//! brought up. `watch`, `fuzz` and `serve` all accept the same five
//! flags — `--listen`, `--metrics-json`, `--events-jsonl`,
//! `--flight-json`, `--stale-after-ms` — and used to each re-implement
//! the parsing and wiring; [`TelemetryOpts::parse`] is now the single
//! parser and [`TelemetryOpts::start`] the single bring-up, so the
//! flags cannot drift apart in defaults or error messages.

use crate::flag_value;
use obs::http::{Handler, Status, TelemetryServer};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Parsed telemetry flags, defaults applied.
pub(crate) struct TelemetryOpts {
    /// `--listen <addr>`: serve `/metrics`, `/healthz`, `/trace` (and,
    /// for `serve`, the API) on this address.
    pub(crate) listen: Option<String>,
    /// `--metrics-json <path>`: atomically rewrite the status document
    /// after every round.
    pub(crate) metrics_json: Option<PathBuf>,
    /// `--events-jsonl <path>`: append the structured event stream.
    pub(crate) events_jsonl: Option<PathBuf>,
    /// `--flight-json <path>` (default `flight.json`): the always-on
    /// flight recorder's dump target.
    pub(crate) flight_json: PathBuf,
    /// `--stale-after-ms <n>`: `/healthz` answers 503 after this much
    /// round silence.
    pub(crate) stale_after: Option<Duration>,
}

/// A running telemetry stack: the installed registry, the shared round
/// status, and the HTTP listener when one was requested.
pub(crate) struct ActiveTelemetry {
    pub(crate) reg: Arc<obs::Registry>,
    pub(crate) status: Arc<Status>,
    pub(crate) server: Option<TelemetryServer>,
}

impl TelemetryOpts {
    /// The value-taking flags this module owns (each consumes one
    /// argument). Front-ends include these in their strict-flag loops.
    pub(crate) const FLAGS: [&'static str; 5] = [
        "--listen",
        "--metrics-json",
        "--events-jsonl",
        "--flight-json",
        "--stale-after-ms",
    ];

    /// Whether `flag` is one of the shared telemetry flags.
    pub(crate) fn takes(flag: &str) -> bool {
        Self::FLAGS.contains(&flag)
    }

    /// Parse the shared flags out of `args`. Explicit flags win over
    /// defaults; the only default is `flight.json` for the always-on
    /// flight recorder.
    pub(crate) fn parse(args: &[String]) -> Result<TelemetryOpts, String> {
        let stale_after = match flag_value(args, "--stale-after-ms").map(|v| v.parse::<u64>()) {
            None => None,
            Some(Ok(n)) if n > 0 => Some(Duration::from_millis(n)),
            Some(_) => return Err("--stale-after-ms needs a positive integer".to_string()),
        };
        Ok(TelemetryOpts {
            listen: flag_value(args, "--listen"),
            metrics_json: flag_value(args, "--metrics-json").map(PathBuf::from),
            events_jsonl: flag_value(args, "--events-jsonl").map(PathBuf::from),
            flight_json: PathBuf::from(
                flag_value(args, "--flight-json").unwrap_or_else(|| "flight.json".into()),
            ),
            stale_after,
        })
    }

    /// Bring the stack up: install the always-on flight recorder,
    /// attach the event sink, and start the listener when `--listen`
    /// was given. `label` prefixes the listening line; `handler` (the
    /// API, for `serve`) is mounted beside the built-in endpoints and
    /// `max_conns` bounds concurrent connections.
    pub(crate) fn start(
        &self,
        label: &str,
        handler: Option<Handler>,
        max_conns: usize,
    ) -> Result<ActiveTelemetry, String> {
        // The flight recorder is always on: the registry install is the
        // whole cost when nothing else is requested (bounded rings, one
        // uncontended atomic per event).
        let reg = obs::install();
        obs::install_panic_flight(&self.flight_json);
        if let Some(path) = &self.events_jsonl {
            let sink = obs::ExportSink::create(path, obs::ExportSink::DEFAULT_MAX_BYTES)
                .map_err(|e| format!("cannot create event log {path:?}: {e}"))?;
            reg.set_export(Some(Arc::new(sink)));
        }
        let status = Status::new(self.stale_after);
        let server = match &self.listen {
            Some(addr) => {
                let s =
                    obs::http::serve_with(addr, reg.clone(), status.clone(), handler, max_conns)
                        .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
                println!("{label}: listening on http://{}", s.addr());
                Some(s)
            }
            None => None,
        };
        Ok(ActiveTelemetry {
            reg,
            status,
            server,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_apply_without_flags() {
        let o = TelemetryOpts::parse(&args(&[])).unwrap();
        assert_eq!(o.listen, None);
        assert_eq!(o.metrics_json, None);
        assert_eq!(o.events_jsonl, None);
        assert_eq!(o.flight_json, PathBuf::from("flight.json"));
        assert_eq!(o.stale_after, None);
    }

    #[test]
    fn explicit_flags_take_precedence_over_defaults() {
        let o = TelemetryOpts::parse(&args(&[
            "--listen",
            "127.0.0.1:0",
            "--metrics-json",
            "m.json",
            "--events-jsonl",
            "e.jsonl",
            "--flight-json",
            "custom-flight.json",
            "--stale-after-ms",
            "1500",
        ]))
        .unwrap();
        assert_eq!(o.listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(o.metrics_json, Some(PathBuf::from("m.json")));
        assert_eq!(o.events_jsonl, Some(PathBuf::from("e.jsonl")));
        assert_eq!(o.flight_json, PathBuf::from("custom-flight.json"));
        assert_eq!(o.stale_after, Some(Duration::from_millis(1500)));
    }

    #[test]
    fn stale_after_rejects_junk_with_a_precise_message() {
        for bad in ["abc", "0", "-3", "1.5"] {
            let err = TelemetryOpts::parse(&args(&["--stale-after-ms", bad]))
                .err()
                .expect("junk must be rejected");
            assert_eq!(
                err, "--stale-after-ms needs a positive integer",
                "input {bad:?}"
            );
        }
    }

    #[test]
    fn strict_flag_helper_covers_exactly_the_shared_flags() {
        for f in TelemetryOpts::FLAGS {
            assert!(TelemetryOpts::takes(f), "{f} must be recognized");
        }
        assert!(!TelemetryOpts::takes("--interval-ms"));
        assert!(!TelemetryOpts::takes("--cache-dir"));
    }
}
