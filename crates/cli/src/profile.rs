//! The `profile` deep-dive subcommand and the profile-report assembly
//! shared with `verify --profile`.
//!
//! A profile report is ONE self-contained JSON file that is
//! simultaneously a Chrome `trace_event` file (Perfetto and
//! `chrome://tracing` load it directly — extra top-level keys are
//! ignored by both viewers) and a structured profile: the wall-clock
//! split across pipeline stages (encode / solve / cache validation /
//! everything else), the hottest check groups by solve time, the solver
//! counter table, a per-property breakdown, and the full metrics
//! snapshot.

use crate::spec::Spec;
use crate::{flag_value, load_network, load_spec, usage};
use lightyear::engine::{RunMode, Verifier};
use std::path::Path;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Wall-clock attribution of a run into pipeline stages, from the
/// metrics counters. Encode / solve / cache-validate are measured busy
/// time; with parallel workers their sum can exceed the wall clock, in
/// which case all three are scaled down proportionally (the raw busy
/// values stay available under `metrics`) so the four stages always sum
/// to the wall clock exactly.
pub(crate) fn stages_json(snap: &obs::MetricsSnapshot, wall: Duration) -> serde_json::Value {
    let wall_s = wall.as_secs_f64();
    let encode = snap.counter("smt.encode_ns") as f64 / 1e9;
    let solve = snap.counter("smt.solve_ns") as f64 / 1e9;
    let cache = snap.counter("cache.validate_ns") as f64 / 1e9;
    let busy = encode + solve + cache;
    let scale = if busy > wall_s && busy > 0.0 {
        wall_s / busy
    } else {
        1.0
    };
    let (e, s, c) = (encode * scale, solve * scale, cache * scale);
    let other = (wall_s - e - s - c).max(0.0);
    serde_json::json!({
        "wall_seconds": wall_s,
        "encode_seconds": e,
        "solve_seconds": s,
        "cache_seconds": c,
        "other_seconds": other,
        "stage_sum_seconds": e + s + c + other,
        "parallel_scale": scale,
    })
}

/// The hottest check groups by cumulative solve-span time, hottest
/// first: `(group label, spans, total seconds)`.
pub(crate) fn hot_groups(reg: &obs::Registry, top: usize) -> Vec<(String, u64, f64)> {
    let mut groups: Vec<(String, u64, u64)> = reg
        .span_totals()
        .into_iter()
        .filter(|((name, _), _)| name == "solve_group")
        .map(|((_, group), (count, ns))| (group, count, ns))
        .collect();
    groups.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
    groups.truncate(top);
    groups
        .into_iter()
        .map(|(g, n, ns)| (g, n, ns as f64 / 1e9))
        .collect()
}

/// Propagation throughput over solver busy time (search only, not
/// encoding): the headline "raw speed" number of the solver section.
fn props_per_sec(snap: &obs::MetricsSnapshot) -> f64 {
    let solve_s = snap.counter("smt.solve_ns") as f64 / 1e9;
    if solve_s > 0.0 {
        snap.counter("smt.propagations") as f64 / solve_s
    } else {
        0.0
    }
}

/// Portfolio win attribution: which jittered variant answered first,
/// overall (from the win counters) and per check group (from the
/// zero-duration `portfolio_win` spans, whose group value is
/// `"<group label>/v<variant>"`).
fn portfolio_json(reg: &obs::Registry, snap: &obs::MetricsSnapshot) -> serde_json::Value {
    let wins: Vec<u64> = lightyear::smt::PORTFOLIO_WIN_COUNTERS
        .iter()
        .map(|k| snap.counter(k))
        .collect();
    let mut groups: Vec<(String, u64)> = reg
        .span_totals()
        .into_iter()
        .filter(|((name, _), _)| name == "portfolio_win")
        .map(|((_, group), (count, _))| (group, count))
        .collect();
    groups.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    serde_json::json!({
        "races": snap.counter("smt.portfolio_races"),
        "wins_by_variant": wins,
        "wins_by_group": groups
            .into_iter()
            .map(|(g, n)| serde_json::json!({"group": g, "wins": n}))
            .collect::<Vec<_>>(),
    })
}

fn solver_json(reg: &obs::Registry, snap: &obs::MetricsSnapshot) -> serde_json::Value {
    serde_json::json!({
        "solves": snap.counter("smt.solves"),
        "decisions": snap.counter("smt.decisions"),
        "propagations": snap.counter("smt.propagations"),
        "propagations_per_sec": props_per_sec(snap),
        "conflicts": snap.counter("smt.conflicts"),
        "restarts": snap.counter("smt.restarts"),
        "learnt_db_peak": snap.gauge("smt.learnt_db"),
        "learnt_gc": snap.counter("smt.learnt_gc"),
        "inprocessing": serde_json::json!({
            "sweeps": snap.counter("smt.sweeps"),
            "subsumed": snap.counter("smt.subsumed"),
            "strengthened": snap.counter("smt.strengthened"),
            "vivified": snap.counter("smt.vivified"),
        }),
        "portfolio": portfolio_json(reg, snap),
    })
}

/// Assemble the self-contained profile report (see module docs).
pub(crate) fn profile_json(
    reg: &obs::Registry,
    wall: Duration,
    properties: Vec<serde_json::Value>,
    top: usize,
) -> serde_json::Value {
    let snap = reg.snapshot();
    let hot: Vec<serde_json::Value> = hot_groups(reg, top)
        .into_iter()
        .map(|(group, spans, seconds)| {
            serde_json::json!({
                "group": group,
                "spans": spans,
                "seconds": seconds,
            })
        })
        .collect();
    let mut v = reg.chrome_trace();
    if let serde_json::Value::Object(map) = &mut v {
        map.push(("stages".to_string(), stages_json(&snap, wall)));
        map.push(("hot_groups".to_string(), serde_json::Value::Array(hot)));
        map.push(("solver".to_string(), solver_json(reg, &snap)));
        map.push((
            "properties".to_string(),
            serde_json::Value::Array(properties),
        ));
        map.push(("metrics".to_string(), snap.to_json()));
    }
    v
}

/// Write the profile to `path` (pretty-printed). The same file feeds
/// both `jq` and Perfetto.
pub(crate) fn write_profile(path: &str, profile: &serde_json::Value) -> Result<(), String> {
    let text = serde_json::to_string_pretty(profile).map_err(|e| e.to_string())?;
    std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))
}

fn pct(part: f64, whole: f64) -> f64 {
    if whole > 0.0 {
        part / whole * 100.0
    } else {
        0.0
    }
}

/// The human profile report printed by `lightyear profile`.
fn render_report(reg: &obs::Registry, wall: Duration, top: usize, out_path: &str) {
    let snap = reg.snapshot();
    let wall_s = wall.as_secs_f64();
    let stages = stages_json(&snap, wall);
    let sec = |key: &str| {
        stages
            .as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key))
            .and_then(|(_, v)| v.as_f64())
            .unwrap_or(0.0)
    };
    let (e, s, c, o) = (
        sec("encode_seconds"),
        sec("solve_seconds"),
        sec("cache_seconds"),
        sec("other_seconds"),
    );
    println!(
        "wall {wall_s:.4}s: encode {e:.4}s ({:.1}%), solve {s:.4}s ({:.1}%), \
         cache {c:.4}s ({:.1}%), other {o:.4}s ({:.1}%)",
        pct(e, wall_s),
        pct(s, wall_s),
        pct(c, wall_s),
        pct(o, wall_s),
    );
    let hot = hot_groups(reg, top);
    if !hot.is_empty() {
        println!("hottest check groups (top {}):", hot.len());
        for (i, (group, spans, seconds)) in hot.iter().enumerate() {
            println!(
                "  {:>2}. {seconds:.6}s  {group}  ({spans} solve span{})",
                i + 1,
                if *spans == 1 { "" } else { "s" },
            );
        }
    }
    println!(
        "solver: {} solves, {} decisions, {} propagations ({:.2}M props/s), \
         {} conflicts, {} restarts; learnt DB peak {}, {} GC'd",
        snap.counter("smt.solves"),
        snap.counter("smt.decisions"),
        snap.counter("smt.propagations"),
        props_per_sec(&snap) / 1e6,
        snap.counter("smt.conflicts"),
        snap.counter("smt.restarts"),
        snap.gauge("smt.learnt_db"),
        snap.counter("smt.learnt_gc"),
    );
    println!(
        "inprocessing: {} sweeps; {} learnts subsumed, {} strengthened, {} vivified",
        snap.counter("smt.sweeps"),
        snap.counter("smt.subsumed"),
        snap.counter("smt.strengthened"),
        snap.counter("smt.vivified"),
    );
    let races = snap.counter("smt.portfolio_races");
    if races > 0 {
        let wins: Vec<String> = lightyear::smt::PORTFOLIO_WIN_COUNTERS
            .iter()
            .enumerate()
            .map(|(i, k)| format!("v{i}:{}", snap.counter(k)))
            .collect();
        println!("portfolio: {races} races; wins {}", wins.join(" "));
        let attribution = portfolio_json(reg, &snap);
        if let Some(by_group) = attribution.get("wins_by_group").and_then(|v| v.as_array()) {
            for w in by_group.iter().take(top) {
                println!(
                    "  {} x{}",
                    w.get("group").and_then(|v| v.as_str()).unwrap_or("?"),
                    w.get("wins").and_then(|v| v.as_u64()).unwrap_or(0),
                );
            }
        }
    }
    println!(
        "engine: {} checks posed, {} folded away; term pool peak {}",
        snap.counter("engine.checks_posed"),
        snap.counter("engine.checks_folded"),
        snap.gauge("engine.term_pool_terms"),
    );
    println!(
        "cache: {} hits, {} misses, {} re-validations",
        snap.counter("cache.hits"),
        snap.counter("cache.misses"),
        snap.counter("cache.validates"),
    );
    println!(
        "trace: {} spans -> {out_path} (load it in Perfetto or chrome://tracing)",
        reg.spans().len(),
    );
}

/// `lightyear profile <SPEC> <CONFIG_DIR>`: run the whole spec once
/// with the metrics sink installed and emit the deep-dive report.
pub(crate) fn cmd_profile(args: &[String]) -> ExitCode {
    // Strict flags plus exactly two positionals: a typo'd option must
    // not be silently read as a spec or directory path.
    let mut pos: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            f @ ("--jobs" | "--out" | "--top" | "--portfolio") => {
                if i + 1 >= args.len() {
                    eprintln!("error: {f} needs a value");
                    return usage();
                }
                i += 2;
            }
            "--sequential" => i += 1,
            a if a.starts_with("--") => {
                eprintln!("error: unknown profile option {a}");
                return usage();
            }
            a => {
                pos.push(a.to_string());
                i += 1;
            }
        }
    }
    if pos.len() != 2 {
        eprintln!("error: profile needs <SPEC> <CONFIG_DIR>");
        return usage();
    }
    let (spec_path, dir) = (&pos[0], &pos[1]);
    let jobs = match flag_value(args, "--jobs").map(|v| v.parse::<usize>()) {
        None => None,
        Some(Ok(n)) if n > 0 => Some(n),
        Some(_) => {
            eprintln!("error: --jobs needs a positive integer");
            return usage();
        }
    };
    let top = match flag_value(args, "--top").map(|v| v.parse::<usize>()) {
        None => 10,
        Some(Ok(n)) if n > 0 => n,
        Some(_) => {
            eprintln!("error: --top needs a positive integer");
            return usage();
        }
    };
    let out_path = flag_value(args, "--out").unwrap_or_else(|| "profile.json".to_string());
    let sequential = args.iter().any(|a| a == "--sequential");
    let portfolio = match flag_value(args, "--portfolio").map(|v| v.parse::<usize>()) {
        None => None,
        Some(Ok(k)) if (2..=lightyear::smt::PORTFOLIO_MAX_K).contains(&k) => Some(k),
        Some(_) => {
            eprintln!(
                "error: --portfolio needs a solver count in 2..={}",
                lightyear::smt::PORTFOLIO_MAX_K
            );
            return usage();
        }
    };

    let reg = obs::install();
    let t0 = Instant::now();
    let net = match load_network(Path::new(dir)) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec: Spec = match load_spec(spec_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let topo = &net.topology;
    let mut verifier = Verifier::new(topo, &net.policy).with_mode(if sequential {
        RunMode::Sequential
    } else {
        RunMode::Parallel
    });
    if let Some(n) = jobs {
        verifier = verifier.with_jobs(n);
    }
    if let Some(k) = portfolio {
        verifier = verifier.with_portfolio(lightyear::engine::PortfolioTuning {
            k,
            ..Default::default()
        });
    }
    for g in &spec.ghosts {
        match g.resolve(topo) {
            Ok(g) => verifier = verifier.with_ghost(g),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let resolved: Vec<_> = match spec
        .safety
        .iter()
        .map(|s| s.resolve(topo))
        .collect::<Result<Vec<_>, _>>()
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let suites: Vec<(&[lightyear::SafetyProperty], &lightyear::NetworkInvariants)> = resolved
        .iter()
        .map(|(p, i)| (std::slice::from_ref(p), i))
        .collect();
    let multi = verifier.verify_safety_batch(&suites);
    let mut any_failed = false;
    let mut props = Vec::new();
    for (s, report) in spec.safety.iter().zip(&multi.reports) {
        let passed = report.all_passed();
        any_failed |= !passed;
        println!(
            "{}: {} ({} checks)",
            s.name,
            if passed { "verified" } else { "VIOLATED" },
            report.num_checks(),
        );
        props.push(serde_json::json!({
            "property": s.name,
            "kind": "safety",
            "passed": passed,
            "checks": report.num_checks() as u64,
            "solver_calls": report.solver_invocations() as u64,
            "total_seconds": report.total_time.as_secs_f64(),
            "solve_seconds": report.solve_time().as_secs_f64(),
        }));
    }
    for l in &spec.liveness {
        let resolved = match l.resolve(topo) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let report = match verifier.verify_liveness(&resolved) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: liveness {}: {e}", l.name);
                return ExitCode::FAILURE;
            }
        };
        let passed = report.all_passed();
        any_failed |= !passed;
        println!(
            "{} (liveness): {} ({} checks)",
            l.name,
            if passed { "verified" } else { "VIOLATED" },
            report.num_checks(),
        );
        props.push(serde_json::json!({
            "property": l.name,
            "kind": "liveness",
            "passed": passed,
            "checks": report.num_checks() as u64,
            "solver_calls": report.solver_invocations() as u64,
            "total_seconds": report.total_time.as_secs_f64(),
            "solve_seconds": report.solve_time().as_secs_f64(),
        }));
    }
    let wall = t0.elapsed();
    let profile = profile_json(&reg, wall, props, top);
    render_report(&reg, wall, top, &out_path);
    if let Err(e) = write_profile(&out_path, &profile) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    obs::uninstall();
    if any_failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
