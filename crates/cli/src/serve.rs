//! `lightyear serve`: the long-lived multi-tenant verification daemon.
//!
//! One process hosts many isolated tenants, each with its own spec,
//! configuration set, per-property [`ReverifyEngine`]s and (under
//! `--cache-root`) its own spill directory — so a restarted daemon
//! answers its first full round warm, exactly like a restarted `watch`.
//!
//! The wire protocol is the typed, versioned envelope of
//! [`api::wire`]: `POST /api/v1` with an [`api::ApiRequest`], answered
//! by an [`api::ApiResponse`] whose reports are the same
//! [`api::PropertyReport`] documents `verify --json` emits — one
//! serializer, no drift. The existing telemetry endpoints
//! (`/metrics`, `/healthz`, `/trace`) share the listener.
//!
//! ## Admission and fairness
//!
//! Requests are enqueued per tenant into bounded queues
//! (`--queue-depth`, overflow answered `429`) and drained by a fixed
//! worker pool in **round-robin tenant order** with an in-flight cap
//! of one job per tenant. The cap is what makes a tenant's engines
//! single-writer (no locking inside rounds) and the round-robin drain
//! is the fairness bound: a tenant flooding its queue can delay
//! another tenant by at most the one job per other tenant already in
//! flight, never by its whole backlog.

use crate::session::{round_line, Session};
use crate::spec::Spec;
use crate::telemetry::TelemetryOpts;
use crate::{flag_value, usage};
use api::{ApiCall, ApiRequest, ApiResponse, ConfigFile};
use bgp_config::{parse_config, ConfigAst};
use obs::http::Status;
use serde_json::Value;
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

/// Default bound on each tenant's pending-request queue.
const DEFAULT_QUEUE_DEPTH: usize = 16;

/// Default worker count (tenant rounds run one-per-tenant at a time,
/// so workers bound cross-tenant parallelism).
const DEFAULT_WORKERS: usize = 4;

/// How long a connection waits for its queued job before giving up.
/// Queue depth × worst-case round time stays well under this for any
/// realistic deployment; hitting it answers a 500 rather than holding
/// the connection forever.
const REPLY_TIMEOUT: Duration = Duration::from_secs(600);

/// One tenant's verification state and last-round artifacts.
#[derive(Default)]
struct Tenant {
    session: Option<Session>,
    /// Per-tenant round counter (baseline submit is round 0).
    rounds: u64,
    passed: bool,
    line: String,
    reports: Vec<api::PropertyReport>,
}

/// A queued request: the call plus the channel its connection blocks on.
struct Job {
    call: ApiCall,
    reply: mpsc::Sender<ApiResponse>,
}

/// The admission queue: bounded per-tenant FIFOs drained round-robin
/// with at most one in-flight job per tenant.
#[derive(Default)]
struct QueueState {
    queues: HashMap<String, VecDeque<Job>>,
    /// Tenants with pending jobs, in drain order. Invariant: a tenant
    /// appears here exactly once iff it has pending jobs and no job in
    /// flight.
    ready: VecDeque<String>,
    inflight: std::collections::HashSet<String>,
}

struct Daemon {
    tenants: Mutex<HashMap<String, Arc<Mutex<Tenant>>>>,
    queue: Mutex<QueueState>,
    wake: Condvar,
    cache_root: Option<PathBuf>,
    queue_depth: usize,
    reg: Arc<obs::Registry>,
    status: Arc<Status>,
    /// Registry snapshot at the last round boundary, for per-round
    /// delta metrics in the status document (same scheme as `watch`).
    prev: Mutex<obs::MetricsSnapshot>,
}

impl Daemon {
    /// Enqueue `call` for `tenant`, or refuse with the 429 payload when
    /// the tenant's queue is full.
    fn enqueue(&self, tenant: &str, call: ApiCall) -> Result<mpsc::Receiver<ApiResponse>, ()> {
        let (tx, rx) = mpsc::channel();
        let mut qs = self.queue.lock().unwrap();
        let q = qs.queues.entry(tenant.to_string()).or_default();
        if q.len() >= self.queue_depth {
            return Err(());
        }
        q.push_back(Job { call, reply: tx });
        if !qs.inflight.contains(tenant) && !qs.ready.iter().any(|t| t == tenant) {
            qs.ready.push_back(tenant.to_string());
        }
        self.wake.notify_one();
        Ok(rx)
    }

    /// Worker loop: claim the next ready tenant's front job, run it,
    /// then requeue the tenant at the back if it still has work — the
    /// round-robin drain.
    fn work(self: &Arc<Self>) {
        loop {
            let (tenant, job) = {
                let mut qs = self.queue.lock().unwrap();
                loop {
                    if let Some(t) = qs.ready.pop_front() {
                        if let Some(j) = qs.queues.get_mut(&t).and_then(VecDeque::pop_front) {
                            qs.inflight.insert(t.clone());
                            break (t, j);
                        }
                        continue; // stale ready entry; drop it
                    }
                    qs = self.wake.wait(qs).unwrap();
                }
            };
            let resp = self.execute(&tenant, job.call);
            let _ = job.reply.send(resp);
            let mut qs = self.queue.lock().unwrap();
            qs.inflight.remove(&tenant);
            if qs.queues.get(&tenant).is_some_and(|q| !q.is_empty()) {
                qs.ready.push_back(tenant.clone());
                self.wake.notify_one();
            }
        }
    }

    /// The tenant's state cell (created on first use).
    fn tenant(&self, name: &str) -> Arc<Mutex<Tenant>> {
        self.tenants
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Run one call against its tenant. The in-flight cap makes the
    /// inner lock uncontended; it exists so a misbehaving future caller
    /// cannot corrupt a tenant, not for coordination.
    fn execute(&self, tenant: &str, call: ApiCall) -> ApiResponse {
        self.reg
            .counter_labeled(&format!("serve.calls.{}", call.name()))
            .add(1);
        self.reg
            .counter_labeled(&format!("serve.tenant.{tenant}.calls"))
            .add(1);
        let cell = self.tenant(tenant);
        let mut t = cell.lock().unwrap();
        match call {
            ApiCall::SubmitConfigs { configs, spec } => {
                let spec: Spec = match serde_json::from_value(spec) {
                    Ok(s) => s,
                    Err(e) => return ApiResponse::failure(format!("bad spec: {e}")),
                };
                let asts = match parse_config_files(&configs) {
                    Ok(a) => a,
                    Err(e) => return ApiResponse::failure(e),
                };
                // A (re-)submit replaces the whole session; with a
                // cache root the new session starts from the tenant's
                // spilled passes — the warm-restart path.
                let cache = self.cache_root.as_ref().map(|r| r.join(tenant));
                let mut session = Session::new(&format!("serve[{tenant}]"), spec, cache);
                let round = session.round(asts, true);
                t.session = Some(session);
                self.finish_round(tenant, &mut t, round, true)
            }
            ApiCall::SubmitDelta { configs } => {
                let asts = match parse_config_files(&configs) {
                    Ok(a) => a,
                    Err(e) => return ApiResponse::failure(e),
                };
                let Some(session) = t.session.as_mut() else {
                    return ApiResponse::failure("no configuration submitted for this tenant");
                };
                let round = session.round(asts, false);
                self.finish_round(tenant, &mut t, round, false)
            }
            ApiCall::Verify => {
                let Some(session) = t.session.as_mut() else {
                    return ApiResponse::failure("no configuration submitted for this tenant");
                };
                let asts = session.current.clone();
                let round = session.round(asts, true);
                self.finish_round(tenant, &mut t, round, false)
            }
            ApiCall::QueryCores { property } => {
                if t.session.is_none() {
                    return ApiResponse::failure("no configuration submitted for this tenant");
                }
                let cores: Vec<Value> = t
                    .reports
                    .iter()
                    .filter(|r| property.as_deref().is_none_or(|p| p == r.property))
                    .map(|r| {
                        Value::Object(vec![
                            ("property".to_string(), Value::Str(r.property.clone())),
                            (
                                "cores".to_string(),
                                Value::Array(r.cores.iter().map(|c| c.to_value()).collect()),
                            ),
                        ])
                    })
                    .collect();
                if cores.is_empty() && property.is_some() {
                    return ApiResponse::failure(format!(
                        "unknown property {:?}",
                        property.unwrap_or_default()
                    ));
                }
                ApiResponse::success(Value::Object(vec![(
                    "cores".to_string(),
                    Value::Array(cores),
                )]))
            }
            ApiCall::GetReport => {
                if t.session.is_none() {
                    return ApiResponse::failure("no configuration submitted for this tenant");
                }
                ApiResponse::success(report_value(&t))
            }
            // Health never reaches the queue (answered inline).
            ApiCall::Health => ApiResponse::failure("Health is answered without a tenant"),
        }
    }

    /// Seal a verification round: spill caches, store the artifacts,
    /// count it (both globally and per tenant) and render the response.
    fn finish_round(
        &self,
        tenant: &str,
        t: &mut Tenant,
        round: Result<crate::session::RoundOutcome, String>,
        baseline: bool,
    ) -> ApiResponse {
        let outcome = match round {
            Ok(o) => o,
            Err(e) => {
                // The session keeps its previous accepted state; the
                // stored report stays the last good round's.
                self.reg.counter("serve.rounds.rejected").add(1);
                return ApiResponse::failure(e);
            }
        };
        if let Some(s) = &t.session {
            s.spill();
        }
        if !baseline {
            t.rounds += 1;
        }
        t.passed = outcome.passed;
        t.line = round_line(
            &format!("serve[{tenant}] round {n}", n = t.rounds),
            &outcome,
        );
        t.reports = outcome.reports;
        println!("{}", t.line);
        self.reg
            .counter_labeled(&format!("serve.tenant.{tenant}.rounds"))
            .add(1);
        let delta = {
            let snap = self.reg.snapshot();
            let mut prev = self.prev.lock().unwrap();
            let d = snap.delta_since(&prev);
            *prev = snap;
            d
        };
        if baseline {
            self.status
                .note_baseline(outcome.passed, outcome.elapsed, Some(delta));
        } else {
            self.status
                .note_round(outcome.passed, outcome.elapsed, Some(delta));
        }
        ApiResponse::success(report_value(t))
    }

    /// The daemon-level health answer (no tenant, never queued).
    fn health(&self) -> ApiResponse {
        let tenants = self.tenants.lock().unwrap();
        let list: Vec<Value> = tenants
            .iter()
            .map(|(name, cell)| {
                let t = cell.lock().unwrap();
                Value::Object(vec![
                    ("tenant".to_string(), Value::Str(name.clone())),
                    ("rounds".to_string(), Value::UInt(t.rounds)),
                    ("passed".to_string(), Value::Bool(t.passed)),
                ])
            })
            .collect();
        ApiResponse::success(Value::Object(vec![
            ("status".to_string(), Value::Str("ok".to_string())),
            ("api_version".to_string(), Value::UInt(api::API_VERSION)),
            ("tenants".to_string(), Value::Array(list)),
        ]))
    }

    /// The HTTP entry point: parse the envelope, answer Health inline,
    /// queue everything else and wait for the worker's reply.
    fn handle(&self, body: &[u8]) -> (u16, ApiResponse) {
        self.reg.counter("serve.requests").add(1);
        let req = match ApiRequest::from_json(&String::from_utf8_lossy(body)) {
            Ok(r) => r,
            Err(e) => {
                self.reg.counter("serve.requests.bad").add(1);
                return (400, ApiResponse::failure(e));
            }
        };
        if matches!(req.call, ApiCall::Health) {
            return (200, self.health());
        }
        match self.enqueue(&req.tenant, req.call) {
            Err(()) => {
                self.reg.counter("serve.requests.throttled").add(1);
                self.reg
                    .counter_labeled(&format!("serve.tenant.{}.throttled", req.tenant))
                    .add(1);
                (
                    429,
                    ApiResponse::failure(format!("tenant {:?} queue is full", req.tenant)),
                )
            }
            Ok(rx) => match rx.recv_timeout(REPLY_TIMEOUT) {
                Ok(resp) => {
                    let code = if resp.ok { 200 } else { 422 };
                    (code, resp)
                }
                Err(_) => (500, ApiResponse::failure("verification timed out")),
            },
        }
    }
}

/// A tenant's last-round document (the GetReport / round-reply body).
fn report_value(t: &Tenant) -> Value {
    Value::Object(vec![
        ("round".to_string(), Value::UInt(t.rounds)),
        ("passed".to_string(), Value::Bool(t.passed)),
        ("line".to_string(), Value::Str(t.line.clone())),
        (
            "reports".to_string(),
            Value::Array(t.reports.iter().map(|r| r.to_value()).collect()),
        ),
    ])
}

/// Parse submitted config files (sorted by name, matching the
/// directory-walk order of the file-based front-ends).
fn parse_config_files(configs: &[ConfigFile]) -> Result<Vec<ConfigAst>, String> {
    if configs.is_empty() {
        return Err("configs must not be empty".to_string());
    }
    let mut sorted: Vec<&ConfigFile> = configs.iter().collect();
    sorted.sort_by(|a, b| a.name.cmp(&b.name));
    sorted
        .iter()
        .map(|c| parse_config(&c.text).map_err(|e| format!("{}: {e}", c.name)))
        .collect()
}

pub(crate) fn cmd_serve(args: &[String]) -> ExitCode {
    // Strict flags, like every other daemon mode.
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--cache-root" | "--workers" | "--queue-depth" | "--max-conns" => i += 2,
            a if TelemetryOpts::takes(a) => i += 2,
            a => {
                eprintln!("error: unknown serve option {a}");
                return usage();
            }
        }
    }
    let tele_opts = match TelemetryOpts::parse(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    if tele_opts.listen.is_none() {
        eprintln!("error: serve needs --listen <addr> (use 127.0.0.1:0 for an ephemeral port)");
        return usage();
    }
    let cache_root = flag_value(args, "--cache-root").map(PathBuf::from);
    let positive = |flag: &str, default: usize| -> Result<usize, ()> {
        match flag_value(args, flag).map(|v| v.parse::<usize>()) {
            None => Ok(default),
            Some(Ok(n)) if n > 0 => Ok(n),
            Some(_) => {
                eprintln!("error: {flag} needs a positive integer");
                Err(())
            }
        }
    };
    let Ok(workers) = positive("--workers", DEFAULT_WORKERS) else {
        return usage();
    };
    let Ok(queue_depth) = positive("--queue-depth", DEFAULT_QUEUE_DEPTH) else {
        return usage();
    };
    let Ok(max_conns) = positive("--max-conns", obs::http::DEFAULT_MAX_CONNS) else {
        return usage();
    };

    // The daemon cell is created first, then the listener is brought up
    // with the API handler pointing back into it.
    let daemon_slot: Arc<Mutex<Option<Arc<Daemon>>>> = Arc::new(Mutex::new(None));
    let slot = daemon_slot.clone();
    let handler: obs::http::Handler = Arc::new(move |req: &obs::http::Request| {
        if req.path != "/api/v1" {
            return None;
        }
        if req.method != "POST" {
            return Some(obs::http::Response::json(
                405,
                &ApiResponse::failure("use POST /api/v1").to_value(),
            ));
        }
        // The listener prints its address (and can accept requests)
        // a beat before the daemon lands in the slot; wait out that
        // bring-up gap instead of declining the request.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let daemon = loop {
            if let Some(d) = slot.lock().unwrap().clone() {
                break d;
            }
            if std::time::Instant::now() >= deadline {
                return Some(obs::http::Response::json(
                    503,
                    &ApiResponse::failure("daemon still starting").to_value(),
                ));
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        let (code, resp) = daemon.handle(&req.body);
        Some(obs::http::Response::json(code, &resp.to_value()))
    });
    let active = match tele_opts.start("serve", Some(handler), max_conns) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let daemon = Arc::new(Daemon {
        tenants: Mutex::new(HashMap::new()),
        queue: Mutex::new(QueueState::default()),
        wake: Condvar::new(),
        cache_root,
        queue_depth,
        prev: Mutex::new(active.reg.snapshot()),
        reg: active.reg.clone(),
        status: active.status.clone(),
    });
    *daemon_slot.lock().unwrap() = Some(daemon.clone());
    for w in 0..workers {
        let d = daemon.clone();
        let _ = std::thread::Builder::new()
            .name(format!("serve-worker-{w}"))
            .spawn(move || d.work());
    }
    println!(
        "serve: {workers} workers, queue depth {queue_depth} per tenant, \
         cache root {root}",
        root = daemon
            .cache_root
            .as_deref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "(none)".to_string()),
    );

    // Serve until killed. The listener lives in `active`; dropping it
    // would stop the daemon, so this loop owns it for the process
    // lifetime.
    let _active = active;
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
