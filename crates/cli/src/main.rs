//! `lightyear` — verify BGP configurations against a JSON property spec.
//!
//! ```text
//! USAGE:
//!   lightyear verify --configs <DIR> --spec <FILE> [--parallel] [--json]
//!                    [--jobs N] [--no-dedup] [--no-incremental]
//!                    [--cache] [--cache-dir DIR] [--cache-cap N]
//!                    [--profile FILE]
//!   lightyear profile <SPEC> <CONFIG_DIR> [--jobs N] [--out FILE] [--portfolio K]
//!                    [--top N] [--sequential]
//!   lightyear watch  --configs <DIR> --spec <FILE> [--baseline DIR]
//!                    [--once] [--interval-ms N] [--max-rounds N]
//!                    [--cache-dir DIR] [--metrics-json FILE]
//!                    [--listen ADDR] [--stale-after-ms N]
//!                    [--flight-json FILE] [--events-jsonl FILE]
//!   lightyear plan   --spec <FILE> <DIR0> <DIR1> [...]
//!   lightyear fuzz   [--seed N] [--cases N] [--families a,b,...]
//!                    [--edit-steps K] [--sim-rounds R] [--no-inject]
//!                    [--repro-dir DIR] [--bench-json FILE] [--replay DIR]
//!                    [--listen ADDR] [--flight-json FILE]
//!   lightyear bench  --zoo [--limit N] [--seed N] [--max-routers N]
//!                    [--json FILE]
//!   lightyear bench-report <A.json> <B.json>
//!   lightyear parse  --configs <DIR>
//!   lightyear lint   --configs <DIR>
//!   lightyear spec-template
//!
//! COMMANDS:
//!   verify          parse every *.cfg/*.conf in DIR, lower, and run all
//!                   safety properties in the spec as ONE cross-property
//!                   batch: checks from different properties that share
//!                   an encoding base (the same edge's transfer relation,
//!                   the implication shape) are solved on one persistent
//!                   SMT session, so each edge is encoded once for the
//!                   whole spec. Per-property output is byte-identical to
//!                   verifying the properties one at a time. With --json,
//!                   each property carries a "cores" array: per passing
//!                   check, which invariant conjuncts its UNSAT proof
//!                   actually needed (core-based blame). Exit code 1 when
//!                   any check fails. --json also appends a trailing
//!                   entry with a "timings" stage split (encode / solve /
//!                   cache / other, summing to the wall clock) and the
//!                   full "metrics" counter snapshot; --profile FILE
//!                   additionally writes a self-contained profile report
//!                   (see `profile`)
//!   profile         deep-dive profiling run: verify <CONFIG_DIR> against
//!                   <SPEC> with the metrics sink installed, print the
//!                   stage split, the hottest check groups and the solver
//!                   counter table, and write a self-contained profile
//!                   JSON (--out, default profile.json). The file is a
//!                   valid Chrome trace_event file — load it directly in
//!                   Perfetto (ui.perfetto.dev) or chrome://tracing; the
//!                   profile tables ride along as extra top-level keys,
//!                   which trace viewers ignore
//!   watch           long-lived re-verify daemon: verify DIR once, then
//!                   re-check on every config change, re-solving only the
//!                   checks the semantic diff dirtied (warm cross-run SMT
//!                   sessions + carried result cache). Each round prints a
//!                   stats line:
//!                     round 1: delta [EDGE0: route-map FROM-PEER0 changed];
//!                     dirty 1/220 checks (13 candidates), 219 cached, ...
//!                   --baseline DIR verifies DIR as round zero instead of
//!                   the watched directory; --once runs a single delta
//!                   round (baseline -> configs) and exits — the
//!                   migration-step / CI smoke shape. --cache-dir DIR
//!                   spills the carried result cache after every verified
//!                   round and reloads it (passing verdicts only) on
//!                   startup, so a restarted daemon starts warm.
//!                   --metrics-json FILE atomically rewrites FILE after
//!                   every round with the round count, the last round's
//!                   delta metrics, and the cumulative counter snapshot;
//!                   a cumulative totals line is printed per round. The
//!                   file, the totals line and the /metrics endpoint
//!                   share one round counter, so they always agree.
//!                   --listen ADDR serves live telemetry over HTTP
//!                   (GET /metrics [?format=prom], /healthz, /trace);
//!                   --stale-after-ms N makes /healthz answer 503 once
//!                   no round has completed for N ms. The flight
//!                   recorder is always on: recent spans/events plus
//!                   the last error are dumped to --flight-json
//!                   (default flight.json) on panic or any failed
//!                   round. --events-jsonl FILE additionally streams
//!                   every event and completed span as JSONL with
//!                   size-capped rotation
//!   plan            Snowcap/Chameleon-style migration-plan verification:
//!                   verify DIR0 fully, then every subsequent directory as
//!                   a delta round, proving each intermediate
//!                   configuration safe; exit code 1 if any step fails
//!   fuzz            seeded differential campaign over the topology zoo
//!                   (figure1, fullmesh, wan, rr, stub, hubspoke): each
//!                   case is cross-checked by the simulation oracle (all
//!                   2^3 SimOptions), the mode-parity oracle (fresh /
//!                   incremental / orchestrated / cross-property batch
//!                   byte-identity) and the edit-sequence oracle
//!                   (reverify == fresh after every random edit), plus a
//!                   curated injected-bug sweep. A discrepancy is greedily
//!                   minimized and written as a replayable repro directory
//!                   (--repro-dir; re-run it with --replay). --bench-json
//!                   records campaign throughput (the CI BENCH_fuzz.json)
//!   bench           the Internet-scale corpus sweep: walk the vendored
//!                   Topology Zoo corpus (netgen::zoo, 11..754 routers)
//!                   ascending, verify each entry's peering + fencing
//!                   suites as one orchestrated streaming batch, print a
//!                   summary table and write one record per entry
//!                   (checks/s, wall, peak RSS via VmHWM, dedup ratio)
//!                   to --json (default BENCH_zoo.json). --limit N takes
//!                   the N smallest entries; --max-routers scales every
//!                   entry down proportionally (test/smoke mode); the
//!                   records are a pure function of the corpus and
//!                   --seed apart from the timing/RSS fields
//!   bench-report    diff two BENCH_*.json files (arrays of gate lines,
//!                   as assembled by CI with `jq -s`): per-gate verdict
//!                   flips, metric regressions/improvements beyond a 2%
//!                   tolerance, and added/removed gates. Exit code 1
//!                   when any gate regressed
//!   parse           parse + lower only; print the topology summary and
//!                   lowering warnings
//!   lint            run rcc-style best-practice lints; exit code 1 on
//!                   any error-severity finding
//!   spec-template   print an example spec.json to stdout
//!
//! VERIFY OPTIONS:
//!   --parallel      run checks on the orchestrator (work-stealing pool
//!                   with structural dedup) instead of sequentially
//!   --jobs N        orchestrator worker threads (implies --parallel)
//!   --no-dedup      disable structural check deduplication
//!   --portfolio K   race heavyweight check groups on K jittered solver
//!                   clones (2..=4), first answer wins; reports stay
//!                   byte-identical to sequential solving
//!   --incremental / --no-incremental
//!                   solve checks that share an encoding base (same edge
//!                   transfer function / implication shape) as assumption
//!                   queries on one persistent SMT session, carrying
//!                   learnt clauses across checks (default: on; verdicts
//!                   are identical either way)
//!   --cache         reuse check results across runs (implies --parallel);
//!                   spilled to --cache-dir as JSON. Failures are spilled
//!                   too and re-validated against the live configs before
//!                   reuse
//!   --cache-dir DIR cache spill directory (default .lightyear-cache;
//!                   implies --cache)
//!   --cache-cap N   bound the in-memory cache to ~N entries with LRU
//!                   eviction (implies --cache; default unbounded)
//!   --profile FILE  install the metrics sink for the run and write a
//!                   self-contained profile report (stage split, hottest
//!                   check groups, solver counters, Chrome trace) to FILE
//!
//! With --parallel, a dedup-stats summary line is printed after the
//! properties, e.g.:
//!   orchestrator: 220 checks -> 34 solver calls (180 deduped, 6 cached, ratio 0.15, 8 threads); incremental: 12 groups, 22 warm assumption solves
//! ```

mod bench_zoo;
mod fuzz;
mod profile;
mod render;
mod serve;
mod session;
mod spec;
mod telemetry;
mod watch;

use bgp_config::{lower, parse_config, Network};
use lightyear::engine::{RunMode, Verifier};
use spec::Spec;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  lightyear verify --configs <DIR> --spec <FILE> [--parallel] [--json]\n    \
         [--jobs N] [--no-dedup] [--no-incremental] [--portfolio K] [--cache] [--cache-dir <DIR>]\n    \
         [--cache-cap N] [--profile <FILE>]\n  \
         lightyear profile <SPEC> <CONFIG_DIR> [--jobs N] [--out <FILE>] [--top N]\n    \
         [--sequential] [--portfolio K]\n  \
         lightyear watch --configs <DIR> --spec <FILE> [--baseline <DIR>] [--once]\n    \
         [--interval-ms N] [--max-rounds N] [--cache-dir <DIR>] [--metrics-json <FILE>]\n    \
         [--listen <ADDR>] [--stale-after-ms N] [--flight-json <FILE>] [--events-jsonl <FILE>]\n  \
         lightyear plan --spec <FILE> <DIR0> <DIR1> [...]\n  \
         lightyear serve --listen <ADDR> [--cache-root <DIR>] [--workers N]\n    \
         [--queue-depth N] [--max-conns N] [--metrics-json <FILE>] [--stale-after-ms N]\n    \
         [--flight-json <FILE>] [--events-jsonl <FILE>]\n  \
         lightyear fuzz [--seed N] [--cases N] [--families a,b,...] [--edit-steps K]\n    \
         [--sim-rounds R] [--no-inject] [--repro-dir <DIR>] [--bench-json <FILE>]\n    \
         [--replay <DIR>] [--listen <ADDR>] [--flight-json <FILE>]\n  \
         lightyear bench --zoo [--limit N] [--seed N] [--max-routers N] [--json <FILE>]\n  \
         lightyear bench-report <A.json> <B.json>\n  \
         lightyear parse --configs <DIR>\n  lightyear spec-template"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "verify" => cmd_verify(&args[1..]),
        "profile" => profile::cmd_profile(&args[1..]),
        "watch" => watch::cmd_watch(&args[1..]),
        "plan" => watch::cmd_plan(&args[1..]),
        "serve" => serve::cmd_serve(&args[1..]),
        "fuzz" => fuzz::cmd_fuzz(&args[1..]),
        "bench" => bench_zoo::cmd_bench(&args[1..]),
        "bench-report" => cmd_bench_report(&args[1..]),
        "parse" => cmd_parse(&args[1..]),
        "lint" => cmd_lint(&args[1..]),
        "spec-template" => {
            println!("{}", template());
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

/// The sorted configuration files of a directory (*.cfg/*.conf/*.txt).
fn config_paths(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {dir:?}: {e}"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            matches!(
                p.extension().and_then(|x| x.to_str()),
                Some("cfg") | Some("conf") | Some("txt")
            )
        })
        .collect();
    entries.sort();
    if entries.is_empty() {
        return Err(format!("no *.cfg/*.conf/*.txt files in {dir:?}"));
    }
    Ok(entries)
}

fn load_configs(dir: &Path) -> Result<Vec<bgp_config::ConfigAst>, String> {
    let mut configs = Vec::new();
    for p in &config_paths(dir)? {
        let text = std::fs::read_to_string(p).map_err(|e| format!("cannot read {p:?}: {e}"))?;
        let ast = parse_config(&text).map_err(|e| format!("{}: {e}", p.display()))?;
        configs.push(ast);
    }
    Ok(configs)
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let Some(dir) = flag_value(args, "--configs") else {
        return usage();
    };
    let configs = match load_configs(Path::new(&dir)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let findings = bgp_config::lint(&configs);
    for f in &findings {
        println!("{f}");
    }
    let errors = findings
        .iter()
        .filter(|f| f.severity == bgp_config::Severity::Error)
        .count();
    println!(
        "{} finding(s), {} error(s) across {} configuration(s)",
        findings.len(),
        errors,
        configs.len()
    );
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn load_network(dir: &Path) -> Result<Network, String> {
    let configs = load_configs(dir)?;
    lower(&configs).map_err(|e| e.to_string())
}

fn load_spec(path: &str) -> Result<Spec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("bad spec: {e}"))
}

fn cmd_parse(args: &[String]) -> ExitCode {
    let Some(dir) = flag_value(args, "--configs") else {
        return usage();
    };
    match load_network(Path::new(&dir)) {
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        Ok(net) => {
            let t = &net.topology;
            println!(
                "{} routers, {} external neighbors, {} directed edges",
                t.router_ids().count(),
                t.external_ids().count(),
                t.num_edges()
            );
            for n in t.router_ids() {
                let node = t.node(n);
                println!(
                    "  {} (AS {}), {} sessions",
                    node.name,
                    node.asn,
                    t.out_edges(n).len()
                );
            }
            for w in &net.warnings {
                println!("warning: {w}");
            }
            ExitCode::SUCCESS
        }
    }
}

fn cmd_verify(args: &[String]) -> ExitCode {
    let (Some(dir), Some(spec_path)) = (flag_value(args, "--configs"), flag_value(args, "--spec"))
    else {
        return usage();
    };
    let as_json = args.iter().any(|a| a == "--json");
    let jobs = match flag_value(args, "--jobs").map(|v| v.parse::<usize>()) {
        None => None,
        Some(Ok(n)) if n > 0 => Some(n),
        Some(_) => {
            eprintln!("error: --jobs needs a positive integer");
            return usage();
        }
    };
    let dedup = !args.iter().any(|a| a == "--no-dedup");
    // Incremental group solving defaults to on; --no-incremental restores
    // one fresh SMT instance per check.
    let incremental = !args.iter().any(|a| a == "--no-incremental");
    let portfolio = match flag_value(args, "--portfolio").map(|v| v.parse::<usize>()) {
        None => None,
        Some(Ok(k)) if (2..=lightyear::smt::PORTFOLIO_MAX_K).contains(&k) => Some(k),
        Some(_) => {
            eprintln!(
                "error: --portfolio needs a solver count in 2..={}",
                lightyear::smt::PORTFOLIO_MAX_K
            );
            return usage();
        }
    };
    let cache_dir = flag_value(args, "--cache-dir");
    let cache_cap = match flag_value(args, "--cache-cap").map(|v| v.parse::<usize>()) {
        None => None,
        Some(Ok(n)) if n > 0 => Some(n),
        Some(_) => {
            eprintln!("error: --cache-cap needs a positive integer");
            return usage();
        }
    };
    let use_cache =
        args.iter().any(|a| a == "--cache") || cache_dir.is_some() || cache_cap.is_some();
    // --jobs/--cache only make sense on the orchestrator.
    let parallel = args.iter().any(|a| a == "--parallel") || jobs.is_some() || use_cache;
    // --json and --profile both want the run's timings/counters, so
    // either installs the metrics sink; without them the sink stays
    // absent and every instrumentation point is a single relaxed load.
    let profile_path = flag_value(args, "--profile");
    let reg = (as_json || profile_path.is_some()).then(obs::install);
    let t_start = std::time::Instant::now();
    let mut profile_props: Vec<serde_json::Value> = Vec::new();

    let cache_dir = PathBuf::from(cache_dir.unwrap_or_else(|| ".lightyear-cache".to_string()));
    let cache = if use_cache {
        match lightyear::load_check_cache_bounded(&cache_dir, cache_cap) {
            Ok((cache, loaded)) => {
                if !as_json && loaded > 0 {
                    println!(
                        "cache: loaded {loaded} entries from {}",
                        cache_dir.display()
                    );
                }
                Some(cache)
            }
            Err(e) => {
                // An unreadable spill must not brick verification:
                // warn, start cold, and let the save at the end of the
                // run replace the bad file.
                eprintln!(
                    "warning: ignoring unreadable cache at {}: {e}",
                    cache_dir.display()
                );
                Some(std::sync::Arc::new(lightyear::CheckCache::new()))
            }
        }
    } else {
        None
    };

    let net = match load_network(Path::new(&dir)) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec: Spec = match load_spec(&spec_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let topo = &net.topology;
    let mut verifier = Verifier::new(topo, &net.policy)
        .with_mode(if parallel {
            RunMode::Parallel
        } else {
            RunMode::Sequential
        })
        .with_dedup(dedup)
        .with_incremental(incremental);
    if let Some(n) = jobs {
        verifier = verifier.with_jobs(n);
    }
    if let Some(c) = &cache {
        verifier = verifier.with_cache(c.clone());
    }
    if let Some(k) = portfolio {
        verifier = verifier.with_portfolio(lightyear::engine::PortfolioTuning {
            k,
            ..Default::default()
        });
    }
    for g in &spec.ghosts {
        match g.resolve(topo) {
            Ok(g) => verifier = verifier.with_ghost(g),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Resolve every property up front, then verify the whole spec as ONE
    // cross-property batch: checks from different properties that share
    // an encoding base (above all, each edge's transfer relation) are
    // solved on a single persistent SMT session instead of re-encoding
    // the edge once per property. Per-property reports are byte-identical
    // to standalone runs.
    let resolved: Vec<_> = match spec
        .safety
        .iter()
        .map(|s| s.resolve(topo))
        .collect::<Result<Vec<_>, _>>()
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let suites: Vec<(&[lightyear::SafetyProperty], &lightyear::NetworkInvariants)> = resolved
        .iter()
        .map(|(p, i)| (std::slice::from_ref(p), i))
        .collect();
    // Streaming assembly: outcomes fold into per-suite summaries as
    // their groups complete, so report memory is O(solve frontier +
    // failures), not O(checks). Cores are only retained when the
    // `--json` blame view will render them.
    let multi = verifier.verify_safety_batch_streaming(&suites, as_json);
    let mut any_failed = false;
    let mut json_out = Vec::new();
    let exec = multi.exec;
    for ((s, (prop, inv)), report) in spec.safety.iter().zip(&resolved).zip(&multi.summaries) {
        let passed = report.all_passed();
        any_failed |= !passed;
        if reg.is_some() {
            profile_props.push(serde_json::json!({
                "property": s.name,
                "kind": "safety",
                "passed": passed,
                "checks": report.num_checks() as u64,
                "solver_calls": report.solver_invocations() as u64,
                "total_seconds": report.total_time.as_secs_f64(),
                "solve_seconds": report.solve_time().as_secs_f64(),
            }));
        }
        if as_json {
            // Core-based blame rides along: for every passing check
            // solved on an assumption session, which invariant conjuncts
            // its UNSAT proof actually needed. Rendered through the
            // shared api report types (golden-pinned bytes).
            let by_id = verifier.check_conjuncts_all(std::slice::from_ref(prop), inv);
            json_out.push(
                render::property_report(
                    &s.name,
                    false,
                    report,
                    topo,
                    &by_id,
                    Some(render::run_timing(report)),
                )
                .to_value(),
            );
        } else {
            println!(
                "{}: {} ({} checks)",
                s.name,
                if passed { "verified" } else { "VIOLATED" },
                report.num_checks(),
            );
            if !passed {
                print!("{}", report.format_failures(topo));
            }
        }
    }
    if !as_json && !spec.safety.is_empty() {
        println!(
            "batch: {} properties, {} checks in {:?}",
            multi.summaries.len(),
            multi.num_checks(),
            multi.total_time
        );
    }
    // Liveness properties: each runs through the same check pipeline
    // (propagation + no-interference + final implication), so passing
    // checks carry conjunct-level unsat cores too — surfaced in the
    // `--json` "cores" array exactly like safety properties.
    for l in &spec.liveness {
        let resolved = match l.resolve(topo) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let report = match verifier.verify_liveness(&resolved) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: liveness {}: {e}", l.name);
                return ExitCode::FAILURE;
            }
        };
        let passed = report.all_passed();
        any_failed |= !passed;
        if reg.is_some() {
            profile_props.push(serde_json::json!({
                "property": l.name,
                "kind": "liveness",
                "passed": passed,
                "checks": report.num_checks() as u64,
                "solver_calls": report.solver_invocations() as u64,
                "total_seconds": report.total_time.as_secs_f64(),
                "solve_seconds": report.solve_time().as_secs_f64(),
            }));
        }
        if as_json {
            let conjs = verifier.liveness_check_conjuncts(&resolved);
            json_out.push(
                render::property_report(&l.name, true, &report.summarize(), topo, &conjs, None)
                    .to_value(),
            );
        } else {
            println!(
                "{} (liveness): {} ({} checks)",
                l.name,
                if passed { "verified" } else { "VIOLATED" },
                report.num_checks(),
            );
            if !passed {
                print!("{}", report.format_failures(topo));
            }
        }
    }
    if parallel {
        if as_json {
            json_out.push(render::exec_doc(&exec).to_value());
        } else {
            println!("{}", exec.summary());
        }
    }
    if let Some(c) = &cache {
        match lightyear::save_check_cache(c, &cache_dir) {
            Ok(written) => {
                if !as_json {
                    println!("cache: saved {written} entries to {}", cache_dir.display());
                }
            }
            Err(e) => eprintln!("warning: cannot save cache to {}: {e}", cache_dir.display()),
        }
    }
    if let Some(reg) = &reg {
        let wall = t_start.elapsed();
        if as_json {
            let snap = reg.snapshot();
            json_out.push(serde_json::json!({
                "timings": profile::stages_json(&snap, wall),
                "metrics": snap.to_json(),
            }));
        }
        if let Some(path) = &profile_path {
            let report = profile::profile_json(reg, wall, std::mem::take(&mut profile_props), 10);
            match profile::write_profile(path, &report) {
                // stderr so `lightyear verify --json --profile p.json`
                // still writes pure JSON to stdout.
                Ok(()) => eprintln!("profile: wrote {path}"),
                Err(e) => eprintln!("warning: {e}"),
            }
        }
        obs::uninstall();
    }
    if as_json {
        println!("{}", serde_json::to_string_pretty(&json_out).unwrap());
    }
    if any_failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `lightyear bench-report A.json B.json`: diff two bench gate files
/// (the read side of the otherwise write-only bench trajectory).
fn cmd_bench_report(args: &[String]) -> ExitCode {
    let [a, b] = args else {
        eprintln!("usage: lightyear bench-report <A.json> <B.json>");
        return ExitCode::from(2);
    };
    let load = |path: &String| {
        std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))
            .and_then(|text| bench::compare::parse_gates(&text).map_err(|e| format!("{path}: {e}")))
    };
    let (ga, gb) = match (load(a), load(b)) {
        (Ok(ga), Ok(gb)) => (ga, gb),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = bench::compare::compare(&ga, &gb);
    print!("{}", report.render(a, b));
    if report.any_regression() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn template() -> String {
    use lightyear::pred::RoutePred;
    let has_cust = RoutePred::prefix_in(vec![bgp_model::PrefixRange::orlonger(
        "203.0.113.0/24".parse().unwrap(),
    )]);
    let good = has_cust
        .clone()
        .and(RoutePred::has_community(bgp_model::Community::new(100, 1)).not());
    let spec = Spec {
        ghosts: vec![spec::GhostSpec {
            name: "FromISP1".into(),
            set_true_on_import: vec!["ISP1 -> R1".into()],
            set_false_on_import: vec!["ISP2 -> R2".into()],
            ..Default::default()
        }],
        safety: vec![spec::SafetySpec {
            name: "no-transit".into(),
            location: "R2 -> ISP2".into(),
            property: RoutePred::ghost("FromISP1").not(),
            invariant_default: RoutePred::ghost("FromISP1")
                .implies(RoutePred::has_community(bgp_model::Community::new(100, 1))),
            invariant_overrides: [("R2 -> ISP2".to_string(), RoutePred::ghost("FromISP1").not())]
                .into_iter()
                .collect(),
        }],
        liveness: vec![spec::LivenessSpecJson {
            name: "customer-liveness".into(),
            location: "R2 -> ISP2".into(),
            property: has_cust.clone(),
            path: vec!["ISP2 -> R2".into(), "R2".into(), "R2 -> ISP2".into()],
            constraints: vec![has_cust.clone(), good, has_cust.clone()],
            prefix_scope: has_cust.clone(),
            interference_default: has_cust
                .implies(RoutePred::has_community(bgp_model::Community::new(100, 1)).not()),
            interference_overrides: std::collections::BTreeMap::new(),
        }],
    };
    serde_json::to_string_pretty(&spec).unwrap()
}
