//! The one bridge from engine reports to the shared [`api`] report
//! schema. `verify --json`, `watch`/`plan` rounds, and the `serve`
//! daemon all build their [`api::PropertyReport`]s here, so the CLI
//! and the server render results identically by construction.

use api::report::TimingDoc;
use bgp_model::topology::Topology;
use lightyear::check::ReportSummary;

/// Render one property's [`ReportSummary`] as the shared document type.
/// Taking the streaming summary (full `Report`s convert via
/// `Report::summarize`) keeps rendering memory independent of check
/// count — the summary already folded passing outcomes away.
///
/// `conjunct_names` is the check-id-indexed conjunct table
/// (`Verifier::check_conjuncts_all` / `liveness_check_conjuncts`) the
/// core indices point into. `timing` is carried by one-shot `verify`
/// safety entries and omitted everywhere byte-stability across runs
/// matters (liveness entries, daemon reports).
pub(crate) fn property_report(
    name: &str,
    liveness: bool,
    report: &ReportSummary,
    topo: &Topology,
    conjunct_names: &[Option<Vec<String>>],
    timing: Option<TimingDoc>,
) -> api::PropertyReport {
    api::PropertyReport {
        property: name.to_string(),
        liveness,
        passed: report.all_passed(),
        checks: report.num_checks() as u64,
        timing,
        failures: report
            .failures()
            .iter()
            .map(|f| api::FailureDoc {
                kind: f.check.kind.to_string(),
                location: f.check.location.display(topo),
                route_map: f.check.map_name.clone(),
                description: f.check.description.clone(),
            })
            .collect(),
        cores: report
            .cores()
            .iter()
            .map(|(check, core)| {
                let conjs = conjunct_names
                    .get(check.id)
                    .cloned()
                    .flatten()
                    .unwrap_or_default();
                api::CoreDoc {
                    check: check.id as u64,
                    kind: check.kind.to_string(),
                    location: check.location.display(topo),
                    core: core.iter().map(|&i| i as u64).collect(),
                    load_bearing: core.iter().filter_map(|&i| conjs.get(i).cloned()).collect(),
                    conjuncts: conjs.len() as u64,
                }
            })
            .collect(),
    }
}

/// The solver/timing statistics of a one-shot safety run.
pub(crate) fn run_timing(report: &ReportSummary) -> TimingDoc {
    TimingDoc {
        solver_calls: report.solver_invocations() as u64,
        total_seconds: report.total_time.as_secs_f64(),
        solve_seconds: report.solve_time().as_secs_f64(),
    }
}

/// The orchestrator-statistics entry of a parallel run.
pub(crate) fn exec_doc(exec: &orchestrator::RunStats) -> api::ExecDoc {
    api::ExecDoc {
        summary: exec.summary(),
        generated: exec.generated as u64,
        solver_calls: exec.executed as u64,
        dedup_hits: exec.dedup_hits as u64,
        cache_hits: exec.cache_hits as u64,
        stale_cache_entries: exec.invalidated as u64,
        groups: exec.groups as u64,
        warm_assumption_solves: exec.assumption_solves as u64,
        dedup_ratio: exec.dedup_ratio(),
        threads: exec.threads as u64,
    }
}
