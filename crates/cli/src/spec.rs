//! The JSON verification-spec format.
//!
//! A spec names locations by router names (`"R1"`) or edge strings
//! (`"R1 -> ISP2"`), defines ghost attributes by their update edges, and
//! states properties/invariants as [`RoutePred`] values (which serialize
//! naturally via serde).
//!
//! ```json
//! {
//!   "ghosts": [
//!     { "name": "FromISP1",
//!       "set_true_on_import": ["ISP1 -> R1"],
//!       "set_false_on_import": ["ISP2 -> R2"] }
//!   ],
//!   "safety": [
//!     { "name": "no-transit",
//!       "location": "R2 -> ISP2",
//!       "property": { "Not": { "Ghost": "FromISP1" } },
//!       "invariant_default": { "Or": [ { "Not": { "Ghost": "FromISP1" } },
//!                                       { "HasCommunity": 6553601 } ] },
//!       "invariant_overrides": {
//!         "R2 -> ISP2": { "Not": { "Ghost": "FromISP1" } } } }
//!   ]
//! }
//! ```

use bgp_model::topology::{EdgeId, Topology};
use lightyear::ghost::{GhostAttr, GhostUpdate};
use lightyear::invariants::{Location, NetworkInvariants};
use lightyear::liveness::LivenessSpec;
use lightyear::pred::RoutePred;
use lightyear::safety::SafetyProperty;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A ghost-attribute definition in the spec.
#[derive(Clone, Debug, Serialize, Deserialize, Default)]
pub struct GhostSpec {
    /// Attribute name.
    pub name: String,
    /// Edges whose import sets the attribute true.
    #[serde(default)]
    pub set_true_on_import: Vec<String>,
    /// Edges whose import sets the attribute false.
    #[serde(default)]
    pub set_false_on_import: Vec<String>,
    /// Edges whose export sets the attribute true.
    #[serde(default)]
    pub set_true_on_export: Vec<String>,
    /// Edges whose export sets the attribute false.
    #[serde(default)]
    pub set_false_on_export: Vec<String>,
    /// Value on originated routes (default false).
    #[serde(default)]
    pub originate_value: bool,
}

/// One safety property with its invariants.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SafetySpec {
    /// Display name.
    pub name: String,
    /// Property location (router name or `"A -> B"`).
    pub location: String,
    /// The property predicate.
    pub property: RoutePred,
    /// Default invariant for all locations.
    #[serde(default = "RoutePred::tru")]
    pub invariant_default: RoutePred,
    /// Per-location overrides.
    #[serde(default)]
    pub invariant_overrides: BTreeMap<String, RoutePred>,
}

/// One liveness property with its witness path and interference
/// invariants (§5): a route satisfying `constraints[0]` entering the
/// path eventually produces a route satisfying `property` at
/// `location`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LivenessSpecJson {
    /// Display name.
    pub name: String,
    /// The property location (must equal the last path location).
    pub location: String,
    /// The predicate a route reaching the location must satisfy.
    pub property: RoutePred,
    /// The witness path: alternating edge (`"A -> B"`) and router
    /// locations ending at `location`.
    pub path: Vec<String>,
    /// One "good routes here" constraint per path location.
    pub constraints: Vec<RoutePred>,
    /// The prefix scope of the no-interference checks.
    pub prefix_scope: RoutePred,
    /// Default interference invariant for all locations.
    #[serde(default = "RoutePred::tru")]
    pub interference_default: RoutePred,
    /// Per-location interference overrides.
    #[serde(default)]
    pub interference_overrides: BTreeMap<String, RoutePred>,
}

/// The whole verification spec.
#[derive(Clone, Debug, Serialize, Deserialize, Default)]
pub struct Spec {
    /// Ghost attribute definitions.
    #[serde(default)]
    pub ghosts: Vec<GhostSpec>,
    /// Safety properties to verify.
    #[serde(default)]
    pub safety: Vec<SafetySpec>,
    /// Liveness properties to verify.
    #[serde(default)]
    pub liveness: Vec<LivenessSpecJson>,
}

/// Spec-resolution errors (unknown router/edge names).
#[derive(Clone, Debug)]
pub struct SpecResolveError(pub String);

impl fmt::Display for SpecResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec error: {}", self.0)
    }
}

impl std::error::Error for SpecResolveError {}

/// Resolve a location string against a topology.
pub fn resolve_location(topo: &Topology, s: &str) -> Result<Location, SpecResolveError> {
    if let Some((a, b)) = s.split_once("->") {
        let a = a.trim();
        let b = b.trim();
        let na = topo
            .node_by_name(a)
            .ok_or_else(|| SpecResolveError(format!("unknown router {a:?}")))?;
        let nb = topo
            .node_by_name(b)
            .ok_or_else(|| SpecResolveError(format!("unknown router {b:?}")))?;
        let e = topo
            .edge_between(na, nb)
            .ok_or_else(|| SpecResolveError(format!("no edge {a} -> {b}")))?;
        Ok(Location::Edge(e))
    } else {
        let n = topo
            .node_by_name(s.trim())
            .ok_or_else(|| SpecResolveError(format!("unknown router {s:?}")))?;
        Ok(Location::Node(n))
    }
}

fn resolve_edge(topo: &Topology, s: &str) -> Result<EdgeId, SpecResolveError> {
    match resolve_location(topo, s)? {
        Location::Edge(e) => Ok(e),
        Location::Node(_) => Err(SpecResolveError(format!(
            "{s:?} names a router; an edge (\"A -> B\") is required"
        ))),
    }
}

impl GhostSpec {
    /// Resolve into a [`GhostAttr`].
    pub fn resolve(&self, topo: &Topology) -> Result<GhostAttr, SpecResolveError> {
        let mut g = GhostAttr::new(&self.name).with_originate_value(self.originate_value);
        for s in &self.set_true_on_import {
            g.on_import(resolve_edge(topo, s)?, GhostUpdate::SetTrue);
        }
        for s in &self.set_false_on_import {
            g.on_import(resolve_edge(topo, s)?, GhostUpdate::SetFalse);
        }
        for s in &self.set_true_on_export {
            g.on_export(resolve_edge(topo, s)?, GhostUpdate::SetTrue);
        }
        for s in &self.set_false_on_export {
            g.on_export(resolve_edge(topo, s)?, GhostUpdate::SetFalse);
        }
        Ok(g)
    }
}

impl LivenessSpecJson {
    /// Resolve into a [`LivenessSpec`] (path-shape validation happens in
    /// `Verifier::verify_liveness`).
    pub fn resolve(&self, topo: &Topology) -> Result<LivenessSpec, SpecResolveError> {
        let mut interference = NetworkInvariants::with_default(self.interference_default.clone());
        for (l, p) in &self.interference_overrides {
            interference.set(resolve_location(topo, l)?, p.clone());
        }
        Ok(LivenessSpec {
            location: resolve_location(topo, &self.location)?,
            pred: self.property.clone(),
            path: self
                .path
                .iter()
                .map(|l| resolve_location(topo, l))
                .collect::<Result<_, _>>()?,
            constraints: self.constraints.clone(),
            prefix_scope: self.prefix_scope.clone(),
            interference_invariants: interference,
            name: Some(self.name.clone()),
        })
    }
}

impl SafetySpec {
    /// Resolve into verifier inputs.
    pub fn resolve(
        &self,
        topo: &Topology,
    ) -> Result<(SafetyProperty, NetworkInvariants), SpecResolveError> {
        let loc = resolve_location(topo, &self.location)?;
        let prop = SafetyProperty::new(loc, self.property.clone()).named(&self.name);
        let mut inv = NetworkInvariants::with_default(self.invariant_default.clone());
        for (l, p) in &self.invariant_overrides {
            inv.set(resolve_location(topo, l)?, p.clone());
        }
        Ok((prop, inv))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        let mut t = Topology::new();
        let r1 = t.add_router("R1", 65000);
        let x = t.add_external("ISP1", 100);
        t.add_session(x, r1);
        t
    }

    #[test]
    fn location_resolution() {
        let t = topo();
        assert!(matches!(resolve_location(&t, "R1"), Ok(Location::Node(_))));
        assert!(matches!(
            resolve_location(&t, "ISP1 -> R1"),
            Ok(Location::Edge(_))
        ));
        assert!(matches!(
            resolve_location(&t, " ISP1->R1 "),
            Ok(Location::Edge(_))
        ));
        assert!(resolve_location(&t, "NOPE").is_err());
        assert!(resolve_location(&t, "R1 -> NOPE").is_err());
    }

    #[test]
    fn ghost_resolution() {
        let t = topo();
        let gs = GhostSpec {
            name: "G".into(),
            set_true_on_import: vec!["ISP1 -> R1".into()],
            ..Default::default()
        };
        let g = gs.resolve(&t).unwrap();
        let e = resolve_edge(&t, "ISP1 -> R1").unwrap();
        assert_eq!(g.import_update(e), GhostUpdate::SetTrue);
    }

    #[test]
    fn spec_json_roundtrip() {
        let spec = Spec {
            ghosts: vec![GhostSpec {
                name: "FromISP1".into(),
                set_true_on_import: vec!["ISP1 -> R1".into()],
                ..Default::default()
            }],
            safety: vec![SafetySpec {
                name: "p".into(),
                location: "R1".into(),
                property: RoutePred::ghost("FromISP1").not(),
                invariant_default: RoutePred::True,
                invariant_overrides: BTreeMap::new(),
            }],
            liveness: vec![LivenessSpecJson {
                name: "l".into(),
                location: "R1".into(),
                property: RoutePred::True,
                path: vec!["ISP1 -> R1".into(), "R1".into()],
                constraints: vec![RoutePred::True, RoutePred::True],
                prefix_scope: RoutePred::True,
                interference_default: RoutePred::True,
                interference_overrides: BTreeMap::new(),
            }],
        };
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: Spec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.ghosts[0].name, "FromISP1");
        assert_eq!(back.safety[0].property, RoutePred::ghost("FromISP1").not());
        assert_eq!(back.liveness[0].name, "l");
        assert_eq!(back.liveness[0].path.len(), 2);
        let resolved = back.liveness[0].resolve(&topo()).unwrap();
        assert_eq!(resolved.path.len(), 2);
        assert_eq!(resolved.name.as_deref(), Some("l"));
    }

    #[test]
    fn edge_required_for_ghosts() {
        let t = topo();
        let gs = GhostSpec {
            name: "G".into(),
            set_true_on_import: vec!["R1".into()],
            ..Default::default()
        };
        assert!(gs.resolve(&t).is_err());
    }
}
