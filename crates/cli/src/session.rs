//! One tenant's worth of delta-scoped verification state, shared by
//! `watch`, `plan` and `serve`: per-spec-property [`ReverifyEngine`]s,
//! the currently-accepted configuration set, and the optional spill
//! directory for warm restarts. All three front-ends drive the same
//! [`Session::round`], so a round means exactly the same thing — and
//! produces the same [`api::PropertyReport`]s — whether it came from a
//! file poll, a migration step, or an API request.

use crate::render;
use crate::spec::Spec;
use bgp_config::{lower, ConfigAst};
use delta::{diff_configs, ConfigDelta};
use lightyear::engine::Verifier;
use lightyear::reverify::{ReverifyEngine, ReverifyStats};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Per-spec-property engines plus the currently-accepted configuration
/// set, carried across rounds.
pub(crate) struct Session {
    spec: Spec,
    engines: Vec<ReverifyEngine>,
    pub(crate) current: Vec<ConfigAst>,
    /// Spill directory for the carried result caches: one subdirectory
    /// per spec property, written after every verified round, reloaded
    /// (passes only) on startup so a restarted daemon starts warm.
    cache_dir: Option<PathBuf>,
}

/// What one round produced (stats merged over every property).
pub(crate) struct RoundOutcome {
    pub(crate) passed: bool,
    pub(crate) stats: ReverifyStats,
    pub(crate) delta: Option<ConfigDelta>,
    pub(crate) elapsed: Duration,
    /// Per-property reports rendered through the shared [`api`] schema
    /// — deliberately without timing fields, so two rounds over the
    /// same configurations serialize byte-identically.
    pub(crate) reports: Vec<api::PropertyReport>,
}

fn merge(into: &mut ReverifyStats, s: &ReverifyStats) {
    into.total += s.total;
    into.dirty += s.dirty;
    into.candidates += s.candidates;
    into.reused += s.reused;
    into.core_clean += s.core_clean;
    into.invalidated += s.invalidated;
    into.sessions_reused += s.sessions_reused;
    into.sessions_created += s.sessions_created;
    into.universe_reset |= s.universe_reset;
}

impl Session {
    /// A fresh session. `label` prefixes log lines (`watch`, `serve`).
    pub(crate) fn new(label: &str, spec: Spec, cache_dir: Option<PathBuf>) -> Session {
        // With a spill directory, each property's engine starts from its
        // reloaded cache — passing verdicts only: a pass replays soundly
        // under an equal fingerprint, while a spilled failure's
        // counterexample would bypass re-validation, so failures are
        // simply re-proved after a restart.
        let mut loaded_total = 0usize;
        let engines = spec
            .safety
            .iter()
            .enumerate()
            .map(|(i, _)| match &cache_dir {
                Some(dir) => {
                    let pdir = prop_dir(dir, i);
                    match lightyear::load_pass_cache(&pdir) {
                        Ok((cache, loaded)) => {
                            loaded_total += loaded;
                            ReverifyEngine::with_results(cache)
                        }
                        Err(e) => {
                            eprintln!("warning: ignoring unreadable cache at {pdir:?}: {e}");
                            ReverifyEngine::new()
                        }
                    }
                }
                None => ReverifyEngine::new(),
            })
            .collect();
        if loaded_total > 0 {
            println!(
                "{label}: cache: loaded {loaded_total} entries from {}",
                cache_dir.as_deref().unwrap_or(Path::new("?")).display()
            );
        }
        Session {
            spec,
            engines,
            current: Vec::new(),
            cache_dir,
        }
    }

    /// Spill every engine's carried result cache to the cache directory
    /// (no-op without one). Failures are durable in the spill format but
    /// dropped again on reload; see [`Session::new`].
    pub(crate) fn spill(&self) {
        let Some(dir) = &self.cache_dir else { return };
        for (i, engine) in self.engines.iter().enumerate() {
            if let Err(e) = lightyear::save_check_cache(&engine.cache(), &prop_dir(dir, i)) {
                eprintln!("warning: cannot save cache to {dir:?}: {e}");
            }
        }
    }

    /// Verify `asts`, re-solving only what changed since the accepted
    /// set (`full` skips the diff: round zero). On success the set is
    /// accepted as current; on error (parse/lower/spec) the previous
    /// state is kept so a daemon survives transient bad writes.
    pub(crate) fn round(
        &mut self,
        asts: Vec<ConfigAst>,
        full: bool,
    ) -> Result<RoundOutcome, String> {
        let t0 = Instant::now();
        let delta = (!full).then(|| diff_configs(&self.current, &asts));
        let net = lower(&asts).map_err(|e| e.to_string())?;
        let topo = &net.topology;
        let mut verifier = Verifier::new(topo, &net.policy);
        for g in &self.spec.ghosts {
            verifier = verifier.with_ghost(g.resolve(topo).map_err(|e| e.to_string())?);
        }
        let changed: Option<Vec<String>> = delta.as_ref().map(ConfigDelta::changed_routers);
        // Resolve the whole spec before advancing any engine: a round is
        // all-or-nothing, so engine state and the accepted configuration
        // set can never drift apart on a half-failed round.
        let resolved: Vec<_> = self
            .spec
            .safety
            .iter()
            .map(|s| s.resolve(topo).map_err(|e| e.to_string()))
            .collect::<Result<_, _>>()?;
        let mut stats = ReverifyStats::default();
        let mut passed = true;
        let mut reports = Vec::with_capacity(self.spec.safety.len());
        for (engine, (s, (prop, inv))) in self
            .engines
            .iter_mut()
            .zip(self.spec.safety.iter().zip(&resolved))
        {
            let (report, rstats) = engine.reverify(
                &verifier,
                std::slice::from_ref(prop),
                inv,
                changed.as_deref(),
            );
            merge(&mut stats, &rstats);
            if !report.all_passed() {
                passed = false;
                println!("{}: VIOLATED", s.name);
                print!("{}", report.format_failures(topo));
            }
            let conjs = verifier.check_conjuncts_all(std::slice::from_ref(prop), inv);
            reports.push(render::property_report(
                &s.name,
                false,
                &report.summarize(),
                topo,
                &conjs,
                None,
            ));
        }
        self.current = asts;
        Ok(RoundOutcome {
            passed,
            stats,
            delta,
            elapsed: t0.elapsed(),
            reports,
        })
    }
}

/// The per-round stats line (the daemons' primary output; the CI smoke
/// tests grep the `dirty <n>/<total>` token).
pub(crate) fn round_line(label: &str, o: &RoundOutcome) -> String {
    let delta = match &o.delta {
        Some(d) => format!("delta {d}; ", d = d.summary()),
        None => String::new(),
    };
    format!(
        "{label}: {delta}{summary}; {verdict} in {elapsed:?}",
        summary = o.stats.summary(),
        verdict = if o.passed { "verified" } else { "VIOLATED" },
        elapsed = o.elapsed,
    )
}

/// The per-property cache spill subdirectory (cache entries are keyed by
/// structural fingerprints, which are shared *within* one property's
/// engine; separate directories keep each engine's spill self-contained).
pub(crate) fn prop_dir(dir: &Path, i: usize) -> PathBuf {
    dir.join(format!("prop{i}"))
}
