//! The `watch` daemon and `plan` migration-step modes: long-lived
//! delta-scoped re-verification built on `delta::diff_configs` (what
//! changed), `lightyear::impact` (what it can dirty) and
//! `lightyear::ReverifyEngine` (warm cross-run sessions + carried result
//! cache).

use crate::session::{round_line, Session};
use crate::telemetry::TelemetryOpts;
use crate::{config_paths, flag_value, load_configs, load_spec, usage};
use bgp_config::{parse_config, ConfigAst};
use obs::http::{Status, TelemetryServer};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The daemon's telemetry: the always-on flight recorder, the shared
/// round [`Status`] (the **single** round-increment site every surface
/// reads — totals line, `--metrics-json` file and `/metrics` endpoint
/// cannot disagree), the optional HTTP listener and JSONL event
/// stream, and the previous registry snapshot for per-round deltas.
struct Telemetry {
    reg: Arc<obs::Registry>,
    status: Arc<Status>,
    metrics_path: Option<PathBuf>,
    flight_path: PathBuf,
    prev: obs::MetricsSnapshot,
    /// Round number the CI flight-recorder smoke injects a panic at
    /// (`LIGHTYEAR_WATCH_PANIC_ROUND`).
    panic_round: Option<u64>,
    _server: Option<TelemetryServer>,
}

impl Telemetry {
    fn new(opts: &TelemetryOpts) -> Result<Telemetry, String> {
        let active = opts.start("watch", None, obs::http::DEFAULT_MAX_CONNS)?;
        let panic_round = std::env::var("LIGHTYEAR_WATCH_PANIC_ROUND")
            .ok()
            .and_then(|v| v.parse().ok());
        Ok(Telemetry {
            prev: active.reg.snapshot(),
            reg: active.reg,
            status: active.status,
            metrics_path: opts.metrics_json.clone(),
            flight_path: opts.flight_json.clone(),
            panic_round,
            _server: active.server,
        })
    }

    /// What the registry accumulated since the previous round boundary.
    fn delta(&mut self) -> obs::MetricsSnapshot {
        let snap = self.reg.snapshot();
        let d = snap.delta_since(&self.prev);
        self.prev = snap;
        d
    }

    /// Seal the baseline (round zero): verdict and delta, no round
    /// number burned.
    fn baseline_done(&mut self, ok: bool, elapsed: Duration) {
        let d = self.delta();
        obs::event!(
            info,
            "watch.baseline",
            verdict = if ok { "pass" } else { "fail" },
            solves = d.counter("smt.solves"),
        );
        self.status.note_baseline(ok, elapsed, Some(d));
        if !ok {
            self.dump_flight();
        }
        self.sync_file();
    }

    /// Seal one round — verified, violated, or rejected (`err`) — and
    /// return its number. The one place a watch round is counted.
    fn round_done(&mut self, ok: bool, elapsed: Duration, err: Option<&str>) -> u64 {
        if let Some(e) = err {
            self.reg.record_error(e);
        }
        let d = self.delta();
        let n = self.status.note_round(ok, elapsed, Some(d));
        obs::event!(
            info,
            "watch.round",
            round = n,
            verdict = if ok { "pass" } else { "fail" },
        );
        if !ok {
            self.dump_flight();
        }
        self.sync_file();
        if self.panic_round == Some(n) {
            panic!("injected panic at round {n} (LIGHTYEAR_WATCH_PANIC_ROUND)");
        }
        n
    }

    /// The per-round cumulative totals line (printed with
    /// `--metrics-json`). Reads the same round counter as the file and
    /// the endpoint.
    fn print_totals(&self) {
        if self.metrics_path.is_none() {
            return;
        }
        let snap = self.reg.snapshot();
        println!(
            "watch: totals: {} rounds, {} checks, {} cached, {} solver calls",
            self.status.rounds(),
            snap.counter("reverify.checks"),
            snap.counter("reverify.reused"),
            snap.counter("smt.solves"),
        );
    }

    /// Atomically rewrite `--metrics-json` through the same renderer
    /// `/metrics` serves, so a poll of either sees identical bytes.
    fn sync_file(&self) {
        let Some(path) = &self.metrics_path else {
            return;
        };
        if let Err(e) = obs::http::write_status_file(path, &self.status, &self.reg) {
            eprintln!("warning: cannot write metrics to {path:?}: {e}");
        }
    }

    /// Dump the flight recorder (post-mortems need no re-run).
    fn dump_flight(&self) {
        obs::dump_flight(&self.flight_path);
    }
}

pub(crate) fn cmd_watch(args: &[String]) -> ExitCode {
    // Strict flags: a typo'd `--once` or `--max-rounds` must error, not
    // silently turn a one-shot invocation into an infinite daemon.
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--configs" | "--spec" | "--baseline" | "--interval-ms" | "--max-rounds"
            | "--cache-dir" => i += 2,
            a if TelemetryOpts::takes(a) => i += 2,
            "--once" => i += 1,
            a => {
                eprintln!("error: unknown watch option {a}");
                return usage();
            }
        }
    }
    let (Some(dir), Some(spec_path)) = (flag_value(args, "--configs"), flag_value(args, "--spec"))
    else {
        return usage();
    };
    let once = args.iter().any(|a| a == "--once");
    let baseline = flag_value(args, "--baseline");
    let cache_dir = flag_value(args, "--cache-dir").map(PathBuf::from);
    let tele_opts = match TelemetryOpts::parse(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let interval = match flag_value(args, "--interval-ms").map(|v| v.parse::<u64>()) {
        None => 750,
        Some(Ok(n)) if n > 0 => n,
        Some(_) => {
            eprintln!("error: --interval-ms needs a positive integer");
            return usage();
        }
    };
    let max_rounds = match flag_value(args, "--max-rounds").map(|v| v.parse::<u64>()) {
        None => None,
        Some(Ok(n)) if n > 0 => Some(n),
        Some(_) => {
            eprintln!("error: --max-rounds needs a positive integer");
            return usage();
        }
    };

    let spec = match load_spec(&spec_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut state = Session::new("watch", spec, cache_dir);
    let mut tele = match Telemetry::new(&tele_opts) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Round zero: the baseline directory (the watched one by default).
    let base_dir = baseline.clone().unwrap_or_else(|| dir.clone());
    let mut ok = match load_configs(Path::new(&base_dir)).and_then(|a| state.round(a, true)) {
        Ok(o) => {
            println!("{}", round_line(&format!("baseline {base_dir}"), &o));
            state.spill();
            tele.baseline_done(o.passed, o.elapsed);
            tele.print_totals();
            o.passed
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if once {
        // One delta round baseline -> configs (when they differ sources).
        if baseline.is_some() {
            match load_configs(Path::new(&dir)).and_then(|a| state.round(a, false)) {
                Ok(o) => {
                    ok &= o.passed;
                    let n = tele.round_done(ok, o.elapsed, None);
                    println!("{}", round_line(&format!("round {n}"), &o));
                    state.spill();
                    tele.print_totals();
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        return exit(ok);
    }

    println!("watch: polling {dir} every {interval}ms (ctrl-c to stop)");
    let mut rounds = 0u64;
    // The last snapshot that failed to verify (parse/lower/spec error):
    // a bad state must fail its round exactly once — a scripted
    // `--max-rounds` caller must neither hang on it nor read success —
    // and must not be re-reported on every poll tick while unchanged.
    let mut last_failed: Option<Snapshot> = None;
    let mut last_err: Option<String> = None;
    // The byte snapshot behind the accepted round: an idle tick is one
    // directory read and a byte comparison, no re-parsing.
    let mut accepted: Option<Snapshot> = None;
    loop {
        std::thread::sleep(Duration::from_millis(interval));
        let first = match snapshot(Path::new(&dir)) {
            Ok(s) => s,
            Err(e) => {
                if last_err.as_ref() != Some(&e) {
                    ok = false;
                    rounds = tele.round_done(ok, Duration::ZERO, Some(&e));
                    eprintln!("watch: round {rounds}: {e}");
                    last_err = Some(e);
                    tele.print_totals();
                }
                if max_rounds.is_some_and(|m| rounds >= m) {
                    break;
                }
                continue;
            }
        };
        last_err = None;
        if accepted.as_ref() == Some(&first) || last_failed.as_ref() == Some(&first) {
            continue;
        }
        // Something changed: demand a second identical read a beat
        // later before verifying — editors truncate-then-write, and a
        // half-saved file must neither burn a round nor be verified as
        // intended.
        std::thread::sleep(Duration::from_millis(STABILITY_MS));
        match snapshot(Path::new(&dir)) {
            Ok(second) if second == first => {}
            _ => continue, // files in motion; retry next tick
        }
        let snap = first;
        let parsed = parse_snapshot(&snap);
        if matches!(&parsed, Ok(asts) if *asts == state.current) {
            // A revert to the accepted set is not a round.
            last_failed = None;
            accepted = Some(snap);
            continue;
        }
        // Every attempted round — verified, violated, or rejected as
        // unparsable — burns exactly one round number at its
        // `round_done` call (the Status increment site), so the
        // numbering stays monotone across rejected rounds instead of a
        // later round reusing a failed round's number.
        let t0 = Instant::now();
        match parsed {
            Ok(asts) => match state.round(asts, false) {
                Ok(o) => {
                    ok = o.passed;
                    rounds = tele.round_done(ok, o.elapsed, None);
                    println!("{}", round_line(&format!("round {rounds}"), &o));
                    state.spill();
                    last_failed = None;
                    accepted = Some(snap);
                }
                Err(e) => {
                    ok = false;
                    rounds = tele.round_done(ok, t0.elapsed(), Some(&e));
                    eprintln!("watch: round {rounds}: {e}");
                    last_failed = Some(snap);
                }
            },
            Err(e) => {
                ok = false;
                rounds = tele.round_done(ok, t0.elapsed(), Some(&e));
                eprintln!("watch: round {rounds}: {e}");
                last_failed = Some(snap);
            }
        }
        tele.print_totals();
        if max_rounds.is_some_and(|m| rounds >= m) {
            break;
        }
    }
    exit(ok)
}

pub(crate) fn cmd_plan(args: &[String]) -> ExitCode {
    let Some(spec_path) = flag_value(args, "--spec") else {
        return usage();
    };
    // Positional arguments are the steps; unknown flags are rejected so
    // a typo'd option's value can never be mistaken for a step
    // directory (and silently verified as one).
    let mut dirs: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--spec" => i += 2,
            a if a.starts_with("--") => {
                eprintln!("error: unknown plan option {a}");
                return usage();
            }
            a => {
                dirs.push(a.to_string());
                i += 1;
            }
        }
    }
    if dirs.is_empty() {
        return usage();
    }
    let spec = match load_spec(&spec_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut state = Session::new("plan", spec, None);
    let mut all_ok = true;
    for (step, d) in dirs.iter().enumerate() {
        let outcome = load_configs(Path::new(d)).and_then(|a| state.round(a, step == 0));
        match outcome {
            Ok(o) => {
                println!("{}", round_line(&format!("step {step} ({d})"), &o));
                all_ok &= o.passed;
            }
            Err(e) => {
                eprintln!("error: step {step} ({d}): {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "plan: {} steps, {}",
        dirs.len(),
        if all_ok {
            "every intermediate configuration verified"
        } else {
            "UNSAFE — at least one intermediate configuration fails"
        }
    );
    exit(all_ok)
}

/// One byte-level read of a directory's config files, keyed by path.
type Snapshot = Vec<(String, Vec<u8>)>;

/// Delay between the two reads of a change-confirmation snapshot.
const STABILITY_MS: u64 = 25;

fn snapshot(dir: &Path) -> Result<Snapshot, String> {
    config_paths(dir)?
        .into_iter()
        .map(|p| {
            std::fs::read(&p)
                .map(|b| (p.display().to_string(), b))
                .map_err(|e| format!("cannot read {p:?}: {e}"))
        })
        .collect()
}

fn parse_snapshot(snap: &Snapshot) -> Result<Vec<ConfigAst>, String> {
    snap.iter()
        .map(|(name, bytes)| {
            parse_config(&String::from_utf8_lossy(bytes)).map_err(|e| format!("{name}: {e}"))
        })
        .collect()
}

fn exit(ok: bool) -> ExitCode {
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
