//! The `fuzz` subcommand: seeded differential campaigns over the
//! topology zoo, with minimized replayable repros on discrepancy.

use crate::{flag_value, usage};
use fuzz::{CampaignConfig, FamilyId};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

pub(crate) fn cmd_fuzz(args: &[String]) -> ExitCode {
    // Strict flags: a typo or a missing value must not silently change
    // the campaign.
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            f @ ("--seed" | "--cases" | "--families" | "--edit-steps" | "--sim-rounds"
            | "--repro-dir" | "--bench-json" | "--replay") => {
                if i + 1 >= args.len() {
                    eprintln!("error: {f} needs a value");
                    return usage();
                }
                i += 2;
            }
            f if crate::telemetry::TelemetryOpts::takes(f) => {
                if i + 1 >= args.len() {
                    eprintln!("error: {f} needs a value");
                    return usage();
                }
                i += 2;
            }
            "--no-inject" => i += 1,
            a => {
                eprintln!("error: unknown fuzz option {a}");
                return usage();
            }
        }
    }

    if let Some(dir) = flag_value(args, "--replay") {
        // A repro replays under its recorded parameters; campaign flags
        // would be accepted-but-ignored, which the strict parse exists
        // to prevent.
        if args.len() > 2 {
            eprintln!("error: --replay takes no other options (the repro records its parameters)");
            return usage();
        }
        return cmd_replay(Path::new(&dir));
    }

    let mut cfg = CampaignConfig::default();
    if let Some(v) = flag_value(args, "--seed") {
        let Ok(s) = v.parse() else {
            eprintln!("error: --seed needs an integer");
            return usage();
        };
        cfg.seed = s;
    }
    if let Some(v) = flag_value(args, "--cases") {
        match v.parse::<usize>() {
            Ok(n) if n > 0 => cfg.cases = n,
            _ => {
                eprintln!("error: --cases needs a positive integer");
                return usage();
            }
        }
    }
    if let Some(v) = flag_value(args, "--families") {
        let mut families = Vec::new();
        for name in v.split(',') {
            let Some(f) = FamilyId::parse(name.trim()) else {
                eprintln!(
                    "error: unknown family {name:?} (known: {})",
                    FamilyId::all()
                        .iter()
                        .map(|f| f.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return usage();
            };
            families.push(f);
        }
        cfg.families = families;
    }
    for (flag, slot) in [
        ("--edit-steps", &mut cfg.edit_steps),
        ("--sim-rounds", &mut cfg.sim_rounds),
    ] {
        if let Some(v) = flag_value(args, flag) {
            let Ok(n) = v.parse() else {
                eprintln!("error: {flag} needs a non-negative integer");
                return usage();
            };
            *slot = n;
        }
    }
    cfg.inject = !args.iter().any(|a| a == "--no-inject");
    let repro_dir = PathBuf::from(
        flag_value(args, "--repro-dir").unwrap_or_else(|| ".lightyear-fuzz-repro".to_string()),
    );

    // Always-on flight recorder: live per-family / per-oracle counters
    // accumulate in the registry as the campaign runs, so a `--listen`
    // scrape shows mid-flight progress, and a panicking case leaves a
    // post-mortem without a re-run. Flags and bring-up are shared with
    // `watch` and `serve` via TelemetryOpts.
    let tele_opts = match crate::telemetry::TelemetryOpts::parse(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let flight_path = tele_opts.flight_json.clone();
    let active = match tele_opts.start("fuzz", None, obs::http::DEFAULT_MAX_CONNS) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (reg, status, _server) = (active.reg, active.status, active.server);

    let t0 = std::time::Instant::now();
    let before = reg.snapshot();
    let out = fuzz::run_campaign(&cfg);
    // The campaign is one "round" for /healthz and /metrics consumers.
    status.note_round(
        out.failure.is_none(),
        t0.elapsed(),
        Some(reg.snapshot().delta_since(&before)),
    );
    println!("{}", out.summary());
    if let Some(path) = flag_value(args, "--bench-json") {
        let json = serde_json::to_string_pretty(&out.to_json(&cfg)).unwrap_or_default();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: cannot write {path}: {e}");
        } else {
            println!("fuzz: campaign record written to {path}");
        }
    }

    let Some((failing, discrepancy)) = out.failure else {
        return ExitCode::SUCCESS;
    };
    obs::record_error(&format!("fuzz discrepancy: {discrepancy}"));
    obs::dump_flight(&flight_path);
    eprintln!("fuzz: discrepancy: {discrepancy}");
    eprintln!("fuzz: minimizing (greedy, re-running the failing oracle)...");
    let before = fuzz::case_size(&failing.configs);
    let min = fuzz::minimize(&failing);
    let after = fuzz::case_size(&min.configs);
    match fuzz::write_repro(&min, &repro_dir) {
        Ok(()) => {
            eprintln!(
                "fuzz: repro written to {} (size {before} -> {after}, {} edit seeds); replay with:\n  \
                 lightyear fuzz --replay {}",
                repro_dir.display(),
                min.edit_seeds.len(),
                repro_dir.display()
            );
        }
        Err(e) => eprintln!(
            "warning: cannot write repro to {}: {e}",
            repro_dir.display()
        ),
    }
    ExitCode::FAILURE
}

/// Replay a repro directory. Exit 1 when the failure reproduces (the
/// repro is live), 0 when it no longer does (fixed).
fn cmd_replay(dir: &Path) -> ExitCode {
    match fuzz::replay(dir) {
        Ok(Some(d)) => {
            println!("fuzz: failure reproduces: {d}");
            ExitCode::FAILURE
        }
        Ok(None) => {
            println!("fuzz: repro no longer fails (fixed)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
