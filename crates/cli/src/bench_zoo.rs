//! `lightyear bench --zoo`: the Internet-scale corpus sweep.
//!
//! Walks the [`netgen::zoo`] corpus ascending by router count, builds
//! each topology through the full print → parse → lower pipeline,
//! verifies both property suites (peering hygiene + community fencing)
//! as one orchestrated batch with streaming report assembly, and emits
//! one JSON record per entry to `BENCH_zoo.json`:
//!
//! ```json
//! {"topo":"Cogentco","routers":197,"edges":..,"checks":..,
//!  "checks_per_sec":..,"wall_seconds":..,"peak_rss_kb":..,
//!  "dedup_ratio":..,"passed":true}
//! ```
//!
//! `wall_seconds`, `checks_per_sec` and `peak_rss_kb` are the only
//! non-deterministic fields; everything else is a pure function of the
//! corpus definition and `--seed` (pinned by a CLI test). CI's
//! `zoo-smoke` job gates a throughput floor and a memory ceiling on
//! these records.

use lightyear::engine::{RunMode, Verifier};
use netgen::zoo::{self, ZooParams, CORPUS};
use std::process::ExitCode;

pub(crate) fn cmd_bench(args: &[String]) -> ExitCode {
    let mut zoo_sweep = false;
    let mut limit = CORPUS.len();
    let mut seed: Option<u64> = None;
    let mut max_routers: Option<usize> = None;
    let mut json_path = "BENCH_zoo.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--zoo" => zoo_sweep = true,
            "--limit" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => limit = n,
                None => return bad_usage("--limit needs a number"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => seed = Some(n),
                None => return bad_usage("--seed needs a number"),
            },
            "--max-routers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 2 => max_routers = Some(n),
                _ => return bad_usage("--max-routers needs a number >= 2"),
            },
            "--json" => match it.next() {
                Some(p) => json_path = p.clone(),
                None => return bad_usage("--json needs a path"),
            },
            other => return bad_usage(&format!("unknown bench option {other:?}")),
        }
    }
    if !zoo_sweep {
        return bad_usage("bench currently requires --zoo");
    }

    let mut records = Vec::new();
    let mut table = bench::Table::new(&[
        "topo", "routers", "edges", "checks", "checks/s", "wall", "peak RSS", "dedup",
    ]);
    let mut all_passed = true;
    for entry in CORPUS.iter().take(limit.max(1)) {
        let mut params = match max_routers {
            Some(n) => ZooParams::scaled(entry, n),
            None => ZooParams::for_entry(entry),
        };
        if let Some(s) = seed {
            params = params.with_seed(s);
        }
        let record = run_entry(&params);
        all_passed &= record["passed"].as_bool().unwrap_or(false);
        table.row(vec![
            record["topo"].as_str().unwrap_or("?").to_string(),
            record["routers"].as_u64().unwrap_or(0).to_string(),
            record["edges"].as_u64().unwrap_or(0).to_string(),
            record["checks"].as_u64().unwrap_or(0).to_string(),
            format!("{:.0}", record["checks_per_sec"].as_f64().unwrap_or(0.0)),
            format!("{:.2}s", record["wall_seconds"].as_f64().unwrap_or(0.0)),
            format!("{} kB", record["peak_rss_kb"].as_u64().unwrap_or(0)),
            format!("{:.2}", record["dedup_ratio"].as_f64().unwrap_or(1.0)),
        ]);
        records.push(record);
    }
    table.print();

    let body = serde_json::to_string_pretty(&serde_json::Value::Array(records)).unwrap();
    if let Err(e) = std::fs::write(&json_path, body) {
        eprintln!("error: cannot write {json_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("bench: wrote {json_path}");
    if all_passed {
        ExitCode::SUCCESS
    } else {
        eprintln!("error: a corpus property suite failed verification");
        ExitCode::FAILURE
    }
}

/// Build and verify one corpus entry, returning its sweep record.
fn run_entry(params: &ZooParams) -> serde_json::Value {
    let t_build = std::time::Instant::now();
    let s = zoo::build(params);
    let build_seconds = t_build.elapsed().as_secs_f64();
    let topo = &s.network.topology;

    let verifier = Verifier::new(topo, &s.network.policy)
        .with_mode(RunMode::Parallel)
        .with_ghost(s.from_peer_ghost());
    let (peering_props, peering_inv) = s.peering_suite();
    let (fencing_props, fencing_inv) = s.fencing_suite();
    let suites: Vec<(&[lightyear::SafetyProperty], &lightyear::NetworkInvariants)> = vec![
        (&peering_props, &peering_inv),
        (&fencing_props, &fencing_inv),
    ];

    let t_verify = std::time::Instant::now();
    // Streaming assembly, no core retention: this is the memory-model
    // the README's scaling section describes — O(frontier), not
    // O(checks).
    let multi = verifier.verify_safety_batch_streaming(&suites, false);
    let wall = t_verify.elapsed().as_secs_f64();
    let checks = multi.num_checks();
    let passed = multi.all_passed();
    if !passed {
        for (suite, summary) in ["peering", "fencing"].iter().zip(&multi.summaries) {
            if !summary.all_passed() {
                eprintln!(
                    "{} {suite} suite FAILED:\n{}",
                    params.name,
                    summary.format_failures(topo)
                );
            }
        }
    }
    let peak_rss_kb = obs::record_peak_rss();

    serde_json::json!({
        "topo": params.name,
        "routers": topo.router_ids().count(),
        "edges": topo.num_edges(),
        "checks": checks,
        "checks_per_sec": if wall > 0.0 { checks as f64 / wall } else { 0.0 },
        "wall_seconds": wall,
        "build_seconds": build_seconds,
        "peak_rss_kb": peak_rss_kb,
        "dedup_ratio": multi.exec.dedup_ratio(),
        "solver_calls": multi.exec.executed,
        "passed": passed,
    })
}

fn bad_usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: lightyear bench --zoo [--limit N] [--seed N] [--max-routers N] [--json FILE]"
    );
    ExitCode::from(2)
}
