//! Golden byte-identity test for `verify --json` on a pinned 8-router
//! WAN: the rendered report JSON must not drift — not across the
//! `crates/api` report-type migration, not ever silently.
//!
//! The golden file stores the *masked* output: wall-clock fields are
//! zeroed and the trailing `{timings, metrics}` entry is dropped
//! (volatile by design), everything else must match byte for byte.
//! Regenerate deliberately with:
//!
//! ```text
//! LIGHTYEAR_UPDATE_GOLDEN=1 cargo test -p lightyear-cli --test golden
//! ```

use netgen::wan::{self, WanParams};
use serde_json::Value;
use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_lightyear")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lightyear-golden-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The pinned scenario: 2 regions x 2 routers + 4 edge routers = 8
/// routers, 2 peers per edge, seed 0. Changing this invalidates the
/// golden file by construction — regenerate it in the same change.
fn wan8() -> WanParams {
    WanParams {
        regions: 2,
        routers_per_region: 2,
        edge_routers: 4,
        peers_per_edge: 2,
        seed: 0,
    }
}

fn write_configs(dir: &Path) {
    for ast in wan::configs(&wan8()) {
        std::fs::write(
            dir.join(format!("{}.cfg", ast.hostname)),
            bgp_config::print_config(&ast),
        )
        .unwrap();
    }
}

/// The pinned spec: one passing peer-policy property per region
/// gateway, one deliberately failing property (exercises the
/// `failures` array), and one liveness property (exercises the
/// liveness report shape).
fn write_spec(path: &Path) {
    use lightyear::pred::RoutePred;

    let peer_edges: Vec<String> = (0..4)
        .flat_map(|m| (0..2).map(move |p| format!("PEER{m}-{p} -> EDGE{m}")))
        .collect();
    let dc_edges = vec!["DC0 -> R0-1".to_string(), "DC1 -> R1-1".to_string()];
    let from_peer = RoutePred::ghost("FromPeer");
    let no_reused = from_peer.clone().implies(
        RoutePred::prefix_in(vec![bgp_model::PrefixRange::orlonger(wan::reused_prefix())]).not(),
    );
    let tagged = from_peer
        .clone()
        .implies(RoutePred::has_community(wan::peer_comm()));
    let witness: bgp_model::Ipv4Prefix = "198.51.100.0/24".parse().unwrap();
    let scope = RoutePred::prefix_eq(witness);
    let tagged_scope = scope
        .clone()
        .and(RoutePred::has_community(wan::peer_comm()));

    let spec = serde_json::json!({
        "ghosts": vec![serde_json::json!({
            "name": "FromPeer",
            "set_true_on_import": peer_edges,
            "set_false_on_import": dc_edges,
        })],
        "safety": vec![
            serde_json::json!({
                "name": "no-reused-from-peers",
                "location": "R0-0",
                "property": no_reused,
                "invariant_default": no_reused,
            }),
            serde_json::json!({
                "name": "peer-tagged",
                "location": "R1-0",
                "property": tagged,
                "invariant_default": tagged,
            }),
            serde_json::json!({
                "name": "no-peer-routes",
                "location": "EDGE0",
                "property": from_peer.clone().not(),
            }),
        ],
        "liveness": vec![serde_json::json!({
            "name": "peer-route-delivery",
            "location": "EDGE0 -> R0-0",
            "property": RoutePred::has_community(wan::peer_comm()),
            "path": vec!["PEER0-0 -> EDGE0", "EDGE0", "EDGE0 -> R0-0"],
            "constraints": vec![scope.clone(), tagged_scope.clone(), tagged_scope.clone()],
            "prefix_scope": scope,
            "interference_default": scope.clone().implies(tagged_scope),
        })],
    });
    std::fs::write(path, serde_json::to_string_pretty(&spec).unwrap()).unwrap();
}

/// Zero the wall-clock fields and drop the trailing `{timings,
/// metrics}` entry — the only parts of the report that may differ
/// between two runs on the same input.
fn mask(output: &str) -> String {
    let mut entries: Vec<Value> = serde_json::from_str(output).expect("verify --json output");
    if entries
        .last()
        .is_some_and(|e| e.get("timings").is_some() && e.get("metrics").is_some())
    {
        entries.pop();
    }
    for e in &mut entries {
        if let Value::Object(fields) = e {
            for (k, v) in fields.iter_mut() {
                if k == "total_seconds" || k == "solve_seconds" {
                    *v = Value::Float(0.0);
                }
            }
        }
    }
    let mut s = serde_json::to_string_pretty(&entries).unwrap();
    s.push('\n');
    s
}

#[test]
fn verify_json_matches_golden_wan8() {
    let dir = tmpdir("wan8");
    write_configs(&dir);
    let spec_path = dir.join("spec.json");
    write_spec(&spec_path);

    let out = Command::new(bin())
        .args([
            "verify",
            "--configs",
            dir.to_str().unwrap(),
            "--spec",
            spec_path.to_str().unwrap(),
            "--json",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The pinned spec contains one deliberately failing property.
    assert_eq!(
        out.status.code(),
        Some(1),
        "expected exit 1 (one failing property); stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let masked = mask(&stdout);

    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/verify_wan8.json");
    if std::env::var("LIGHTYEAR_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
        std::fs::write(&golden_path, &masked).unwrap();
        eprintln!("golden: wrote {}", golden_path.display());
        let _ = std::fs::remove_dir_all(&dir);
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden file missing; regenerate with LIGHTYEAR_UPDATE_GOLDEN=1");
    assert_eq!(
        masked, golden,
        "verify --json drifted from the golden WAN-8 report \
         (regenerate deliberately with LIGHTYEAR_UPDATE_GOLDEN=1)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
