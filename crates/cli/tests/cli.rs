//! End-to-end tests of the `lightyear` binary: write configs + spec to a
//! temp directory, invoke the binary, check output and exit codes.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_lightyear")
}

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("lightyear-cli-test-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

const R1: &str = "\
hostname R1
route-map FROM-ISP1 permit 10
 set community 100:1 additive
router bgp 65000
 neighbor 10.0.0.1 remote-as 100
 neighbor 10.0.0.1 description ISP1
 neighbor 10.0.0.1 route-map FROM-ISP1 in
 neighbor 10.0.12.2 remote-as 65000
 neighbor 10.0.12.2 description R2
";

const R2: &str = "\
hostname R2
ip community-list standard TRANSIT permit 100:1
route-map TO-ISP2 deny 10
 match community TRANSIT
route-map TO-ISP2 permit 20
route-map FROM-ISP2 permit 10
 set community none
router bgp 65000
 neighbor 10.0.0.2 remote-as 200
 neighbor 10.0.0.2 description ISP2
 neighbor 10.0.0.2 route-map FROM-ISP2 in
 neighbor 10.0.0.2 route-map TO-ISP2 out
 neighbor 10.0.12.1 remote-as 65000
 neighbor 10.0.12.1 description R1
";

const SPEC: &str = r#"{
  "ghosts": [
    { "name": "FromISP1",
      "set_true_on_import": ["ISP1 -> R1"],
      "set_false_on_import": ["ISP2 -> R2"] }
  ],
  "safety": [
    { "name": "no-transit",
      "location": "R2 -> ISP2",
      "property": { "Not": { "Ghost": "FromISP1" } },
      "invariant_default": { "Or": [ { "Not": { "Ghost": "FromISP1" } },
                                     { "HasCommunity": 6553601 } ] },
      "invariant_overrides": {
        "R2 -> ISP2": { "Not": { "Ghost": "FromISP1" } } } }
  ]
}"#;

fn write_net(dir: &std::path::Path, r2: &str) {
    fs::write(dir.join("r1.cfg"), R1).unwrap();
    fs::write(dir.join("r2.cfg"), r2).unwrap();
    fs::write(dir.join("spec.json"), SPEC).unwrap();
}

#[test]
fn verify_passes_on_correct_network() {
    let d = tmpdir("pass");
    write_net(&d, R2);
    let out = Command::new(bin())
        .args(["verify", "--configs"])
        .arg(&d)
        .arg("--spec")
        .arg(d.join("spec.json"))
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("no-transit: verified"), "{stdout}");
}

#[test]
fn verify_fails_and_localizes_on_broken_network() {
    let d = tmpdir("fail");
    let broken = R2.replace(" neighbor 10.0.0.2 route-map TO-ISP2 out\n", "");
    write_net(&d, &broken);
    let out = Command::new(bin())
        .args(["verify", "--configs"])
        .arg(&d)
        .arg("--spec")
        .arg(d.join("spec.json"))
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("VIOLATED"), "{stdout}");
    assert!(stdout.contains("R2 -> ISP2"), "{stdout}");
}

#[test]
fn verify_json_output() {
    let d = tmpdir("json");
    write_net(&d, R2);
    let out = Command::new(bin())
        .args(["verify", "--json", "--configs"])
        .arg(&d)
        .arg("--spec")
        .arg(d.join("spec.json"))
        .output()
        .unwrap();
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON on stdout");
    assert_eq!(v[0]["property"], "no-transit");
    assert_eq!(v[0]["passed"], true);
    assert!(v[0]["checks"].as_u64().unwrap() > 0);
}

#[test]
fn parse_prints_topology() {
    let d = tmpdir("parse");
    write_net(&d, R2);
    let out = Command::new(bin())
        .args(["parse", "--configs"])
        .arg(&d)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 routers"), "{stdout}");
    assert!(stdout.contains("R1 (AS 65000)"), "{stdout}");
}

#[test]
fn spec_template_roundtrips() {
    let out = Command::new(bin()).arg("spec-template").output().unwrap();
    assert!(out.status.success());
    let _: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
}

/// R1 with the customer-prefix deny the template's liveness property
/// needs (the §2.2 no-interference requirement: R1 must not tag routes
/// inside the liveness prefix scope).
const R1_CUST: &str = "\
hostname R1
ip prefix-list CUST seq 5 permit 203.0.113.0/24 le 32
route-map FROM-ISP1 deny 5
 match ip address prefix-list CUST
route-map FROM-ISP1 permit 10
 set community 100:1 additive
router bgp 65000
 neighbor 10.0.0.1 remote-as 100
 neighbor 10.0.0.1 description ISP1
 neighbor 10.0.0.1 route-map FROM-ISP1 in
 neighbor 10.0.12.2 remote-as 65000
 neighbor 10.0.12.2 description R2
";

#[test]
fn verify_runs_template_liveness_and_surfaces_cores() {
    let d = tmpdir("liveness");
    fs::write(d.join("r1.cfg"), R1_CUST).unwrap();
    fs::write(d.join("r2.cfg"), R2).unwrap();
    // The spec-template is the authoritative example: its safety AND
    // liveness sections must verify against this network.
    let tpl = Command::new(bin()).arg("spec-template").output().unwrap();
    assert!(tpl.status.success());
    fs::write(d.join("spec.json"), &tpl.stdout).unwrap();

    let out = Command::new(bin())
        .args(["verify", "--configs"])
        .arg(&d)
        .arg("--spec")
        .arg(d.join("spec.json"))
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("no-transit: verified"), "{stdout}");
    assert!(
        stdout.contains("customer-liveness (liveness): verified"),
        "{stdout}"
    );

    // --json: the liveness entry carries a non-empty "cores" array with
    // in-range indices and rendered load-bearing conjuncts.
    let out = Command::new(bin())
        .args(["verify", "--json", "--configs"])
        .arg(&d)
        .arg("--spec")
        .arg(d.join("spec.json"))
        .output()
        .unwrap();
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    let entries = v.as_array().expect("array output");
    let live = entries
        .iter()
        .find(|e| e["kind"].as_str() == Some("liveness"))
        .expect("a liveness entry");
    assert_eq!(live["property"], "customer-liveness");
    assert_eq!(live["passed"], true);
    let cores = live["cores"].as_array().expect("cores array");
    assert!(!cores.is_empty(), "liveness passes must report cores");
    for c in cores {
        let total = c["conjuncts"].as_u64().unwrap();
        let load_bearing = c["load_bearing"].as_array().unwrap();
        assert_eq!(
            load_bearing.len() as u64,
            c["core"].as_array().unwrap().len() as u64
        );
        for idx in c["core"].as_array().unwrap() {
            assert!(idx.as_u64().unwrap() < total.max(1));
        }
    }
}

#[test]
fn bad_inputs_give_clean_errors() {
    let d = tmpdir("bad");
    fs::create_dir_all(&d).unwrap();
    // Empty dir.
    let out = Command::new(bin())
        .args(["parse", "--configs"])
        .arg(&d)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no *.cfg"));

    // Unknown location in spec.
    write_net(&d, R2);
    fs::write(
        d.join("spec.json"),
        r#"{"safety":[{"name":"x","location":"NOPE","property":"True"}]}"#,
    )
    .unwrap();
    let out = Command::new(bin())
        .args(["verify", "--configs"])
        .arg(&d)
        .arg("--spec")
        .arg(d.join("spec.json"))
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown router"));
}

#[test]
fn lint_reports_findings() {
    let d = tmpdir("lint");
    fs::write(
        d.join("r1.cfg"),
        "hostname R1\nip prefix-list LONELY seq 5 permit 10.0.0.0/8\nroute-map IN permit 10\nrouter bgp 65000\n neighbor 1.1.1.1 remote-as 100\n neighbor 1.1.1.1 description ISP\n neighbor 1.1.1.1 route-map IN in\n",
    )
    .unwrap();
    let out = Command::new(bin())
        .args(["lint", "--configs"])
        .arg(&d)
        .output()
        .unwrap();
    // Warnings only -> success exit code.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("unused-prefix-list"), "{stdout}");

    // A dangling reference is an error -> failure exit code.
    fs::write(
        d.join("r1.cfg"),
        "hostname R1\nroute-map M permit 10\n match ip address prefix-list NOPE\nrouter bgp 65000\n neighbor 1.1.1.1 remote-as 100\n neighbor 1.1.1.1 description X\n neighbor 1.1.1.1 route-map M in\n",
    )
    .unwrap();
    let out = Command::new(bin())
        .args(["lint", "--configs"])
        .arg(&d)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("dangling-prefix-list"));
}

#[test]
fn verify_orchestrated_prints_dedup_stats() {
    let d = tmpdir("orch");
    write_net(&d, R2);
    let out = Command::new(bin())
        .args(["verify", "--jobs", "2", "--configs"])
        .arg(&d)
        .arg("--spec")
        .arg(d.join("spec.json"))
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("no-transit: verified"), "{stdout}");
    assert!(
        stdout.contains("orchestrator:"),
        "missing dedup stats line: {stdout}"
    );
    assert!(stdout.contains("solver calls"), "{stdout}");
}

#[test]
fn incremental_flag_switches_group_solving() {
    let d = tmpdir("incr");
    write_net(&d, R2);
    let run = |extra: &[&str]| {
        let mut cmd = Command::new(bin());
        cmd.args(["verify", "--jobs", "2"]);
        cmd.args(extra);
        cmd.args(["--configs"])
            .arg(&d)
            .arg("--spec")
            .arg(d.join("spec.json"));
        cmd.output().unwrap()
    };
    // Default: incremental group solving, reported on the stats line.
    let on = run(&[]);
    let on_out = String::from_utf8_lossy(&on.stdout).to_string();
    assert!(on.status.success(), "{on_out}");
    assert!(
        on_out.contains("incremental:"),
        "missing incremental stats: {on_out}"
    );
    // Disabled: same verdicts, one fresh instance per check, no
    // incremental stats segment.
    let off = run(&["--no-incremental"]);
    let off_out = String::from_utf8_lossy(&off.stdout).to_string();
    assert!(off.status.success(), "{off_out}");
    assert!(off_out.contains("no-transit: verified"), "{off_out}");
    assert!(
        !off_out.contains("incremental:"),
        "--no-incremental must suppress group solving: {off_out}"
    );
}

#[test]
fn watch_once_reports_dirty_subset_on_benign_edit() {
    let base = tmpdir("watch-base");
    write_net(&base, R2);
    let edited = tmpdir("watch-edit");
    // Benign semantic edit on R1 only: tweak local-pref in FROM-ISP1
    // (the tag is still applied, so no-transit keeps holding).
    let r1_edited = R1.replace(
        " set community 100:1 additive\n",
        " set community 100:1 additive\n set local-preference 120\n",
    );
    fs::write(edited.join("r1.cfg"), r1_edited).unwrap();
    fs::write(edited.join("r2.cfg"), R2).unwrap();

    let out = Command::new(bin())
        .args(["watch", "--once", "--baseline"])
        .arg(&base)
        .arg("--configs")
        .arg(&edited)
        .arg("--spec")
        .arg(base.join("spec.json"))
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Baseline line: a full round.
    assert!(stdout.contains("baseline"), "{stdout}");
    // Delta round: classified diff + a dirty subset, verified.
    assert!(
        stdout.contains("route-map FROM-ISP1 changed"),
        "delta classification missing: {stdout}"
    );
    let round = stdout
        .lines()
        .find(|l| l.starts_with("round 1:"))
        .unwrap_or_else(|| panic!("no round line: {stdout}"));
    assert!(round.contains("verified"), "{round}");
    // dirty d/t with 0 < d < t.
    let dirty = round
        .split("dirty ")
        .nth(1)
        .and_then(|s| s.split(' ').next())
        .unwrap_or_else(|| panic!("no dirty token: {round}"));
    let (d, t) = dirty.split_once('/').expect("dirty d/t");
    let (d, t): (usize, usize) = (d.parse().unwrap(), t.parse().unwrap());
    assert!(d > 0, "a semantic edit must dirty something: {round}");
    assert!(d < t, "only the edited neighborhood re-solves: {round}");
}

#[test]
fn watch_once_cosmetic_edit_has_empty_dirty_set() {
    let base = tmpdir("watch-cos-base");
    write_net(&base, R2);
    let edited = tmpdir("watch-cos-edit");
    // Pure rename of R1's import map (+ its attachment): cosmetic.
    let renamed = R1.replace("FROM-ISP1", "FROM-ISP1-RENAMED");
    fs::write(edited.join("r1.cfg"), renamed).unwrap();
    fs::write(edited.join("r2.cfg"), R2).unwrap();

    let out = Command::new(bin())
        .args(["watch", "--once", "--baseline"])
        .arg(&base)
        .arg("--configs")
        .arg(&edited)
        .arg("--spec")
        .arg(base.join("spec.json"))
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("cosmetic edit"), "{stdout}");
    let round = stdout
        .lines()
        .find(|l| l.starts_with("round 1:"))
        .unwrap_or_else(|| panic!("no round line: {stdout}"));
    assert!(
        round.contains("dirty 0/"),
        "cosmetic edits must dirty nothing: {round}"
    );
}

#[test]
fn watch_once_detects_breaking_edit() {
    let base = tmpdir("watch-break-base");
    write_net(&base, R2);
    let edited = tmpdir("watch-break-edit");
    fs::write(edited.join("r1.cfg"), R1).unwrap();
    // Drop R2's export filter: transit leaks.
    let broken = R2.replace(" neighbor 10.0.0.2 route-map TO-ISP2 out\n", "");
    fs::write(edited.join("r2.cfg"), broken).unwrap();

    let out = Command::new(bin())
        .args(["watch", "--once", "--baseline"])
        .arg(&base)
        .arg("--configs")
        .arg(&edited)
        .arg("--spec")
        .arg(base.join("spec.json"))
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "{stdout}");
    assert!(stdout.contains("VIOLATED"), "{stdout}");
    assert!(stdout.contains("R2 -> ISP2"), "{stdout}");
}

#[test]
fn watch_loop_picks_up_a_change_and_stops_at_max_rounds() {
    let d = tmpdir("watch-loop");
    write_net(&d, R2);
    let mut child = Command::new(bin())
        .args([
            "watch",
            "--interval-ms",
            "50",
            "--max-rounds",
            "1",
            "--configs",
        ])
        .arg(&d)
        .arg("--spec")
        .arg(d.join("spec.json"))
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    // Let the baseline round land, then edit a config in place.
    std::thread::sleep(std::time::Duration::from_millis(400));
    let r1_edited = R1.replace(
        " set community 100:1 additive\n",
        " set community 100:1 additive\n set local-preference 99\n",
    );
    fs::write(d.join("r1.cfg"), r1_edited).unwrap();
    // The daemon must verify the change and exit (max-rounds 1).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let status = loop {
        if let Some(s) = child.try_wait().unwrap() {
            break s;
        }
        if std::time::Instant::now() > deadline {
            let _ = child.kill();
            panic!("watch did not exit after the change round");
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    };
    let mut stdout = String::new();
    use std::io::Read as _;
    child
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut stdout)
        .unwrap();
    assert!(status.success(), "{stdout}");
    assert!(stdout.contains("round 1:"), "{stdout}");
    assert!(stdout.contains("dirty "), "{stdout}");
    assert!(stdout.contains("verified"), "{stdout}");
}

#[test]
fn plan_verifies_every_step() {
    let step0 = tmpdir("plan-0");
    write_net(&step0, R2);
    // Step 1: benign tweak. Step 2: revert it.
    let step1 = tmpdir("plan-1");
    let r1_tweaked = R1.replace(
        " set community 100:1 additive\n",
        " set community 100:1 additive\n set local-preference 150\n",
    );
    fs::write(step1.join("r1.cfg"), &r1_tweaked).unwrap();
    fs::write(step1.join("r2.cfg"), R2).unwrap();
    let step2 = tmpdir("plan-2");
    fs::write(step2.join("r1.cfg"), R1).unwrap();
    fs::write(step2.join("r2.cfg"), R2).unwrap();

    let out = Command::new(bin())
        .args(["plan", "--spec"])
        .arg(step0.join("spec.json"))
        .arg(&step0)
        .arg(&step1)
        .arg(&step2)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("step 0"), "{stdout}");
    assert!(stdout.contains("step 2"), "{stdout}");
    assert!(
        stdout.contains("every intermediate configuration verified"),
        "{stdout}"
    );

    // An unsafe intermediate step flips the exit code and the summary.
    let broken = tmpdir("plan-broken");
    fs::write(broken.join("r1.cfg"), R1).unwrap();
    fs::write(
        broken.join("r2.cfg"),
        R2.replace(" neighbor 10.0.0.2 route-map TO-ISP2 out\n", ""),
    )
    .unwrap();
    let out = Command::new(bin())
        .args(["plan", "--spec"])
        .arg(step0.join("spec.json"))
        .arg(&step0)
        .arg(&broken)
        .arg(&step2)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("UNSAFE"), "{stdout}");
}

#[test]
fn verify_json_reports_unsat_cores() {
    let d = tmpdir("cores-json");
    write_net(&d, R2);
    let out = Command::new(bin())
        .args(["verify", "--json", "--configs"])
        .arg(&d)
        .arg("--spec")
        .arg(d.join("spec.json"))
        .output()
        .unwrap();
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert_eq!(v[0]["passed"], true);
    let cores = v[0]["cores"]
        .as_array()
        .expect("passing runs report a cores array");
    assert!(
        !cores.is_empty(),
        "at least the subsumption check has a core"
    );
    // The subsumption check's proof needs the (single-conjunct) override
    // invariant at the property edge.
    let sub = cores
        .iter()
        .find(|c| c["kind"].as_str() == Some("subsumption"))
        .expect("subsumption core present");
    assert_eq!(sub["location"].as_str(), Some("R2 -> ISP2"));
    let load_bearing = sub["load_bearing"].as_array().unwrap();
    assert_eq!(load_bearing.len(), 1, "{sub:?}");
}

#[test]
fn watch_cache_dir_restarts_warm() {
    // A killed-and-restarted --once daemon must start warm from the
    // spilled cache: the restart's baseline round re-solves nothing.
    let d = tmpdir("watch-cache");
    write_net(&d, R2);
    let cache = d.join("cache");
    let run = || {
        Command::new(bin())
            .args(["watch", "--once", "--configs"])
            .arg(&d)
            .arg("--spec")
            .arg(d.join("spec.json"))
            .arg("--cache-dir")
            .arg(&cache)
            .output()
            .unwrap()
    };
    let cold = run();
    let cold_out = String::from_utf8_lossy(&cold.stdout).to_string();
    assert!(
        cold.status.success(),
        "{cold_out}\n{}",
        String::from_utf8_lossy(&cold.stderr)
    );
    // Cold baseline: everything dirty, nothing cached.
    let base = cold_out
        .lines()
        .find(|l| l.starts_with("baseline"))
        .unwrap_or_else(|| panic!("no baseline line: {cold_out}"));
    assert!(base.contains(", 0 cached"), "{base}");
    assert!(cache.join("prop0").join("cache.json").exists(), "spilled");

    // "Kill" (the --once process exited) and restart: warm.
    let warm = run();
    let warm_out = String::from_utf8_lossy(&warm.stdout).to_string();
    assert!(warm.status.success(), "{warm_out}");
    assert!(
        warm_out.contains("watch: cache: loaded"),
        "must reload the spill: {warm_out}"
    );
    let base = warm_out
        .lines()
        .find(|l| l.starts_with("baseline"))
        .unwrap_or_else(|| panic!("no baseline line: {warm_out}"));
    assert!(
        base.contains("dirty 0/"),
        "restart must answer the round from the spill: {base}"
    );
    assert!(!base.contains(", 0 cached"), "{base}");
    assert!(base.contains("verified"), "{base}");
}

#[test]
fn verify_cache_warms_across_runs() {
    let d = tmpdir("cache");
    write_net(&d, R2);
    let cache_dir = d.join("cache");
    let run = || {
        Command::new(bin())
            .args(["verify", "--cache-dir"])
            .arg(&cache_dir)
            .args(["--configs"])
            .arg(&d)
            .arg("--spec")
            .arg(d.join("spec.json"))
            .output()
            .unwrap()
    };

    let cold = run();
    let cold_out = String::from_utf8_lossy(&cold.stdout).to_string();
    assert!(
        cold.status.success(),
        "{cold_out}\n{}",
        String::from_utf8_lossy(&cold.stderr)
    );
    assert!(cold_out.contains("cache: saved"), "{cold_out}");
    assert!(
        cold_out.contains("0 cached"),
        "cold run must not hit the cache: {cold_out}"
    );

    let warm = run();
    let warm_out = String::from_utf8_lossy(&warm.stdout).to_string();
    assert!(warm.status.success(), "{warm_out}");
    assert!(warm_out.contains("cache: loaded"), "{warm_out}");
    // The warm run answers passing checks from the spill.
    assert!(
        !warm_out.contains("0 cached"),
        "warm run must hit the cache: {warm_out}"
    );
    assert!(warm_out.contains("no-transit: verified"), "{warm_out}");
}

/// Read the child's piped stdout until `needle` appears (accumulating
/// into `acc`), with a hard deadline so a wedged daemon fails the test
/// instead of hanging it.
fn read_until(stdout: &mut std::process::ChildStdout, needle: &str, acc: &mut String) {
    use std::io::Read as _;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let mut buf = [0u8; 1024];
    while !acc.contains(needle) {
        assert!(
            std::time::Instant::now() < deadline,
            "timed out waiting for {needle:?} in:\n{acc}"
        );
        let n = stdout.read(&mut buf).unwrap();
        if n == 0 {
            break; // EOF
        }
        acc.push_str(&String::from_utf8_lossy(&buf[..n]));
    }
    assert!(acc.contains(needle), "never saw {needle:?} in:\n{acc}");
}

/// Raw-socket GET against a `--listen` endpoint: `(code, body)`.
fn http_get(addr: &str, path: &str) -> (u16, String) {
    use std::io::{Read as _, Write as _};
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    let code = buf.split_whitespace().nth(1).unwrap().parse().unwrap();
    let body = buf.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (code, body)
}

#[test]
fn watch_listen_endpoint_agrees_with_metrics_file_across_rejected_rounds() {
    let d = tmpdir("watch-listen");
    write_net(&d, R2);
    let metrics = d.join("metrics.json");
    let mut child = Command::new(bin())
        .args(["watch", "--interval-ms", "50", "--listen", "127.0.0.1:0"])
        .arg("--metrics-json")
        .arg(&metrics)
        .arg("--flight-json")
        .arg(d.join("flight.json"))
        .arg("--configs")
        .arg(&d)
        .arg("--spec")
        .arg(d.join("spec.json"))
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut stdout = child.stdout.take().unwrap();
    let mut acc = String::new();
    read_until(&mut stdout, "listening on http://", &mut acc);
    let addr = acc
        .split("listening on http://")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap()
        .to_string();
    read_until(&mut stdout, "baseline", &mut acc);

    // Healthy after a passing baseline; no delta round has run yet.
    let (code, _) = http_get(&addr, "/healthz");
    assert_eq!(code, 200, "healthy after passing baseline");
    let (code, body) = http_get(&addr, "/metrics");
    assert_eq!(code, 200);
    let v: serde_json::Value = serde_json::from_str(&body).expect("well-formed scrape");
    assert_eq!(v.get("rounds").and_then(|r| r.as_u64()), Some(0));

    // Round 1: a breaking edit -> VIOLATED -> /healthz flips to 503.
    let broken = R2.replace(" neighbor 10.0.0.2 route-map TO-ISP2 out\n", "");
    fs::write(d.join("r2.cfg"), broken).unwrap();
    read_until(&mut stdout, "totals: 1 rounds", &mut acc);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let (code, _) = http_get(&addr, "/healthz");
        if code == 503 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "healthz never reported the failed round"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }

    // Round 2: an unparsable edit burns the next round number. The
    // totals line, the /metrics scrape, and the --metrics-json file
    // must all agree on 2 rounds (the single-increment-site contract).
    fs::write(d.join("r1.cfg"), "hostname R1\nrouter bgp oops\n").unwrap();
    read_until(&mut stdout, "totals: 2 rounds", &mut acc);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let scrape = loop {
        let (code, scrape) = http_get(&addr, "/metrics");
        assert_eq!(code, 200);
        let file = fs::read_to_string(&metrics).unwrap_or_default();
        if scrape == file {
            break scrape;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "scrape and metrics file never converged:\n{scrape}\nvs\n{file}"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    };
    let v: serde_json::Value = serde_json::from_str(&scrape).unwrap();
    assert_eq!(
        v.get("rounds").and_then(|r| r.as_u64()),
        Some(2),
        "endpoint counts both the violated and the rejected round"
    );
    assert_eq!(v.get("ok").and_then(|o| o.as_bool()), Some(false));

    let _ = child.kill();
    let _ = child.wait();
}

#[test]
fn watch_panic_leaves_a_flight_recorder_dump() {
    let d = tmpdir("watch-flight");
    write_net(&d, R2);
    let flight = d.join("flight.json");
    let mut child = Command::new(bin())
        .env("LIGHTYEAR_WATCH_PANIC_ROUND", "1")
        .args(["watch", "--interval-ms", "50"])
        .arg("--flight-json")
        .arg(&flight)
        .arg("--configs")
        .arg(&d)
        .arg("--spec")
        .arg(d.join("spec.json"))
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut stdout = child.stdout.take().unwrap();
    let mut acc = String::new();
    read_until(&mut stdout, "baseline", &mut acc);
    // Any accepted edit triggers round 1, where the injected panic fires.
    let r1_edited = R1.replace(
        " set community 100:1 additive\n",
        " set community 100:1 additive\n set local-preference 42\n",
    );
    fs::write(d.join("r1.cfg"), r1_edited).unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let status = loop {
        if let Some(s) = child.try_wait().unwrap() {
            break s;
        }
        if std::time::Instant::now() > deadline {
            let _ = child.kill();
            panic!("watch did not die at the injected panic round");
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    };
    assert!(!status.success(), "the injected panic must kill the daemon");
    let dump = fs::read_to_string(&flight).expect("panic hook wrote the flight recorder");
    let v: serde_json::Value = serde_json::from_str(&dump).expect("flight dump is JSON");
    assert!(v.get("traceEvents").is_some(), "{dump}");
    let err = v
        .get("last_error")
        .and_then(|e| e.as_str())
        .expect("flight dump latches the fatal error");
    assert!(err.contains("panic"), "{err}");
}

#[test]
fn bench_report_diffs_gate_files_and_exits_one_on_regression() {
    let d = tmpdir("bench-report");
    let a = d.join("A.json");
    let b = d.join("B.json");
    fs::write(
        &a,
        r#"[{"gate":"incremental-50r","ratio":3.2,"floor":2.0,"pass":true},
           {"gate":"obs-idle-listener-50r","value":0.20,"ceiling":1.0,"pass":true}]"#,
    )
    .unwrap();
    fs::write(
        &b,
        r#"[{"gate":"incremental-50r","ratio":2.1,"floor":2.0,"pass":true},
           {"gate":"obs-idle-listener-50r","value":0.21,"ceiling":1.0,"pass":true}]"#,
    )
    .unwrap();
    let out = Command::new(bin())
        .arg("bench-report")
        .arg(&a)
        .arg(&b)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(stdout.contains("incremental-50r"), "{stdout}");
    assert!(stdout.contains("unchanged"), "{stdout}");

    // Self-diff: everything unchanged, exit 0.
    let out = Command::new(bin())
        .arg("bench-report")
        .arg(&a)
        .arg(&a)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("2 gates"), "{stdout}");
    assert!(stdout.contains("0 regressed"), "{stdout}");
}

#[test]
fn bench_zoo_is_a_pure_function_of_its_seed() {
    // `bench --zoo --limit N --seed S` must emit identical JSON records
    // across runs once the volatile timing fields are masked: corpus
    // synthesis, check generation, dedup and verdicts are all pure
    // functions of the parameters.
    let d = tmpdir("bench-zoo-det");
    let run = |name: &str| -> serde_json::Value {
        let path = d.join(name);
        let out = Command::new(bin())
            .current_dir(&d)
            .args([
                "bench",
                "--zoo",
                "--limit",
                "2",
                "--max-routers",
                "12",
                "--seed",
                "7",
            ])
            .arg("--json")
            .arg(&path)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}\n{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        let text = fs::read_to_string(&path).unwrap();
        let mut v: serde_json::Value = serde_json::from_str(&text).unwrap();
        let serde_json::Value::Array(records) = &mut v else {
            panic!("expected a JSON array: {text}");
        };
        assert_eq!(records.len(), 2, "{text}");
        for r in records.iter_mut() {
            let serde_json::Value::Object(fields) = r else {
                panic!("expected record objects: {text}");
            };
            // Mask wall-clock-derived fields; everything else is pinned.
            fields.retain(|(k, _)| {
                !matches!(
                    k.as_str(),
                    "wall_seconds" | "build_seconds" | "checks_per_sec" | "peak_rss_kb"
                )
            });
        }
        v
    };
    let a = run("a.json");
    let b = run("b.json");
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}

#[test]
fn verify_survives_poisoned_cache_spill() {
    // A corrupted --cache-dir spill must never change verify's verdict
    // or report: damaged entries are re-proved, not replayed.
    let d = tmpdir("poisoned-cache");
    write_net(&d, R2);
    let cache_dir = d.join("cache");
    let run = || {
        Command::new(bin())
            .args(["verify", "--cache-dir"])
            .arg(&cache_dir)
            .args(["--configs"])
            .arg(&d)
            .arg("--spec")
            .arg(d.join("spec.json"))
            .output()
            .unwrap()
    };
    // Normalize a run's report: drop cache chatter and the wall-clock
    // suffix of the batch line; every remaining byte is deterministic.
    let report_of = |out: &std::process::Output| -> String {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| !l.starts_with("cache:"))
            .map(|l| l.split(" in ").next().unwrap_or(l).to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };
    let cold = run();
    assert!(cold.status.success());
    let clean_report = report_of(&cold);

    let spill = cache_dir.join("cache.json");
    let text = fs::read_to_string(&spill).unwrap();

    // Bit-flip inside an entry: the checksum rejects it and the check
    // re-proves; the rendered report must not change.
    fs::write(&spill, text.replace("\"payload\": \"{", "\"payload\": \"[")).unwrap();
    let flipped = run();
    assert!(flipped.status.success(), "poisoned spill must not fail");
    assert_eq!(clean_report, report_of(&flipped));

    // Truncated spill: unparseable, warn and start cold — never panic.
    fs::write(&spill, &text[..text.len() / 2]).unwrap();
    let truncated = run();
    assert!(truncated.status.success(), "truncated spill must not fail");
    assert_eq!(clean_report, report_of(&truncated));
}
