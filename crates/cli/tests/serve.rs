//! End-to-end tests of `lightyear serve`: spawn the daemon, drive the
//! typed `POST /api/v1` protocol over raw TCP, and check tenant
//! isolation, fairness under flood, queue admission, and warm restart.

use serde_json::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_lightyear")
}

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("lightyear-serve-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

// ---------------------------------------------------------------- daemon

/// A running `lightyear serve` child: announced address, captured
/// stdout, killed on drop.
struct Daemon {
    child: Child,
    addr: String,
    stdout: Arc<Mutex<String>>,
}

impl Daemon {
    fn start(extra: &[&str]) -> Daemon {
        let mut child = Command::new(bin())
            .args(["serve", "--listen", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap();
        let out = child.stdout.take().unwrap();
        let stdout = Arc::new(Mutex::new(String::new()));
        let sink = stdout.clone();
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            for line in BufReader::new(out).lines() {
                let Ok(line) = line else { break };
                if let Some(addr) = line.strip_prefix("serve: listening on http://") {
                    let _ = tx.send(addr.to_string());
                }
                let mut s = sink.lock().unwrap();
                s.push_str(&line);
                s.push('\n');
            }
        });
        let addr = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("daemon did not announce its listener");
        Daemon {
            child,
            addr,
            stdout,
        }
    }

    /// One `POST /api/v1` round-trip: `(http_status, response_body)`.
    fn post(&self, req: &Value) -> (u16, Value) {
        post_to(&self.addr, req)
    }

    fn stdout(&self) -> String {
        self.stdout.lock().unwrap().clone()
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.kill();
    }
}

/// One `POST /api/v1` round-trip against `addr`.
fn post_to(addr: &str, req: &Value) -> (u16, Value) {
    let body = serde_json::to_string(req).unwrap();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream
        .write_all(
            format!(
                "POST /api/v1 HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    let code = text
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or(0);
    let payload = text.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    let v =
        serde_json::from_str(payload).unwrap_or_else(|e| panic!("bad response body ({e}): {text}"));
    (code, v)
}

// ------------------------------------------------------------- requests

fn req(tenant: &str, call: Value) -> Value {
    serde_json::json!({ "api_version": 1u64, "tenant": tenant, "call": call })
}

fn file_values(files: &[(String, String)]) -> Vec<Value> {
    files
        .iter()
        .map(|(name, text)| serde_json::json!({ "name": name, "text": text }))
        .collect()
}

fn submit(tenant: &str, files: &[(String, String)], spec: &Value) -> Value {
    let body = serde_json::json!({ "configs": file_values(files), "spec": spec.clone() });
    req(tenant, serde_json::json!({ "SubmitConfigs": body }))
}

fn delta(tenant: &str, files: &[(String, String)]) -> Value {
    let body = serde_json::json!({ "configs": file_values(files) });
    req(tenant, serde_json::json!({ "SubmitDelta": body }))
}

fn verify(tenant: &str) -> Value {
    req(tenant, Value::Str("Verify".to_string()))
}

fn get_report(tenant: &str) -> Value {
    req(tenant, Value::Str("GetReport".to_string()))
}

fn health() -> Value {
    req("", Value::Str("Health".to_string()))
}

/// A tenant's round count from a Health response (0 when absent).
fn health_rounds(resp: &Value, tenant: &str) -> u64 {
    resp["result"]["tenants"]
        .as_array()
        .into_iter()
        .flatten()
        .find(|t| t["tenant"].as_str() == Some(tenant))
        .and_then(|t| t["rounds"].as_u64())
        .unwrap_or(0)
}

// ------------------------------------------------------------- networks

const R1: &str = "\
hostname R1
route-map FROM-ISP1 permit 10
 set community 100:1 additive
router bgp 65000
 neighbor 10.0.0.1 remote-as 100
 neighbor 10.0.0.1 description ISP1
 neighbor 10.0.0.1 route-map FROM-ISP1 in
 neighbor 10.0.12.2 remote-as 65000
 neighbor 10.0.12.2 description R2
";

const R2: &str = "\
hostname R2
ip community-list standard TRANSIT permit 100:1
route-map TO-ISP2 deny 10
 match community TRANSIT
route-map TO-ISP2 permit 20
route-map FROM-ISP2 permit 10
 set community none
router bgp 65000
 neighbor 10.0.0.2 remote-as 200
 neighbor 10.0.0.2 description ISP2
 neighbor 10.0.0.2 route-map FROM-ISP2 in
 neighbor 10.0.0.2 route-map TO-ISP2 out
 neighbor 10.0.12.1 remote-as 65000
 neighbor 10.0.12.1 description R1
";

const SPEC: &str = r#"{
  "ghosts": [
    { "name": "FromISP1",
      "set_true_on_import": ["ISP1 -> R1"],
      "set_false_on_import": ["ISP2 -> R2"] }
  ],
  "safety": [
    { "name": "no-transit",
      "location": "R2 -> ISP2",
      "property": { "Not": { "Ghost": "FromISP1" } },
      "invariant_default": { "Or": [ { "Not": { "Ghost": "FromISP1" } },
                                     { "HasCommunity": 6553601 } ] },
      "invariant_overrides": {
        "R2 -> ISP2": { "Not": { "Ghost": "FromISP1" } } } }
  ]
}"#;

fn small_files(r1: &str) -> Vec<(String, String)> {
    vec![
        ("r1.cfg".to_string(), r1.to_string()),
        ("r2.cfg".to_string(), R2.to_string()),
    ]
}

fn small_spec() -> Value {
    serde_json::from_str(SPEC).unwrap()
}

/// A semantically-edited r1 (adds a local-preference action): dirties
/// the R1 neighborhood, still verifies.
fn r1_edited() -> String {
    R1.replace(
        " set community 100:1 additive\n",
        " set community 100:1 additive\n set local-preference 99\n",
    )
}

/// The pinned WAN (same parameters as the golden test's scenario).
fn wan_files() -> Vec<(String, String)> {
    let params = netgen::wan::WanParams {
        regions: 2,
        routers_per_region: 2,
        edge_routers: 4,
        peers_per_edge: 2,
        seed: 0,
    };
    netgen::wan::configs(&params)
        .iter()
        .map(|ast| {
            (
                format!("{}.cfg", ast.hostname),
                bgp_config::print_config(ast),
            )
        })
        .collect()
}

/// Safety-only passing spec for the WAN (the serve engine, like
/// `watch`, drives safety properties).
fn wan_spec() -> Value {
    use lightyear::pred::RoutePred;
    let peer_edges: Vec<String> = (0..4)
        .flat_map(|m| (0..2).map(move |p| format!("PEER{m}-{p} -> EDGE{m}")))
        .collect();
    let dc_edges = vec!["DC0 -> R0-1".to_string(), "DC1 -> R1-1".to_string()];
    let from_peer = RoutePred::ghost("FromPeer");
    let no_reused = from_peer.clone().implies(
        RoutePred::prefix_in(vec![bgp_model::PrefixRange::orlonger(
            netgen::wan::reused_prefix(),
        )])
        .not(),
    );
    let tagged = from_peer.implies(RoutePred::has_community(netgen::wan::peer_comm()));
    serde_json::json!({
        "ghosts": vec![serde_json::json!({
            "name": "FromPeer",
            "set_true_on_import": peer_edges,
            "set_false_on_import": dc_edges,
        })],
        "safety": vec![
            serde_json::json!({
                "name": "no-reused-from-peers",
                "location": "R0-0",
                "property": no_reused,
                "invariant_default": no_reused,
            }),
            serde_json::json!({
                "name": "peer-tagged",
                "location": "R1-0",
                "property": tagged,
                "invariant_default": tagged,
            }),
        ],
    })
}

// ----------------------------------------------------------------- tests

/// Drive one tenant's full scripted sequence (baseline + two deltas)
/// and return its final report document.
fn run_small_sequence(d: &Daemon, tenant: &str) -> Value {
    let (code, resp) = d.post(&submit(tenant, &small_files(R1), &small_spec()));
    assert_eq!(code, 200, "{tenant} submit: {resp:?}");
    assert_eq!(resp["ok"], true, "{tenant} submit: {resp:?}");
    let (code, resp) = d.post(&delta(tenant, &small_files(&r1_edited())));
    assert_eq!(code, 200, "{tenant} delta1: {resp:?}");
    let (code, resp) = d.post(&delta(tenant, &small_files(R1)));
    assert_eq!(code, 200, "{tenant} delta2: {resp:?}");
    assert_eq!(resp["ok"], true);
    let (code, report) = d.post(&get_report(tenant));
    assert_eq!(code, 200);
    report
}

#[test]
fn multi_tenant_interleaved_matches_fresh_runs_and_stays_fair() {
    let daemon = Daemon::start(&["--workers", "2", "--queue-depth", "64"]);

    // Tenant C: the WAN, then a flood of full verifies from threads.
    let (code, resp) = daemon.post(&submit("c", &wan_files(), &wan_spec()));
    assert_eq!(code, 200, "c submit: {resp:?}");
    assert_eq!(resp["ok"], true, "c submit: {resp:?}");
    assert_eq!(resp["result"]["passed"], true, "c submit: {resp:?}");

    // Tenants A and B: interleaved baselines while C is about to flood.
    let (code, resp) = daemon.post(&submit("a", &small_files(R1), &small_spec()));
    assert_eq!(code, 200, "a submit: {resp:?}");
    let (code, _) = daemon.post(&submit("b", &small_files(R1), &small_spec()));
    assert_eq!(code, 200);

    // Start the flood: 6 threads x 12 sequential verifies.
    const FLOOD: u64 = 72;
    let addr = daemon.addr.clone();
    let flood: Vec<_> = (0..6)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                for _ in 0..12 {
                    let (code, resp) = post_to(&addr, &verify("c"));
                    assert!(code == 200 || code == 429, "flood: {code} {resp:?}");
                }
            })
        })
        .collect();

    // Interleaved deltas for A and B while C floods. Round-robin
    // draining with an in-flight cap of one job per tenant bounds how
    // long C can delay them: each must come back long before C's
    // backlog drains.
    let (code, a1) = daemon.post(&delta("a", &small_files(&r1_edited())));
    assert_eq!(code, 200, "a delta1 under flood: {a1:?}");
    let (code, _) = daemon.post(&delta("b", &small_files(&r1_edited())));
    assert_eq!(code, 200);
    let (_, h) = daemon.post(&health());
    let c_done_mid = health_rounds(&h, "c");
    let (code, _) = daemon.post(&delta("a", &small_files(R1)));
    assert_eq!(code, 200);
    let (code, _) = daemon.post(&delta("b", &small_files(R1)));
    assert_eq!(code, 200);
    assert!(
        c_done_mid < FLOOD,
        "fairness: tenant deltas must not wait out the whole flood \
         (c had already finished {c_done_mid}/{FLOOD})"
    );
    for t in flood {
        t.join().unwrap();
    }

    let (_, a_report) = daemon.post(&get_report("a"));
    let (_, b_report) = daemon.post(&get_report("b"));

    // Byte-identity: a fresh daemon, one tenant at a time, same
    // scripted sequence -> byte-identical report documents.
    let fresh = Daemon::start(&["--workers", "1"]);
    let a_fresh = run_small_sequence(&fresh, "a-solo");
    let b_fresh = run_small_sequence(&fresh, "b-solo");
    for (label, interleaved, solo) in [("a", &a_report, &a_fresh), ("b", &b_report, &b_fresh)] {
        assert_eq!(
            serde_json::to_string(&interleaved["result"]["reports"]).unwrap(),
            serde_json::to_string(&solo["result"]["reports"]).unwrap(),
            "tenant {label}: interleaved multi-tenant report must be \
             byte-identical to a fresh single-tenant run"
        );
        assert_eq!(interleaved["result"]["round"], solo["result"]["round"]);
        assert_eq!(interleaved["result"]["passed"], solo["result"]["passed"]);
    }

    // QueryCores: per-property core documents for the WAN tenant.
    let by_name = serde_json::json!({ "property": "no-reused-from-peers" });
    let (code, cores) = daemon.post(&req("c", serde_json::json!({ "QueryCores": by_name })));
    assert_eq!(code, 200, "{cores:?}");
    let entries = cores["result"]["cores"].as_array().unwrap();
    assert_eq!(entries.len(), 1, "{cores:?}");
    assert_eq!(entries[0]["property"], "no-reused-from-peers");
    // Unknown property names are typed errors, not empty results.
    let unknown = serde_json::json!({ "property": "no-such-property" });
    let (code, resp) = daemon.post(&req("c", serde_json::json!({ "QueryCores": unknown })));
    assert_eq!(code, 422, "{resp:?}");
    assert_eq!(resp["ok"], false);
}

#[test]
fn queue_overflow_answers_429_and_recovers() {
    let daemon = Daemon::start(&["--workers", "1", "--queue-depth", "1"]);
    let (code, resp) = daemon.post(&submit("t", &wan_files(), &wan_spec()));
    assert_eq!(code, 200, "{resp:?}");

    // 8 concurrent verifies against queue depth 1: at most one can be
    // in flight and one queued, so some must be refused with 429.
    let addr = daemon.addr.clone();
    let results: Vec<u16> = {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let body = serde_json::to_string(&verify("t")).unwrap();
                    let mut stream = TcpStream::connect(&addr).unwrap();
                    stream
                        .set_read_timeout(Some(Duration::from_secs(120)))
                        .unwrap();
                    stream
                        .write_all(
                            format!(
                                "POST /api/v1 HTTP/1.1\r\nHost: x\r\n\
                                 Content-Length: {}\r\n\r\n{body}",
                                body.len()
                            )
                            .as_bytes(),
                        )
                        .unwrap();
                    let mut text = String::new();
                    stream.read_to_string(&mut text).unwrap();
                    text.split_whitespace()
                        .nth(1)
                        .and_then(|c| c.parse().ok())
                        .unwrap_or(0)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    };
    assert!(
        results.contains(&429),
        "burst past the queue bound must see 429s: {results:?}"
    );
    assert!(
        results.contains(&200),
        "admitted requests must still verify: {results:?}"
    );
    // The daemon recovers: a later call succeeds.
    let (code, resp) = daemon.post(&verify("t"));
    assert_eq!(code, 200, "after burst: {resp:?}");
    assert_eq!(resp["ok"], true);
}

#[test]
fn warm_restart_reports_dirty_zero() {
    let cache = tmpdir("serve-warm");
    let cache_arg = cache.to_str().unwrap();

    let mut daemon = Daemon::start(&["--cache-root", cache_arg]);
    let (code, resp) = daemon.post(&submit("w", &wan_files(), &wan_spec()));
    assert_eq!(code, 200, "{resp:?}");
    assert_eq!(resp["ok"], true, "{resp:?}");
    let cold_line = resp["result"]["line"].as_str().unwrap().to_string();
    assert!(cold_line.contains("dirty"), "{cold_line}");
    // Kill hard: the spill happened at round end, not at shutdown.
    daemon.kill();

    let daemon = Daemon::start(&["--cache-root", cache_arg]);
    let (code, resp) = daemon.post(&submit("w", &wan_files(), &wan_spec()));
    assert_eq!(code, 200, "{resp:?}");
    assert_eq!(resp["ok"], true, "{resp:?}");
    let warm_line = resp["result"]["line"].as_str().unwrap().to_string();
    assert!(
        warm_line.contains("dirty 0/"),
        "a warm-restarted full round must re-solve nothing: {warm_line}"
    );
    assert!(
        daemon.stdout().contains("cache: loaded"),
        "daemon must announce the reloaded cache:\n{}",
        daemon.stdout()
    );
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn protocol_errors_are_typed() {
    let daemon = Daemon::start(&[]);

    // Version mismatch.
    let (code, resp) = daemon.post(&serde_json::json!({
        "api_version": 2u64, "tenant": "t", "call": "GetReport"
    }));
    assert_eq!(code, 400, "{resp:?}");
    assert!(
        resp["error"]
            .as_str()
            .unwrap()
            .contains("unsupported api_version 2"),
        "{resp:?}"
    );

    // Tenant names that could escape the cache root are refused.
    let (code, resp) = daemon.post(&serde_json::json!({
        "api_version": 1u64, "tenant": "../evil", "call": "GetReport"
    }));
    assert_eq!(code, 400, "{resp:?}");

    // Calls against a tenant with no submitted configuration.
    let (code, resp) = daemon.post(&verify("ghost-tenant"));
    assert_eq!(code, 422, "{resp:?}");
    assert_eq!(resp["ok"], false);

    // Health works without a tenant and lists api_version 1.
    let (code, resp) = daemon.post(&health());
    assert_eq!(code, 200, "{resp:?}");
    assert_eq!(resp["result"]["status"], "ok");
    assert_eq!(resp["result"]["api_version"].as_u64(), Some(1));

    // The telemetry endpoints share the listener.
    let mut stream = TcpStream::connect(&daemon.addr).unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
}
