//! rcc-style best-practice lints on configurations.
//!
//! The paper contrasts Lightyear with rcc [8], which "validates important
//! properties of BGP configurations, largely through local checks on
//! individual configuration" but "is limited to specific 'best practice'
//! policies, and there is no guarantee that the local checks together
//! ensure the desired end-to-end properties." This module provides that
//! complementary layer: fast, purely syntactic checks that catch config
//! hygiene issues before (or alongside) semantic verification.

use crate::ast::{ConfigAst, MatchAst, SetAst};
use std::collections::BTreeSet;
use std::fmt;

/// Severity of a lint finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Stylistic or hygiene issue.
    Warning,
    /// Likely a real misconfiguration.
    Error,
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// The router.
    pub router: String,
    /// Lint rule identifier.
    pub rule: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {}: {}",
            self.router,
            match self.severity {
                Severity::Warning => "warn",
                Severity::Error => "error",
            },
            self.rule,
            self.message
        )
    }
}

/// Run every lint rule over a set of configurations.
pub fn lint(configs: &[ConfigAst]) -> Vec<Finding> {
    let mut out = Vec::new();
    for cfg in configs {
        lint_dangling_references(cfg, &mut out);
        lint_unused_definitions(cfg, &mut out);
        lint_unfiltered_ebgp(cfg, configs, &mut out);
        lint_unreachable_entries(cfg, &mut out);
        lint_missing_descriptions(cfg, &mut out);
        lint_deny_with_sets(cfg, &mut out);
    }
    out
}

fn finding(cfg: &ConfigAst, rule: &'static str, severity: Severity, message: String) -> Finding {
    Finding {
        router: cfg.hostname.clone(),
        rule,
        severity,
        message,
    }
}

/// Route maps referencing undefined lists (also a lowering error; the
/// lint catches it per-router without needing the whole network).
fn lint_dangling_references(cfg: &ConfigAst, out: &mut Vec<Finding>) {
    for (name, entries) in &cfg.route_maps {
        for e in entries {
            for m in &e.matches {
                match m {
                    MatchAst::PrefixList(ns) => {
                        for n in ns {
                            if !cfg.prefix_lists.contains_key(n) {
                                out.push(finding(
                                    cfg,
                                    "dangling-prefix-list",
                                    Severity::Error,
                                    format!(
                                        "route-map {name} references undefined prefix-list {n}"
                                    ),
                                ));
                            }
                        }
                    }
                    MatchAst::Community { lists, .. } => {
                        for n in lists {
                            if !cfg.community_lists.contains_key(n) {
                                out.push(finding(
                                    cfg,
                                    "dangling-community-list",
                                    Severity::Error,
                                    format!(
                                        "route-map {name} references undefined community-list {n}"
                                    ),
                                ));
                            }
                        }
                    }
                    MatchAst::AsPath(ns) => {
                        for n in ns {
                            if !cfg.aspath_acls.contains_key(n) {
                                out.push(finding(
                                    cfg,
                                    "dangling-aspath-acl",
                                    Severity::Error,
                                    format!(
                                        "route-map {name} references undefined as-path list {n}"
                                    ),
                                ));
                            }
                        }
                    }
                    _ => {}
                }
            }
            for s in &e.sets {
                if let SetAst::CommListDelete(n) = s {
                    if !cfg.community_lists.contains_key(n) {
                        out.push(finding(
                            cfg,
                            "dangling-community-list",
                            Severity::Error,
                            format!("route-map {name} deletes via undefined community-list {n}"),
                        ));
                    }
                }
            }
        }
    }
    if let Some(bgp) = &cfg.router_bgp {
        for nbr in bgp.neighbors.values() {
            for rm in [&nbr.route_map_in, &nbr.route_map_out]
                .into_iter()
                .flatten()
            {
                if !cfg.route_maps.contains_key(rm) {
                    out.push(finding(
                        cfg,
                        "dangling-route-map",
                        Severity::Error,
                        format!("neighbor {} references undefined route-map {rm}", nbr.addr),
                    ));
                }
            }
        }
    }
}

/// Definitions nothing references.
fn lint_unused_definitions(cfg: &ConfigAst, out: &mut Vec<Finding>) {
    let mut used_pl = BTreeSet::new();
    let mut used_cl = BTreeSet::new();
    let mut used_acl = BTreeSet::new();
    let mut used_rm = BTreeSet::new();
    for entries in cfg.route_maps.values() {
        for e in entries {
            for m in &e.matches {
                match m {
                    MatchAst::PrefixList(ns) => used_pl.extend(ns.iter().cloned()),
                    MatchAst::Community { lists, .. } => used_cl.extend(lists.iter().cloned()),
                    MatchAst::AsPath(ns) => used_acl.extend(ns.iter().cloned()),
                    _ => {}
                }
            }
            for s in &e.sets {
                if let SetAst::CommListDelete(n) = s {
                    used_cl.insert(n.clone());
                }
            }
        }
    }
    if let Some(bgp) = &cfg.router_bgp {
        for nbr in bgp.neighbors.values() {
            used_rm.extend(nbr.route_map_in.iter().cloned());
            used_rm.extend(nbr.route_map_out.iter().cloned());
        }
    }
    for name in cfg.prefix_lists.keys() {
        if !used_pl.contains(name) {
            out.push(finding(
                cfg,
                "unused-prefix-list",
                Severity::Warning,
                format!("prefix-list {name} is never referenced"),
            ));
        }
    }
    for name in cfg.community_lists.keys() {
        if !used_cl.contains(name) {
            out.push(finding(
                cfg,
                "unused-community-list",
                Severity::Warning,
                format!("community-list {name} is never referenced"),
            ));
        }
    }
    for name in cfg.aspath_acls.keys() {
        if !used_acl.contains(name) {
            out.push(finding(
                cfg,
                "unused-aspath-acl",
                Severity::Warning,
                format!("as-path access-list {name} is never referenced"),
            ));
        }
    }
    for name in cfg.route_maps.keys() {
        if !used_rm.contains(name) {
            out.push(finding(
                cfg,
                "unused-route-map",
                Severity::Warning,
                format!("route-map {name} is not attached to any neighbor"),
            ));
        }
    }
}

/// eBGP sessions without an inbound route map (a classic rcc check: never
/// accept the Internet unfiltered).
fn lint_unfiltered_ebgp(cfg: &ConfigAst, all: &[ConfigAst], out: &mut Vec<Finding>) {
    let Some(bgp) = &cfg.router_bgp else { return };
    let internal: BTreeSet<&str> = all.iter().map(|c| c.hostname.as_str()).collect();
    for nbr in bgp.neighbors.values() {
        let peer_is_internal = nbr
            .description
            .as_deref()
            .map(|d| internal.contains(d))
            .unwrap_or(false);
        let is_ebgp = nbr.remote_as.map(|ra| ra != bgp.asn).unwrap_or(false);
        if is_ebgp && !peer_is_internal && nbr.route_map_in.is_none() {
            out.push(finding(
                cfg,
                "unfiltered-ebgp-import",
                Severity::Error,
                format!(
                    "eBGP neighbor {} ({}) has no inbound route-map",
                    nbr.addr,
                    nbr.description.as_deref().unwrap_or("?")
                ),
            ));
        }
    }
}

/// Entries after an unconditional terminal entry can never match.
fn lint_unreachable_entries(cfg: &ConfigAst, out: &mut Vec<Finding>) {
    for (name, entries) in &cfg.route_maps {
        let mut terminal_seq: Option<u32> = None;
        for e in entries {
            if let Some(seq) = terminal_seq {
                out.push(finding(
                    cfg,
                    "unreachable-entry",
                    Severity::Warning,
                    format!(
                        "route-map {name} seq {} is unreachable (seq {seq} matches everything)",
                        e.seq
                    ),
                ));
                continue;
            }
            if e.matches.is_empty() && e.continue_to.is_none() {
                terminal_seq = Some(e.seq);
            }
        }
    }
}

/// Neighbors without descriptions (required by this toolchain's lowering,
/// and good practice generally).
fn lint_missing_descriptions(cfg: &ConfigAst, out: &mut Vec<Finding>) {
    let Some(bgp) = &cfg.router_bgp else { return };
    for nbr in bgp.neighbors.values() {
        if nbr.description.is_none() {
            out.push(finding(
                cfg,
                "missing-description",
                Severity::Warning,
                format!("neighbor {} has no description", nbr.addr),
            ));
        }
    }
}

/// `deny` entries with set actions: the sets are dead.
fn lint_deny_with_sets(cfg: &ConfigAst, out: &mut Vec<Finding>) {
    for (name, entries) in &cfg.route_maps {
        for e in entries {
            if !e.permit && !e.sets.is_empty() {
                out.push(finding(
                    cfg,
                    "deny-with-sets",
                    Severity::Warning,
                    format!(
                        "route-map {name} seq {} is a deny but has set actions",
                        e.seq
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_config;

    fn has(findings: &[Finding], rule: &str) -> bool {
        findings.iter().any(|f| f.rule == rule)
    }

    #[test]
    fn clean_config_has_no_errors() {
        let cfg = parse_config(
            "\
hostname R1
ip prefix-list P seq 5 permit 10.0.0.0/8
route-map IN permit 10
 match ip address prefix-list P
router bgp 65000
 neighbor 1.1.1.1 remote-as 100
 neighbor 1.1.1.1 description ISP
 neighbor 1.1.1.1 route-map IN in
",
        )
        .unwrap();
        let findings = lint(&[cfg]);
        assert!(
            findings.iter().all(|f| f.severity != Severity::Error),
            "{findings:?}"
        );
    }

    #[test]
    fn dangling_references_flagged() {
        let cfg = parse_config(
            "\
hostname R1
route-map IN permit 10
 match ip address prefix-list NOPE
 match community NADA
 match as-path ZILCH
router bgp 65000
 neighbor 1.1.1.1 remote-as 100
 neighbor 1.1.1.1 description ISP
 neighbor 1.1.1.1 route-map IN in
 neighbor 1.1.1.1 route-map MISSING out
",
        )
        .unwrap();
        let findings = lint(&[cfg]);
        assert!(has(&findings, "dangling-prefix-list"));
        assert!(has(&findings, "dangling-community-list"));
        assert!(has(&findings, "dangling-aspath-acl"));
        assert!(has(&findings, "dangling-route-map"));
    }

    #[test]
    fn unused_definitions_flagged() {
        let cfg = parse_config(
            "\
hostname R1
ip prefix-list LONELY seq 5 permit 10.0.0.0/8
ip community-list standard QUIET permit 1:1
ip as-path access-list SILENT permit .*
route-map ORPHAN permit 10
",
        )
        .unwrap();
        let findings = lint(&[cfg]);
        assert!(has(&findings, "unused-prefix-list"));
        assert!(has(&findings, "unused-community-list"));
        assert!(has(&findings, "unused-aspath-acl"));
        assert!(has(&findings, "unused-route-map"));
    }

    #[test]
    fn unfiltered_ebgp_flagged_but_not_ibgp() {
        let a = parse_config(
            "\
hostname A
router bgp 65000
 neighbor 1.1.1.1 remote-as 100
 neighbor 1.1.1.1 description EXT
 neighbor 2.2.2.2 remote-as 65000
 neighbor 2.2.2.2 description B
",
        )
        .unwrap();
        let b = parse_config("hostname B\n").unwrap();
        let findings = lint(&[a, b]);
        let ebgp: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "unfiltered-ebgp-import")
            .collect();
        assert_eq!(ebgp.len(), 1);
        assert!(ebgp[0].message.contains("1.1.1.1"));
    }

    #[test]
    fn unreachable_entries_flagged() {
        let cfg = parse_config(
            "\
hostname R1
route-map M permit 10
route-map M deny 20
",
        )
        .unwrap();
        let findings = lint(&[cfg]);
        assert!(has(&findings, "unreachable-entry"));
    }

    #[test]
    fn terminal_with_continue_not_terminal() {
        let cfg = parse_config(
            "\
hostname R1
route-map M permit 10
 continue
route-map M deny 20
",
        )
        .unwrap();
        let findings = lint(&[cfg]);
        assert!(!has(&findings, "unreachable-entry"));
    }

    #[test]
    fn missing_description_and_deny_sets() {
        let cfg = parse_config(
            "\
hostname R1
route-map M deny 10
 set metric 5
router bgp 65000
 neighbor 1.1.1.1 remote-as 100
",
        )
        .unwrap();
        let findings = lint(&[cfg]);
        assert!(has(&findings, "missing-description"));
        assert!(has(&findings, "deny-with-sets"));
    }
}
