//! Abstract syntax for one router's configuration.
//!
//! The AST mirrors the configuration text: route maps still refer to
//! prefix-lists, community-lists and AS-path ACLs *by name*; resolution
//! happens during lowering ([`crate::lower`]).

use bgp_model::prefix::Ipv4Prefix;
use bgp_model::route::{Community, Origin};
use std::collections::BTreeMap;

/// One `ip prefix-list NAME seq N permit|deny P [ge G] [le L]` entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrefixListEntry {
    /// Sequence number.
    pub seq: u32,
    /// Permit (true) or deny.
    pub permit: bool,
    /// The pattern prefix.
    pub prefix: Ipv4Prefix,
    /// Optional `ge` bound.
    pub ge: Option<u8>,
    /// Optional `le` bound.
    pub le: Option<u8>,
}

/// One `ip community-list standard NAME permit|deny c1 c2 ...` entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommunityListEntry {
    /// Permit (true) or deny.
    pub permit: bool,
    /// The listed communities (an entry matches when the route carries
    /// all of them).
    pub communities: Vec<Community>,
}

/// One `ip as-path access-list NAME permit|deny REGEX` entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsPathAclEntry {
    /// Permit (true) or deny.
    pub permit: bool,
    /// The regex source text.
    pub regex: String,
}

/// A `match` clause inside a route-map entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MatchAst {
    /// `match ip address prefix-list NAME...` (any listed name may match).
    PrefixList(Vec<String>),
    /// `match community NAME... [exact-match]`.
    Community {
        /// Referenced community-list names.
        lists: Vec<String>,
        /// `exact-match` flag (require all listed communities).
        exact: bool,
    },
    /// `match as-path NAME...`.
    AsPath(Vec<String>),
    /// `match metric N`.
    Med(u32),
    /// `match local-preference N`.
    LocalPref(u32),
}

/// A `set` clause inside a route-map entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SetAst {
    /// `set local-preference N`.
    LocalPref(u32),
    /// `set metric N`.
    Med(u32),
    /// `set community c1 c2 ... [additive]` or `set community none`.
    Community {
        /// Communities to set (empty together with `none=true` clears).
        communities: Vec<Community>,
        /// Keep existing communities.
        additive: bool,
        /// `set community none`.
        none: bool,
    },
    /// `set comm-list NAME delete`.
    CommListDelete(String),
    /// `set as-path prepend a1 a2 ...`.
    Prepend(Vec<u32>),
    /// `set ip next-hop A.B.C.D`.
    NextHop(u32),
    /// `set origin igp|egp|incomplete`.
    Origin(Origin),
}

/// One route-map stanza (`route-map NAME permit|deny SEQ` + body).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteMapEntryAst {
    /// Sequence number.
    pub seq: u32,
    /// Permit (true) or deny.
    pub permit: bool,
    /// Match clauses (conjunction).
    pub matches: Vec<MatchAst>,
    /// Set clauses.
    pub sets: Vec<SetAst>,
    /// `continue [N]`.
    pub continue_to: Option<Option<u32>>,
}

/// A neighbor declaration inside `router bgp`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NeighborAst {
    /// Session address (used as an opaque key).
    pub addr: String,
    /// `remote-as`.
    pub remote_as: Option<u32>,
    /// `description` — names the peer router; lowering matches peers by
    /// this name (see crate docs).
    pub description: Option<String>,
    /// Inbound route-map name.
    pub route_map_in: Option<String>,
    /// Outbound route-map name.
    pub route_map_out: Option<String>,
}

/// The `router bgp ASN` block.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RouterBgp {
    /// The local AS number.
    pub asn: u32,
    /// Neighbor declarations keyed by address.
    pub neighbors: BTreeMap<String, NeighborAst>,
    /// `network P` statements (routes originated into BGP).
    pub networks: Vec<Ipv4Prefix>,
}

/// A full single-router configuration.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConfigAst {
    /// `hostname`.
    pub hostname: String,
    /// Prefix lists by name (entries seq-sorted).
    pub prefix_lists: BTreeMap<String, Vec<PrefixListEntry>>,
    /// Community lists by name.
    pub community_lists: BTreeMap<String, Vec<CommunityListEntry>>,
    /// AS-path access lists by name.
    pub aspath_acls: BTreeMap<String, Vec<AsPathAclEntry>>,
    /// Route maps by name (entries seq-sorted).
    pub route_maps: BTreeMap<String, Vec<RouteMapEntryAst>>,
    /// The BGP process.
    pub router_bgp: Option<RouterBgp>,
}
