//! Line-oriented lexer for IOS-style configuration text.
//!
//! IOS configs are a sequence of lines; top-level statements start at
//! column 0 and block bodies are indented by at least one space. Lines
//! starting with `!` (and blank lines) are comments/separators.

/// A tokenized configuration line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Line {
    /// 1-based line number in the source text.
    pub number: usize,
    /// True when the line was indented (block body).
    pub indented: bool,
    /// Whitespace-separated tokens.
    pub tokens: Vec<String>,
}

impl Line {
    /// The first token (the keyword).
    pub fn keyword(&self) -> &str {
        &self.tokens[0]
    }

    /// Token at index `i`, if present.
    pub fn tok(&self, i: usize) -> Option<&str> {
        self.tokens.get(i).map(String::as_str)
    }

    /// All tokens from index `i` on.
    pub fn rest(&self, i: usize) -> &[String] {
        self.tokens.get(i..).unwrap_or(&[])
    }
}

/// Tokenize configuration text into lines, dropping comments and blanks.
pub fn lex(input: &str) -> Vec<Line> {
    let mut out = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        let trimmed = raw.trim_end();
        if trimmed.trim_start().is_empty() || trimmed.trim_start().starts_with('!') {
            continue;
        }
        let indented = trimmed.starts_with(' ') || trimmed.starts_with('\t');
        let tokens: Vec<String> = trimmed.split_whitespace().map(str::to_string).collect();
        out.push(Line {
            number: i + 1,
            indented,
            tokens,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_with_indentation() {
        let lines = lex("router bgp 65000\n neighbor 10.0.0.1 remote-as 1\n!\n\nip prefix-list P seq 5 permit 10.0.0.0/8\n");
        assert_eq!(lines.len(), 3);
        assert!(!lines[0].indented);
        assert!(lines[1].indented);
        assert_eq!(lines[0].keyword(), "router");
        assert_eq!(lines[1].tok(1), Some("10.0.0.1"));
        assert_eq!(lines[2].number, 5);
    }

    #[test]
    fn comments_and_blanks_dropped() {
        let lines = lex("! a comment\n\n   \n! another\n");
        assert!(lines.is_empty());
    }

    #[test]
    fn rest_slices() {
        let lines = lex("set community 100:1 200:2 additive\n");
        assert_eq!(
            lines[0].rest(2),
            &["100:1".to_string(), "200:2".into(), "additive".into()]
        );
        assert!(lines[0].rest(9).is_empty());
    }
}
