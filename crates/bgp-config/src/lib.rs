//! Cisco-IOS-flavoured BGP configuration front-end.
//!
//! Parses per-router configuration text covering the feature set the
//! Lightyear paper's checks exercise — prefix lists (with `ge`/`le`),
//! standard community lists, AS-path access lists, route maps with
//! `match`/`set`/`continue`, and `router bgp` neighbor blocks with
//! per-session in/out route maps and network origination — and lowers a
//! set of router configurations into a [`bgp_model::Topology`] +
//! [`bgp_model::Policy`] pair.
//!
//! ```text
//! ip prefix-list BOGONS seq 5 deny 10.0.0.0/8 le 32
//! ip prefix-list BOGONS seq 10 permit 0.0.0.0/0 le 32
//! ip community-list standard REGION permit 100:1
//! ip as-path access-list 1 deny _65001_
//! ip as-path access-list 1 permit .*
//! route-map FROM-PEER permit 10
//!  match ip address prefix-list BOGONS
//!  set community 100:1 additive
//! router bgp 65000
//!  neighbor 10.0.0.1 remote-as 65001
//!  neighbor 10.0.0.1 description ISP1
//!  neighbor 10.0.0.1 route-map FROM-PEER in
//!  network 198.51.100.0/24
//! ```
//!
//! The grammar is line-oriented like IOS: top-level statements start at
//! column 0 and block bodies are indented. See [`parser`] for the grammar
//! and [`lower`] for how neighbor descriptions are matched to topology
//! nodes.

pub mod ast;
pub mod lexer;
pub mod lint;
pub mod lower;
pub mod parser;
pub mod printer;

pub use ast::{ConfigAst, RouterBgp};
pub use lint::{lint, Finding, Severity};
pub use lower::{lower, LowerError, Network};
pub use parser::{parse_config, ParseError};
pub use printer::print_config;
