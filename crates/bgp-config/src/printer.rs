//! Printer: [`ConfigAst`] -> configuration text.
//!
//! Used by the synthetic-network generators, which build ASTs and print
//! them; the printed text is then re-parsed, so the parser is exercised on
//! every generated network. `parse_config(print_config(ast)) == ast` is a
//! tested round-trip property.

use crate::ast::*;
use std::fmt::Write;

/// Render a configuration AST as IOS-style text.
pub fn print_config(ast: &ConfigAst) -> String {
    let mut out = String::new();
    if !ast.hostname.is_empty() {
        let _ = writeln!(out, "hostname {}", ast.hostname);
        out.push_str("!\n");
    }
    for (name, entries) in &ast.prefix_lists {
        for e in entries {
            let _ = write!(
                out,
                "ip prefix-list {} seq {} {} {}",
                name,
                e.seq,
                if e.permit { "permit" } else { "deny" },
                e.prefix
            );
            if let Some(g) = e.ge {
                let _ = write!(out, " ge {g}");
            }
            if let Some(l) = e.le {
                let _ = write!(out, " le {l}");
            }
            out.push('\n');
        }
    }
    for (name, entries) in &ast.community_lists {
        for e in entries {
            let comms: Vec<String> = e.communities.iter().map(|c| c.to_string()).collect();
            let _ = writeln!(
                out,
                "ip community-list standard {} {} {}",
                name,
                if e.permit { "permit" } else { "deny" },
                comms.join(" ")
            );
        }
    }
    for (name, entries) in &ast.aspath_acls {
        for e in entries {
            let _ = writeln!(
                out,
                "ip as-path access-list {} {} {}",
                name,
                if e.permit { "permit" } else { "deny" },
                e.regex
            );
        }
    }
    if !out.is_empty() && !out.ends_with("!\n") {
        out.push_str("!\n");
    }
    for (name, entries) in &ast.route_maps {
        for e in entries {
            let _ = writeln!(
                out,
                "route-map {} {} {}",
                name,
                if e.permit { "permit" } else { "deny" },
                e.seq
            );
            for m in &e.matches {
                match m {
                    MatchAst::PrefixList(names) => {
                        let _ = writeln!(out, " match ip address prefix-list {}", names.join(" "));
                    }
                    MatchAst::Community { lists, exact } => {
                        let _ = write!(out, " match community {}", lists.join(" "));
                        if *exact {
                            out.push_str(" exact-match");
                        }
                        out.push('\n');
                    }
                    MatchAst::AsPath(names) => {
                        let _ = writeln!(out, " match as-path {}", names.join(" "));
                    }
                    MatchAst::Med(v) => {
                        let _ = writeln!(out, " match metric {v}");
                    }
                    MatchAst::LocalPref(v) => {
                        let _ = writeln!(out, " match local-preference {v}");
                    }
                }
            }
            for s in &e.sets {
                match s {
                    SetAst::LocalPref(v) => {
                        let _ = writeln!(out, " set local-preference {v}");
                    }
                    SetAst::Med(v) => {
                        let _ = writeln!(out, " set metric {v}");
                    }
                    SetAst::Community { none: true, .. } => {
                        let _ = writeln!(out, " set community none");
                    }
                    SetAst::Community {
                        communities,
                        additive,
                        ..
                    } => {
                        let cs: Vec<String> = communities.iter().map(|c| c.to_string()).collect();
                        let _ = write!(out, " set community {}", cs.join(" "));
                        if *additive {
                            out.push_str(" additive");
                        }
                        out.push('\n');
                    }
                    SetAst::CommListDelete(name) => {
                        let _ = writeln!(out, " set comm-list {name} delete");
                    }
                    SetAst::Prepend(asns) => {
                        let strs: Vec<String> = asns.iter().map(|a| a.to_string()).collect();
                        let _ = writeln!(out, " set as-path prepend {}", strs.join(" "));
                    }
                    SetAst::NextHop(nh) => {
                        let [a, b, c, d] = nh.to_be_bytes();
                        let _ = writeln!(out, " set ip next-hop {a}.{b}.{c}.{d}");
                    }
                    SetAst::Origin(o) => {
                        let _ = writeln!(out, " set origin {o}");
                    }
                }
            }
            if let Some(c) = &e.continue_to {
                match c {
                    Some(seq) => {
                        let _ = writeln!(out, " continue {seq}");
                    }
                    None => out.push_str(" continue\n"),
                }
            }
        }
        out.push_str("!\n");
    }
    if let Some(bgp) = &ast.router_bgp {
        let _ = writeln!(out, "router bgp {}", bgp.asn);
        for nbr in bgp.neighbors.values() {
            if let Some(ra) = nbr.remote_as {
                let _ = writeln!(out, " neighbor {} remote-as {}", nbr.addr, ra);
            }
            if let Some(d) = &nbr.description {
                let _ = writeln!(out, " neighbor {} description {}", nbr.addr, d);
            }
            if let Some(m) = &nbr.route_map_in {
                let _ = writeln!(out, " neighbor {} route-map {} in", nbr.addr, m);
            }
            if let Some(m) = &nbr.route_map_out {
                let _ = writeln!(out, " neighbor {} route-map {} out", nbr.addr, m);
            }
        }
        for n in &bgp.networks {
            let _ = writeln!(out, " network {n}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_config;

    #[test]
    fn roundtrip_sample() {
        let src = "\
hostname R9
!
ip prefix-list P seq 5 permit 10.0.0.0/8 ge 16 le 24
ip prefix-list P seq 10 deny 0.0.0.0/0 le 32
ip community-list standard CL permit 100:1 100:2
ip community-list standard CL deny 200:1
ip as-path access-list A permit _65001_
!
route-map M deny 5
 match as-path A
route-map M permit 10
 match ip address prefix-list P
 match community CL exact-match
 match metric 50
 set local-preference 150
 set community 1:1 additive
 set as-path prepend 65000 65000
 continue 20
route-map M permit 20
 set community none
 set metric 9
 set ip next-hop 10.9.9.9
 set comm-list CL delete
 set origin egp
!
router bgp 65000
 neighbor 10.0.0.1 remote-as 100
 neighbor 10.0.0.1 description ISP1
 neighbor 10.0.0.1 route-map M in
 neighbor 10.0.0.1 route-map M out
 network 198.51.100.0/24
";
        let ast = parse_config(src).unwrap();
        let printed = print_config(&ast);
        let reparsed = parse_config(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{printed}"));
        assert_eq!(ast, reparsed, "round-trip mismatch:\n{printed}");
    }

    #[test]
    fn empty_ast_prints_empty() {
        let ast = ConfigAst::default();
        assert_eq!(print_config(&ast), "");
    }
}
