//! Lowering: a set of parsed router configurations -> topology + policy.
//!
//! Conventions:
//!
//! * Every neighbor must carry a `description` naming its peer. If the
//!   named peer has a configuration in the input set it becomes an
//!   internal session; otherwise an external node is created (requiring
//!   `remote-as` for its AS number).
//! * Route-map / prefix-list / community-list / as-path ACL references are
//!   resolved here; dangling references are errors.
//! * `network P` statements originate a route with default attributes on
//!   every session, filtered through that session's outbound route map
//!   (matching how `network` routes enter BGP and then pass export
//!   policy). The resulting concrete routes populate `Originate(A -> B)`.

use crate::ast::{ConfigAst, MatchAst, SetAst};
use bgp_model::aspath::AsPathRegex;
use bgp_model::policy::Policy;
use bgp_model::prefix::PrefixRange;
use bgp_model::route::Route;
use bgp_model::routemap::{Action, MatchCond, RouteMap, RouteMapEntry, SetAction};
use bgp_model::topology::{NodeId, Topology};
use std::collections::BTreeMap;
use std::fmt;

/// A lowering error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LowerError {
    /// The router whose configuration caused the error.
    pub router: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.router, self.message)
    }
}

impl std::error::Error for LowerError {}

/// The lowered network: topology, policy and bookkeeping for incremental
/// verification.
#[derive(Clone, Debug)]
pub struct Network {
    /// The BGP topology.
    pub topology: Topology,
    /// The network policy.
    pub policy: Policy,
    /// Node id of each input configuration, in input order.
    pub config_nodes: Vec<NodeId>,
    /// Non-fatal issues detected during lowering (e.g. a session declared
    /// on only one side).
    pub warnings: Vec<String>,
}

fn errf(router: &str, msg: impl Into<String>) -> LowerError {
    LowerError {
        router: router.to_string(),
        message: msg.into(),
    }
}

/// Lower a set of router configurations into a [`Network`].
pub fn lower(configs: &[ConfigAst]) -> Result<Network, LowerError> {
    let mut topo = Topology::new();
    let mut warnings = Vec::new();

    // Pass 1: internal routers.
    let mut config_nodes = Vec::with_capacity(configs.len());
    let mut by_name: BTreeMap<&str, &ConfigAst> = BTreeMap::new();
    for cfg in configs {
        if cfg.hostname.is_empty() {
            return Err(errf("<unnamed>", "configuration has no hostname"));
        }
        if by_name.insert(&cfg.hostname, cfg).is_some() {
            return Err(errf(&cfg.hostname, "duplicate hostname"));
        }
        let asn = cfg.router_bgp.as_ref().map(|b| b.asn).unwrap_or(0);
        config_nodes.push(topo.add_router(cfg.hostname.clone(), asn));
    }

    // Pass 2: neighbors -> nodes + sessions.
    for cfg in configs {
        let me = topo.node_by_name(&cfg.hostname).expect("added in pass 1");
        let Some(bgp) = &cfg.router_bgp else { continue };
        for nbr in bgp.neighbors.values() {
            let peer_name = nbr.description.as_deref().ok_or_else(|| {
                errf(
                    &cfg.hostname,
                    format!("neighbor {} has no description naming its peer", nbr.addr),
                )
            })?;
            let peer = match topo.node_by_name(peer_name) {
                Some(p) => {
                    // Internal peer: cross-check remote-as when present.
                    if let Some(ra) = nbr.remote_as {
                        if !topo.node(p).external && topo.node(p).asn != ra {
                            warnings.push(format!(
                                "{}: neighbor {} remote-as {} but {} runs AS {}",
                                cfg.hostname,
                                nbr.addr,
                                ra,
                                peer_name,
                                topo.node(p).asn
                            ));
                        }
                    }
                    p
                }
                None => {
                    let asn = nbr.remote_as.ok_or_else(|| {
                        errf(
                            &cfg.hostname,
                            format!(
                                "external neighbor {peer_name} ({}) needs remote-as",
                                nbr.addr
                            ),
                        )
                    })?;
                    topo.add_external(peer_name.to_string(), asn)
                }
            };
            if topo.edge_between(me, peer).is_none() {
                topo.add_session(me, peer);
            }
        }
    }

    // Warn about one-sided internal sessions.
    for cfg in configs {
        let me = topo.node_by_name(&cfg.hostname).unwrap();
        let Some(bgp) = &cfg.router_bgp else { continue };
        for nbr in bgp.neighbors.values() {
            let peer_name = nbr.description.as_deref().unwrap();
            if let Some(peer_cfg) = by_name.get(peer_name) {
                let reciprocated = peer_cfg
                    .router_bgp
                    .as_ref()
                    .map(|b| {
                        b.neighbors
                            .values()
                            .any(|n| n.description.as_deref() == Some(cfg.hostname.as_str()))
                    })
                    .unwrap_or(false);
                if !reciprocated {
                    warnings.push(format!(
                        "{}: session to {} not declared on the far side",
                        cfg.hostname, peer_name
                    ));
                }
            }
            let _ = me;
        }
    }

    // Pass 3: policy.
    let mut policy = Policy::new();
    for cfg in configs {
        let me = topo.node_by_name(&cfg.hostname).unwrap();
        let Some(bgp) = &cfg.router_bgp else { continue };
        for nbr in bgp.neighbors.values() {
            let peer_name = nbr.description.as_deref().unwrap();
            let peer = topo.node_by_name(peer_name).unwrap();
            let in_edge = topo.edge_between(peer, me).expect("session exists");
            let out_edge = topo.edge_between(me, peer).expect("session exists");
            if let Some(name) = &nbr.route_map_in {
                policy.set_import(in_edge, resolve_route_map(cfg, name)?);
            }
            if let Some(name) = &nbr.route_map_out {
                policy.set_export(out_edge, resolve_route_map(cfg, name)?);
            }
        }
        // Originations: network statements filtered through export maps.
        for &pfx in &bgp.networks {
            let base = Route::new(pfx).with_next_hop(me.0);
            for &out in topo.out_edges(me) {
                if let Some(r) = policy.export_route(out, &base) {
                    policy.add_origination(out, r);
                }
            }
        }
    }

    Ok(Network {
        topology: topo,
        policy,
        config_nodes,
        warnings,
    })
}

/// Resolve a named route map from a configuration into the self-contained
/// IR, inlining all referenced lists.
pub fn resolve_route_map(cfg: &ConfigAst, name: &str) -> Result<RouteMap, LowerError> {
    let entries = cfg
        .route_maps
        .get(name)
        .ok_or_else(|| errf(&cfg.hostname, format!("undefined route-map {name:?}")))?;
    let mut rm = RouteMap::new(name);
    for e in entries {
        let mut out = RouteMapEntry {
            seq: e.seq,
            action: if e.permit {
                Action::Permit
            } else {
                Action::Deny
            },
            matches: Vec::new(),
            sets: Vec::new(),
            continue_to: e.continue_to,
        };
        for m in &e.matches {
            out.matches.push(resolve_match(cfg, m)?);
        }
        for s in &e.sets {
            out.sets.push(resolve_set(cfg, s)?);
        }
        rm.push(out);
    }
    Ok(rm)
}

fn resolve_match(cfg: &ConfigAst, m: &MatchAst) -> Result<MatchCond, LowerError> {
    match m {
        MatchAst::PrefixList(names) => {
            let mut ranges = Vec::new();
            for n in names {
                let list = cfg
                    .prefix_lists
                    .get(n)
                    .ok_or_else(|| errf(&cfg.hostname, format!("undefined prefix-list {n:?}")))?;
                for e in list {
                    let min = e.ge.unwrap_or(e.prefix.len);
                    let max =
                        e.le.unwrap_or(if e.ge.is_some() { 32 } else { e.prefix.len });
                    ranges.push((
                        e.permit,
                        PrefixRange::with_bounds(e.prefix, min, max.max(min)),
                    ));
                }
            }
            Ok(MatchCond::PrefixList(ranges))
        }
        MatchAst::Community { lists, exact } => {
            let mut entries = Vec::new();
            for n in lists {
                let list = cfg.community_lists.get(n).ok_or_else(|| {
                    errf(&cfg.hostname, format!("undefined community-list {n:?}"))
                })?;
                for e in list {
                    entries.push((e.permit, e.communities.clone()));
                }
            }
            Ok(MatchCond::CommunityList {
                entries,
                exact: *exact,
            })
        }
        MatchAst::AsPath(names) => {
            let mut entries = Vec::new();
            for n in names {
                let list = cfg.aspath_acls.get(n).ok_or_else(|| {
                    errf(
                        &cfg.hostname,
                        format!("undefined as-path access-list {n:?}"),
                    )
                })?;
                for e in list {
                    let re = AsPathRegex::compile(&e.regex)
                        .map_err(|err| errf(&cfg.hostname, format!("as-path list {n:?}: {err}")))?;
                    entries.push((e.permit, re));
                }
            }
            Ok(MatchCond::AsPath(entries))
        }
        MatchAst::Med(v) => Ok(MatchCond::Med(*v)),
        MatchAst::LocalPref(v) => Ok(MatchCond::LocalPref(*v)),
    }
}

fn resolve_set(cfg: &ConfigAst, s: &SetAst) -> Result<SetAction, LowerError> {
    match s {
        SetAst::LocalPref(v) => Ok(SetAction::LocalPref(*v)),
        SetAst::Med(v) => Ok(SetAction::Med(*v)),
        SetAst::Community { none: true, .. } => Ok(SetAction::ClearCommunities),
        SetAst::Community {
            communities,
            additive,
            ..
        } => Ok(SetAction::Community {
            comms: communities.clone(),
            additive: *additive,
        }),
        SetAst::CommListDelete(name) => {
            let list = cfg
                .community_lists
                .get(name)
                .ok_or_else(|| errf(&cfg.hostname, format!("undefined community-list {name:?}")))?;
            // `set comm-list X delete` removes communities matched by the
            // list's permit entries.
            let comms = list
                .iter()
                .filter(|e| e.permit)
                .flat_map(|e| e.communities.iter().copied())
                .collect();
            Ok(SetAction::DeleteCommunities(comms))
        }
        SetAst::Prepend(asns) => Ok(SetAction::PrependAsPath(asns.clone())),
        SetAst::NextHop(nh) => Ok(SetAction::NextHop(*nh)),
        SetAst::Origin(o) => Ok(SetAction::Origin(*o)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_config;

    fn r1() -> ConfigAst {
        parse_config(
            "\
hostname R1
ip prefix-list CUST seq 5 permit 203.0.113.0/24 le 32
route-map FROM-ISP1 permit 10
 set community 100:1 additive
route-map TO-R2 permit 10
router bgp 65000
 neighbor 10.0.0.1 remote-as 100
 neighbor 10.0.0.1 description ISP1
 neighbor 10.0.0.1 route-map FROM-ISP1 in
 neighbor 10.0.1.2 remote-as 65000
 neighbor 10.0.1.2 description R2
 neighbor 10.0.1.2 route-map TO-R2 out
 network 198.51.100.0/24
",
        )
        .unwrap()
    }

    fn r2() -> ConfigAst {
        parse_config(
            "\
hostname R2
ip community-list standard FROM-ISP1 permit 100:1
route-map TO-ISP2 deny 10
 match community FROM-ISP1
route-map TO-ISP2 permit 20
router bgp 65000
 neighbor 10.0.1.1 remote-as 65000
 neighbor 10.0.1.1 description R1
 neighbor 10.0.2.1 remote-as 200
 neighbor 10.0.2.1 description ISP2
 neighbor 10.0.2.1 route-map TO-ISP2 out
",
        )
        .unwrap()
    }

    #[test]
    fn lowers_two_router_network() {
        let net = lower(&[r1(), r2()]).unwrap();
        let t = &net.topology;
        assert_eq!(t.router_ids().count(), 2);
        assert_eq!(t.external_ids().count(), 2); // ISP1, ISP2
        let r1n = t.node_by_name("R1").unwrap();
        let r2n = t.node_by_name("R2").unwrap();
        let isp1 = t.node_by_name("ISP1").unwrap();
        let isp2 = t.node_by_name("ISP2").unwrap();
        assert!(t.node(isp1).external);
        assert_eq!(t.node(isp1).asn, 100);

        // Import map attached on ISP1 -> R1.
        let e = t.edge_between(isp1, r1n).unwrap();
        assert_eq!(net.policy.import_map(e).unwrap().name, "FROM-ISP1");
        // Export map attached on R2 -> ISP2 and resolved to CommunityList.
        let e = t.edge_between(r2n, isp2).unwrap();
        let m = net.policy.export_map(e).unwrap();
        assert!(matches!(
            &m.entries[0].matches[0],
            MatchCond::CommunityList { entries, .. } if entries.len() == 1
        ));
        assert!(net.warnings.is_empty(), "{:?}", net.warnings);
    }

    #[test]
    fn originations_pass_export_filters() {
        let net = lower(&[r1(), r2()]).unwrap();
        let t = &net.topology;
        let r1n = t.node_by_name("R1").unwrap();
        // R1 originates 198.51.100.0/24 on both of its sessions.
        let mut total = 0;
        for &e in t.out_edges(r1n) {
            total += net.policy.originated(e).len();
        }
        assert_eq!(total, 2);
    }

    #[test]
    fn undefined_references_error() {
        let cfg = parse_config(
            "\
hostname R1
route-map M permit 10
 match ip address prefix-list NOPE
router bgp 1
 neighbor 1.1.1.1 remote-as 2
 neighbor 1.1.1.1 description X
 neighbor 1.1.1.1 route-map M in
",
        )
        .unwrap();
        let e = lower(&[cfg]).unwrap_err();
        assert!(e.message.contains("NOPE"));
    }

    #[test]
    fn neighbor_without_description_errors() {
        let cfg =
            parse_config("hostname R1\nrouter bgp 1\n neighbor 1.1.1.1 remote-as 2\n").unwrap();
        assert!(lower(&[cfg]).is_err());
    }

    #[test]
    fn external_needs_remote_as() {
        let cfg =
            parse_config("hostname R1\nrouter bgp 1\n neighbor 1.1.1.1 description EXT\n").unwrap();
        assert!(lower(&[cfg]).is_err());
    }

    #[test]
    fn one_sided_session_warns() {
        let a = parse_config(
            "hostname A\nrouter bgp 1\n neighbor 1.1.1.2 remote-as 1\n neighbor 1.1.1.2 description B\n",
        )
        .unwrap();
        let b = parse_config("hostname B\nrouter bgp 1\n").unwrap();
        let net = lower(&[a, b]).unwrap();
        assert_eq!(net.warnings.len(), 1);
        assert!(net.warnings[0].contains("not declared on the far side"));
    }

    #[test]
    fn remote_as_mismatch_warns() {
        let a = parse_config(
            "hostname A\nrouter bgp 1\n neighbor 1.1.1.2 remote-as 9\n neighbor 1.1.1.2 description B\n",
        )
        .unwrap();
        let b = parse_config(
            "hostname B\nrouter bgp 2\n neighbor 1.1.1.1 remote-as 1\n neighbor 1.1.1.1 description A\n",
        )
        .unwrap();
        let net = lower(&[a, b]).unwrap();
        assert!(net.warnings.iter().any(|w| w.contains("remote-as 9")));
    }

    #[test]
    fn duplicate_hostnames_error() {
        let a = parse_config("hostname A\n").unwrap();
        assert!(lower(&[a.clone(), a]).is_err());
    }
}
