//! Parser: configuration text -> [`ConfigAst`].
//!
//! Grammar (line-oriented; `[]` optional, `...` repetition):
//!
//! ```text
//! hostname NAME
//! ip prefix-list NAME seq N (permit|deny) A.B.C.D/L [ge G] [le L]
//! ip community-list standard NAME (permit|deny) COMM...
//! ip as-path access-list NAME (permit|deny) REGEX
//! route-map NAME (permit|deny) SEQ
//!   match ip address prefix-list NAME...
//!   match community NAME... [exact-match]
//!   match as-path NAME...
//!   match metric N
//!   match local-preference N
//!   set local-preference N
//!   set metric N
//!   set community (none | COMM... [additive])
//!   set comm-list NAME delete
//!   set as-path prepend ASN...
//!   set ip next-hop A.B.C.D
//!   continue [N]
//! router bgp ASN
//!   neighbor ADDR remote-as ASN
//!   neighbor ADDR description NAME
//!   neighbor ADDR route-map NAME (in|out)
//!   network A.B.C.D/L
//! ```

use crate::ast::*;
use crate::lexer::{lex, Line};
use bgp_model::prefix::Ipv4Prefix;
use bgp_model::route::Community;
use std::fmt;

/// A parse error with location information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: &Line, msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line: line.number,
        message: msg.into(),
    })
}

fn parse_permit(line: &Line, tok: Option<&str>) -> Result<bool, ParseError> {
    match tok {
        Some("permit") => Ok(true),
        Some("deny") => Ok(false),
        other => err(line, format!("expected permit|deny, got {other:?}")),
    }
}

fn parse_u32(line: &Line, tok: Option<&str>, what: &str) -> Result<u32, ParseError> {
    tok.and_then(|t| t.parse().ok()).ok_or(ParseError {
        line: line.number,
        message: format!("expected {what}, got {tok:?}"),
    })
}

fn parse_u8(line: &Line, tok: Option<&str>, what: &str) -> Result<u8, ParseError> {
    tok.and_then(|t| t.parse().ok()).ok_or(ParseError {
        line: line.number,
        message: format!("expected {what}, got {tok:?}"),
    })
}

fn parse_prefix(line: &Line, tok: Option<&str>) -> Result<Ipv4Prefix, ParseError> {
    tok.and_then(|t| t.parse().ok()).ok_or(ParseError {
        line: line.number,
        message: format!("expected prefix A.B.C.D/L, got {tok:?}"),
    })
}

fn parse_community(line: &Line, tok: &str) -> Result<Community, ParseError> {
    tok.parse().map_err(|e: String| ParseError {
        line: line.number,
        message: e,
    })
}

fn parse_ipv4_addr(line: &Line, tok: Option<&str>) -> Result<u32, ParseError> {
    let t = match tok {
        Some(t) => t,
        None => return err(line, "expected IPv4 address"),
    };
    let mut octets = [0u8; 4];
    let mut n = 0;
    for part in t.split('.') {
        if n == 4 {
            return err(line, format!("bad IPv4 address {t:?}"));
        }
        octets[n] = part.parse().map_err(|_| ParseError {
            line: line.number,
            message: format!("bad IPv4 address {t:?}"),
        })?;
        n += 1;
    }
    if n != 4 {
        return err(line, format!("bad IPv4 address {t:?}"));
    }
    Ok(u32::from_be_bytes(octets))
}

/// Parse one router's configuration text.
pub fn parse_config(input: &str) -> Result<ConfigAst, ParseError> {
    let lines = lex(input);
    let mut ast = ConfigAst::default();
    let mut i = 0;
    while i < lines.len() {
        let line = &lines[i];
        if line.indented {
            return err(line, "unexpected indented line outside a block");
        }
        match line.keyword() {
            "hostname" => {
                ast.hostname = match line.tok(1) {
                    Some(h) => h.to_string(),
                    None => return err(line, "hostname requires a name"),
                };
                i += 1;
            }
            "ip" => {
                parse_ip_statement(line, &mut ast)?;
                i += 1;
            }
            "route-map" => {
                let name = match line.tok(1) {
                    Some(n) => n.to_string(),
                    None => return err(line, "route-map requires a name"),
                };
                let permit = parse_permit(line, line.tok(2))?;
                let seq = parse_u32(line, line.tok(3), "sequence number")?;
                let mut entry = RouteMapEntryAst {
                    seq,
                    permit,
                    matches: Vec::new(),
                    sets: Vec::new(),
                    continue_to: None,
                };
                i += 1;
                while i < lines.len() && lines[i].indented {
                    parse_route_map_body(&lines[i], &mut entry)?;
                    i += 1;
                }
                let entries = ast.route_maps.entry(name).or_default();
                if entries.iter().any(|e| e.seq == seq) {
                    return err(line, format!("duplicate route-map sequence {seq}"));
                }
                entries.push(entry);
                entries.sort_by_key(|e| e.seq);
            }
            "router" => {
                if line.tok(1) != Some("bgp") {
                    return err(line, "only 'router bgp' is supported");
                }
                if ast.router_bgp.is_some() {
                    return err(line, "duplicate 'router bgp' block");
                }
                let asn = parse_u32(line, line.tok(2), "AS number")?;
                let mut bgp = RouterBgp {
                    asn,
                    ..Default::default()
                };
                i += 1;
                while i < lines.len() && lines[i].indented {
                    parse_bgp_body(&lines[i], &mut bgp)?;
                    i += 1;
                }
                ast.router_bgp = Some(bgp);
            }
            other => return err(line, format!("unknown statement {other:?}")),
        }
    }
    Ok(ast)
}

fn parse_ip_statement(line: &Line, ast: &mut ConfigAst) -> Result<(), ParseError> {
    match line.tok(1) {
        Some("prefix-list") => {
            let name = match line.tok(2) {
                Some(n) => n.to_string(),
                None => return err(line, "prefix-list requires a name"),
            };
            if line.tok(3) != Some("seq") {
                return err(line, "expected 'seq'");
            }
            let seq = parse_u32(line, line.tok(4), "sequence number")?;
            let permit = parse_permit(line, line.tok(5))?;
            let prefix = parse_prefix(line, line.tok(6))?;
            let mut ge = None;
            let mut le = None;
            let mut k = 7;
            while let Some(t) = line.tok(k) {
                match t {
                    "ge" => {
                        ge = Some(parse_u8(line, line.tok(k + 1), "ge bound")?);
                        k += 2;
                    }
                    "le" => {
                        le = Some(parse_u8(line, line.tok(k + 1), "le bound")?);
                        k += 2;
                    }
                    other => return err(line, format!("unexpected token {other:?}")),
                }
            }
            if let Some(g) = ge {
                if g < prefix.len || g > 32 {
                    return err(line, format!("ge {g} out of range for {prefix}"));
                }
            }
            if let Some(l) = le {
                if l < ge.unwrap_or(prefix.len) || l > 32 {
                    return err(line, format!("le {l} out of range for {prefix}"));
                }
            }
            let entries = ast.prefix_lists.entry(name).or_default();
            if entries.iter().any(|e| e.seq == seq) {
                return err(line, format!("duplicate prefix-list sequence {seq}"));
            }
            entries.push(PrefixListEntry {
                seq,
                permit,
                prefix,
                ge,
                le,
            });
            entries.sort_by_key(|e| e.seq);
            Ok(())
        }
        Some("community-list") => {
            if line.tok(2) != Some("standard") {
                return err(line, "only standard community-lists are supported");
            }
            let name = match line.tok(3) {
                Some(n) => n.to_string(),
                None => return err(line, "community-list requires a name"),
            };
            let permit = parse_permit(line, line.tok(4))?;
            let mut communities = Vec::new();
            for t in line.rest(5) {
                communities.push(parse_community(line, t)?);
            }
            if communities.is_empty() {
                return err(line, "community-list entry needs at least one community");
            }
            ast.community_lists
                .entry(name)
                .or_default()
                .push(CommunityListEntry {
                    permit,
                    communities,
                });
            Ok(())
        }
        Some("as-path") => {
            if line.tok(2) != Some("access-list") {
                return err(line, "expected 'access-list'");
            }
            let name = match line.tok(3) {
                Some(n) => n.to_string(),
                None => return err(line, "as-path access-list requires a name"),
            };
            let permit = parse_permit(line, line.tok(4))?;
            let regex = line.rest(5).join(" ");
            if regex.is_empty() {
                return err(line, "as-path access-list entry needs a regex");
            }
            // Validate eagerly so errors carry the line number.
            if let Err(e) = bgp_model::AsPathRegex::compile(&regex) {
                return err(line, e.to_string());
            }
            ast.aspath_acls
                .entry(name)
                .or_default()
                .push(AsPathAclEntry { permit, regex });
            Ok(())
        }
        other => err(line, format!("unknown ip statement {other:?}")),
    }
}

fn parse_route_map_body(line: &Line, entry: &mut RouteMapEntryAst) -> Result<(), ParseError> {
    match line.keyword() {
        "match" => match line.tok(1) {
            Some("ip") => {
                if line.tok(2) != Some("address") || line.tok(3) != Some("prefix-list") {
                    return err(line, "expected 'match ip address prefix-list NAME...'");
                }
                let names: Vec<String> = line.rest(4).to_vec();
                if names.is_empty() {
                    return err(line, "prefix-list match needs at least one name");
                }
                entry.matches.push(MatchAst::PrefixList(names));
                Ok(())
            }
            Some("community") => {
                let mut lists: Vec<String> = line.rest(2).to_vec();
                let exact = lists.last().map(String::as_str) == Some("exact-match");
                if exact {
                    lists.pop();
                }
                if lists.is_empty() {
                    return err(line, "community match needs at least one list name");
                }
                entry.matches.push(MatchAst::Community { lists, exact });
                Ok(())
            }
            Some("as-path") => {
                let names: Vec<String> = line.rest(2).to_vec();
                if names.is_empty() {
                    return err(line, "as-path match needs at least one ACL name");
                }
                entry.matches.push(MatchAst::AsPath(names));
                Ok(())
            }
            Some("metric") => {
                entry
                    .matches
                    .push(MatchAst::Med(parse_u32(line, line.tok(2), "metric")?));
                Ok(())
            }
            Some("local-preference") => {
                entry.matches.push(MatchAst::LocalPref(parse_u32(
                    line,
                    line.tok(2),
                    "local-preference",
                )?));
                Ok(())
            }
            other => err(line, format!("unknown match clause {other:?}")),
        },
        "set" => match line.tok(1) {
            Some("local-preference") => {
                entry.sets.push(SetAst::LocalPref(parse_u32(
                    line,
                    line.tok(2),
                    "local-preference",
                )?));
                Ok(())
            }
            Some("metric") => {
                entry
                    .sets
                    .push(SetAst::Med(parse_u32(line, line.tok(2), "metric")?));
                Ok(())
            }
            Some("community") => {
                if line.tok(2) == Some("none") {
                    entry.sets.push(SetAst::Community {
                        communities: Vec::new(),
                        additive: false,
                        none: true,
                    });
                    return Ok(());
                }
                let mut toks: Vec<&str> = line.rest(2).iter().map(String::as_str).collect();
                let additive = toks.last() == Some(&"additive");
                if additive {
                    toks.pop();
                }
                if toks.is_empty() {
                    return err(line, "set community needs values or 'none'");
                }
                let mut communities = Vec::new();
                for t in toks {
                    communities.push(parse_community(line, t)?);
                }
                entry.sets.push(SetAst::Community {
                    communities,
                    additive,
                    none: false,
                });
                Ok(())
            }
            Some("comm-list") => {
                let name = match line.tok(2) {
                    Some(n) => n.to_string(),
                    None => return err(line, "set comm-list needs a name"),
                };
                if line.tok(3) != Some("delete") {
                    return err(line, "expected 'delete'");
                }
                entry.sets.push(SetAst::CommListDelete(name));
                Ok(())
            }
            Some("as-path") => {
                if line.tok(2) != Some("prepend") {
                    return err(line, "expected 'prepend'");
                }
                let mut asns = Vec::new();
                for t in line.rest(3) {
                    asns.push(t.parse().map_err(|_| ParseError {
                        line: line.number,
                        message: format!("bad ASN {t:?}"),
                    })?);
                }
                if asns.is_empty() {
                    return err(line, "prepend needs at least one ASN");
                }
                entry.sets.push(SetAst::Prepend(asns));
                Ok(())
            }
            Some("origin") => {
                let o = match line.tok(2) {
                    Some("igp") => bgp_model::route::Origin::Igp,
                    Some("egp") => bgp_model::route::Origin::Egp,
                    Some("incomplete") => bgp_model::route::Origin::Incomplete,
                    other => return err(line, format!("bad origin {other:?}")),
                };
                entry.sets.push(SetAst::Origin(o));
                Ok(())
            }
            Some("ip") => {
                if line.tok(2) != Some("next-hop") {
                    return err(line, "expected 'next-hop'");
                }
                entry
                    .sets
                    .push(SetAst::NextHop(parse_ipv4_addr(line, line.tok(3))?));
                Ok(())
            }
            other => err(line, format!("unknown set clause {other:?}")),
        },
        "continue" => {
            entry.continue_to = Some(match line.tok(1) {
                Some(t) => Some(parse_u32(line, Some(t), "sequence number")?),
                None => None,
            });
            Ok(())
        }
        other => err(line, format!("unknown route-map clause {other:?}")),
    }
}

fn parse_bgp_body(line: &Line, bgp: &mut RouterBgp) -> Result<(), ParseError> {
    match line.keyword() {
        "neighbor" => {
            let addr = match line.tok(1) {
                Some(a) => a.to_string(),
                None => return err(line, "neighbor requires an address"),
            };
            let nbr = bgp
                .neighbors
                .entry(addr.clone())
                .or_insert_with(|| NeighborAst {
                    addr,
                    ..Default::default()
                });
            match line.tok(2) {
                Some("remote-as") => {
                    nbr.remote_as = Some(parse_u32(line, line.tok(3), "AS number")?);
                    Ok(())
                }
                Some("description") => {
                    let d = line.rest(3).join(" ");
                    if d.is_empty() {
                        return err(line, "description requires text");
                    }
                    nbr.description = Some(d);
                    Ok(())
                }
                Some("route-map") => {
                    let name = match line.tok(3) {
                        Some(n) => n.to_string(),
                        None => return err(line, "route-map requires a name"),
                    };
                    match line.tok(4) {
                        Some("in") => {
                            nbr.route_map_in = Some(name);
                            Ok(())
                        }
                        Some("out") => {
                            nbr.route_map_out = Some(name);
                            Ok(())
                        }
                        other => err(line, format!("expected in|out, got {other:?}")),
                    }
                }
                other => err(line, format!("unknown neighbor clause {other:?}")),
            }
        }
        "network" => {
            bgp.networks.push(parse_prefix(line, line.tok(1))?);
            Ok(())
        }
        other => err(line, format!("unknown router bgp clause {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
hostname R1
!
ip prefix-list BOGONS seq 5 permit 10.0.0.0/8 le 32
ip prefix-list BOGONS seq 10 permit 192.168.0.0/16 ge 24 le 32
ip community-list standard REGION permit 100:1
ip as-path access-list PRIVATE permit _[64512-65534]_
!
route-map FROM-ISP1 permit 10
 match ip address prefix-list BOGONS
 set community 100:1 additive
 set local-preference 200
route-map FROM-ISP1 deny 20
!
route-map TO-ISP2 deny 10
 match community REGION
route-map TO-ISP2 permit 20
 continue 30
route-map TO-ISP2 permit 30
 set metric 5
!
router bgp 65000
 neighbor 10.0.0.1 remote-as 100
 neighbor 10.0.0.1 description ISP1
 neighbor 10.0.0.1 route-map FROM-ISP1 in
 neighbor 10.0.0.2 remote-as 200
 neighbor 10.0.0.2 description ISP2
 neighbor 10.0.0.2 route-map TO-ISP2 out
 network 198.51.100.0/24
";

    #[test]
    fn parses_full_sample() {
        let ast = parse_config(SAMPLE).unwrap();
        assert_eq!(ast.hostname, "R1");
        assert_eq!(ast.prefix_lists["BOGONS"].len(), 2);
        assert_eq!(ast.prefix_lists["BOGONS"][0].seq, 5);
        assert_eq!(ast.prefix_lists["BOGONS"][1].ge, Some(24));
        assert_eq!(ast.community_lists["REGION"].len(), 1);
        assert_eq!(ast.aspath_acls["PRIVATE"][0].regex, "_[64512-65534]_");
        assert_eq!(ast.route_maps["FROM-ISP1"].len(), 2);
        let e10 = &ast.route_maps["FROM-ISP1"][0];
        assert_eq!(e10.matches.len(), 1);
        assert_eq!(e10.sets.len(), 2);
        assert_eq!(ast.route_maps["TO-ISP2"][1].continue_to, Some(Some(30)));
        let bgp = ast.router_bgp.unwrap();
        assert_eq!(bgp.asn, 65000);
        assert_eq!(bgp.neighbors.len(), 2);
        let n1 = &bgp.neighbors["10.0.0.1"];
        assert_eq!(n1.remote_as, Some(100));
        assert_eq!(n1.description.as_deref(), Some("ISP1"));
        assert_eq!(n1.route_map_in.as_deref(), Some("FROM-ISP1"));
        assert_eq!(bgp.networks, vec!["198.51.100.0/24".parse().unwrap()]);
    }

    #[test]
    fn error_has_line_number() {
        let e = parse_config("hostname R1\nbogus statement\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn duplicate_seq_rejected() {
        let cfg = "route-map X permit 10\nroute-map X permit 10\n";
        assert!(parse_config(cfg).is_err());
        let cfg2 =
            "ip prefix-list P seq 5 permit 1.0.0.0/8\nip prefix-list P seq 5 deny 2.0.0.0/8\n";
        assert!(parse_config(cfg2).is_err());
    }

    #[test]
    fn bad_bounds_rejected() {
        assert!(parse_config("ip prefix-list P seq 5 permit 10.0.0.0/8 ge 4\n").is_err());
        assert!(parse_config("ip prefix-list P seq 5 permit 10.0.0.0/8 ge 24 le 16\n").is_err());
        assert!(parse_config("ip prefix-list P seq 5 permit 10.0.0.0/8 le 64\n").is_err());
    }

    #[test]
    fn bad_regex_rejected_at_parse_time() {
        let e = parse_config("ip as-path access-list A permit (1\n").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn set_community_variants() {
        let cfg = "\
route-map X permit 10
 set community none
route-map X permit 20
 set community 1:1 2:2
route-map X permit 30
 set community 3:3 additive
";
        let ast = parse_config(cfg).unwrap();
        let rm = &ast.route_maps["X"];
        assert!(matches!(
            &rm[0].sets[0],
            SetAst::Community { none: true, .. }
        ));
        assert!(
            matches!(&rm[1].sets[0], SetAst::Community { communities, additive: false, none: false } if communities.len() == 2)
        );
        assert!(matches!(
            &rm[2].sets[0],
            SetAst::Community { additive: true, .. }
        ));
    }

    #[test]
    fn bare_continue() {
        let ast = parse_config("route-map X permit 10\n continue\n").unwrap();
        assert_eq!(ast.route_maps["X"][0].continue_to, Some(None));
    }

    #[test]
    fn indented_line_at_top_level_rejected() {
        assert!(parse_config(" set metric 5\n").is_err());
    }
}
